"""The fault injector: seeded orchestration of every fault model.

The injector owns its *own* :class:`random.Random`, separate from the
emulator's encounter-ordering RNG. That separation is the determinism
contract: arming or disarming faults never perturbs the base experiment's
random draws, and a (fault config, fault seed) pair replays an identical
fault schedule against an identical run.

Decision points, in the order the emulation consults them per encounter:

1. :meth:`encounter_allowed` — retry/backoff bookkeeping may veto the
   attempt (a recently interrupted pair waits out its backoff);
2. :meth:`should_drop_encounter` — Bernoulli whole-encounter loss;
3. :meth:`transport` — a per-session lossy channel (truncation and
   duplication) handed to the sync engine;
4. :meth:`note_encounter_outcome` — records interruptions (scheduling
   backoff) and completed resumes;
5. :meth:`crash_victims` — which participants crash after the encounter.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.replication.ids import ReplicaId

from .config import FaultConfig
from .models import (
    BatchTruncation,
    BernoulliEncounterDrop,
    CrashRestart,
    EntryDuplication,
    FrameReplay,
    KnowledgeFabrication,
    MalformedFrame,
    PayloadCorruption,
)
from .transport import FaultyTransport

#: A host pair, order-normalised so both sync directions share state.
Pair = Tuple[str, str]


def pair_key(a: str, b: str) -> Pair:
    return (a, b) if a <= b else (b, a)


@dataclass
class FaultCounters:
    """Everything the injector did, for metrics and for assertions."""

    dropped_encounters: int = 0
    backoff_skips: int = 0
    interrupted_syncs: int = 0
    resumed_pairs: int = 0
    crashes: int = 0
    corrupted_entries: int = 0
    malformed_entries: int = 0
    replayed_entries: int = 0
    fabricated_requests: int = 0

    def note(self, counter: str, amount: int = 1) -> None:
        """Increment one counter by name (the transport's callback)."""
        setattr(self, counter, getattr(self, counter) + amount)

    def as_dict(self) -> Dict[str, int]:
        return {
            "dropped_encounters": self.dropped_encounters,
            "backoff_skips": self.backoff_skips,
            "interrupted_syncs": self.interrupted_syncs,
            "resumed_pairs": self.resumed_pairs,
            "crashes": self.crashes,
            "corrupted_entries": self.corrupted_entries,
            "malformed_entries": self.malformed_entries,
            "replayed_entries": self.replayed_entries,
            "fabricated_requests": self.fabricated_requests,
        }


@dataclass
class RetryState:
    """Backoff bookkeeping for one pair with an interrupted session."""

    attempts: int = 0
    next_attempt: float = 0.0


class ResumeTracker:
    """Tracks interrupted pairs and their exponential retry backoff.

    A pair enters the tracker when a sync between its hosts is truncated;
    while the backoff window is open, further attempts are skipped. The
    first completed (un-truncated) encounter after an interruption counts
    as that pair's *resume* — the substrate's knowledge exchange makes the
    resume implicit (only the undelivered suffix is re-offered), so the
    tracker's job is purely scheduling and accounting.
    """

    def __init__(
        self, base: float = 60.0, factor: float = 2.0, maximum: float = 3600.0
    ) -> None:
        self.base = base
        self.factor = factor
        self.maximum = maximum
        self._pending: Dict[Pair, RetryState] = {}

    def can_attempt(self, pair: Pair, now: float) -> bool:
        state = self._pending.get(pair)
        return state is None or now >= state.next_attempt

    def record_interruption(self, pair: Pair, now: float) -> RetryState:
        state = self._pending.setdefault(pair, RetryState())
        state.attempts += 1
        delay = min(self.base * self.factor ** (state.attempts - 1), self.maximum)
        state.next_attempt = now + delay
        return state

    def record_completion(self, pair: Pair) -> bool:
        """Clear a pair after a full sync; True if this completed a resume."""
        return self._pending.pop(pair, None) is not None

    def is_pending(self, pair: Pair) -> bool:
        return pair in self._pending

    @property
    def pending_pairs(self) -> List[Pair]:
        return sorted(self._pending)


class FaultInjector:
    """Binds fault models, RNG, counters, and resume bookkeeping together."""

    def __init__(self, config: FaultConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self.rng = random.Random(seed)
        self._per_link = getattr(config, "rng_streams", "shared") == "per-link"
        self._link_rngs: Dict[Pair, random.Random] = {}
        self.counters = FaultCounters()
        self.tracker = ResumeTracker(
            base=config.retry_backoff_base,
            factor=config.retry_backoff_factor,
            maximum=config.retry_backoff_max,
        )
        self._drop = (
            BernoulliEncounterDrop(config.encounter_drop_probability)
            if config.encounter_drop_probability > 0.0
            else None
        )
        self._truncation = (
            BatchTruncation(
                config.truncation_probability,
                minimum=config.truncation_min,
                maximum=config.truncation_max,
                unit=config.truncation_unit,
            )
            if config.truncation_probability > 0.0
            else None
        )
        self._duplication = (
            EntryDuplication(config.duplication_probability)
            if config.duplication_probability > 0.0
            else None
        )
        self._crash = (
            CrashRestart(config.crash_probability)
            if config.crash_probability > 0.0
            else None
        )
        self._corruption = (
            PayloadCorruption(config.corruption_probability)
            if config.corruption_probability > 0.0
            else None
        )
        self._malformed = (
            MalformedFrame(config.malformed_probability)
            if config.malformed_probability > 0.0
            else None
        )
        self._replay = (
            FrameReplay(config.replay_probability)
            if config.replay_probability > 0.0
            else None
        )
        self._fabrication = (
            KnowledgeFabrication(config.fabrication_probability)
            if config.fabrication_probability > 0.0
            else None
        )
        #: Previously confirmed entries per *directed* link, feeding the
        #: replay model: a replayed frame can only contain what that link
        #: actually carried.
        self._replay_pools: Dict[Tuple[str, str], List[object]] = {}

    # -- rng organisation ----------------------------------------------------------

    def rng_for(
        self, a: Optional[str] = None, b: Optional[str] = None
    ) -> random.Random:
        """The stream a fault decision about the (a, b) link draws from.

        In "shared" mode (the default, byte-compatible with every run
        recorded before the knob existed) this is always the one global
        stream. In "per-link" mode each order-normalised host pair gets
        its own child stream, seeded from (injector seed, pair name) — so
        any partition of the pairs across processes makes exactly the
        draws a single-process run would, which is what lets sharded
        columnar runs arm transport faults.
        """
        if not self._per_link or a is None or b is None:
            return self.rng
        pair = pair_key(a, b)
        rng = self._link_rngs.get(pair)
        if rng is None:
            child_seed = (self.seed << 32) ^ zlib.crc32(
                f"{pair[0]}|{pair[1]}".encode("utf-8")
            )
            rng = random.Random(child_seed)
            self._link_rngs[pair] = rng
        return rng

    # -- per-encounter decision points --------------------------------------------

    def encounter_allowed(self, a: str, b: str, now: float) -> bool:
        """False while the pair's retry backoff window is still open."""
        if self.tracker.can_attempt(pair_key(a, b), now):
            return True
        self.counters.backoff_skips += 1
        return False

    def should_drop_encounter(
        self, a: Optional[str] = None, b: Optional[str] = None
    ) -> bool:
        if self._drop is not None and self._drop.should_drop(self.rng_for(a, b)):
            self.counters.dropped_encounters += 1
            return True
        return False

    def transport(
        self, source: Optional[str] = None, target: Optional[str] = None
    ) -> Optional[FaultyTransport]:
        """A fresh lossy channel for one sync session (None = perfect).

        ``source``/``target`` name the session's directed link; they are
        required for the replay model (which keys its pools by link) and
        the fabrication model (which tampers with claims about the
        source's own versions), and optional otherwise — existing
        truncation/duplication-only callers keep working unchanged.
        """
        if all(
            model is None
            for model in (
                self._truncation,
                self._duplication,
                self._corruption,
                self._malformed,
                self._replay,
                self._fabrication,
            )
        ):
            return None
        pool: Optional[List[object]] = None
        if self._replay is not None and source is not None and target is not None:
            pool = self._replay_pools.setdefault((source, target), [])
        return FaultyTransport(
            self.rng_for(source, target),
            truncation=self._truncation,
            duplication=self._duplication,
            corruption=self._corruption,
            malformed=self._malformed,
            replay=self._replay,
            fabrication=self._fabrication,
            source_id=ReplicaId(source) if source is not None else None,
            replay_pool=pool,
            on_fault=self.counters.note,
        )

    def note_encounter_outcome(
        self, a: str, b: str, now: float, interrupted: bool
    ) -> bool:
        """Update resume bookkeeping; True when this encounter resumed a pair."""
        pair = pair_key(a, b)
        if interrupted:
            self.counters.interrupted_syncs += 1
            self.tracker.record_interruption(pair, now)
            return False
        if self.tracker.record_completion(pair):
            self.counters.resumed_pairs += 1
            return True
        return False

    def crash_victims(self, participants: Sequence[str]) -> List[str]:
        """Which encounter participants crash afterwards (stable order)."""
        if self._crash is None:
            return []
        victims = self._crash.pick_victims(sorted(participants), self.rng)
        self.counters.crashes += len(victims)
        return victims
