"""A faulty transport: the lossy channel between build_batch and apply_batch.

The sync engine (:mod:`repro.replication.sync`) hands a fully built batch
to the transport; what comes out the other side is what the target
actually receives. A transport may truncate the batch (losing a suffix)
and duplicate individual entries (delivering some twice). The delivered
sequence preserves batch order — the channel reorders nothing, matching
the in-order stream semantics the protocol's monotone-progress argument
relies on.

With no transport (the default everywhere), delivery is perfect and the
sync engine behaves exactly as before the fault subsystem existed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.replication.codec import encode_item, wire_size

from .models import BatchTruncation, EntryDuplication


@dataclass
class DeliveryOutcome:
    """What the channel did to one batch."""

    delivered: List[object] = field(default_factory=list)
    sent: int = 0
    truncated: bool = False
    lost: int = 0
    duplicated: int = 0


class FaultyTransport:
    """Applies truncation and duplication models to each transmitted batch.

    One transport instance mediates one sync session; the injector mints a
    fresh one per session so per-session decisions stay independent while
    sharing the injector's seeded RNG stream.
    """

    def __init__(
        self,
        rng: random.Random,
        truncation: Optional[BatchTruncation] = None,
        duplication: Optional[EntryDuplication] = None,
    ) -> None:
        self._rng = rng
        self._truncation = truncation
        self._duplication = duplication

    def _entry_sizes(self, batch: Sequence[object]) -> List[int]:
        assert self._truncation is not None
        if self._truncation.unit == "bytes":
            return [wire_size(encode_item(entry.item)) for entry in batch]
        return [1] * len(batch)

    def deliver(self, batch: Sequence[object]) -> DeliveryOutcome:
        """Run one batch through the channel, in order."""
        outcome = DeliveryOutcome(sent=len(batch))
        delivered: List[object] = list(batch)
        if self._truncation is not None and delivered:
            cut = self._truncation.plan_cut(self._entry_sizes(delivered), self._rng)
            if cut is not None:
                outcome.truncated = True
                outcome.lost = len(delivered) - cut
                delivered = delivered[:cut]
        if self._duplication is not None and delivered:
            mask = self._duplication.duplicate_mask(len(delivered), self._rng)
            doubled: List[object] = []
            for entry, again in zip(delivered, mask):
                doubled.append(entry)
                if again:
                    doubled.append(entry)
                    outcome.duplicated += 1
            delivered = doubled
        outcome.delivered = delivered
        return outcome
