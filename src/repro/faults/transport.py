"""A faulty transport: the lossy channel between build_batch and apply_batch.

The sync engine (:mod:`repro.replication.sync`) hands a fully built batch
to the transport; what comes out the other side is what the target
actually receives. A transport may truncate the batch (losing a suffix),
duplicate individual entries (delivering some twice), corrupt payloads,
replace entries with undecodable garbage frames, replay entries from
earlier sessions on the same link, and tamper with the sync request's
knowledge before the source sees it. The delivered sequence preserves
batch order — the channel reorders nothing, matching the in-order stream
semantics the protocol's monotone-progress argument relies on (replayed
entries are appended after the genuine stream).

Besides the delivered stream, the outcome reports the ``confirmed``
entries: the originals that reached the target *intact* at least once.
``perform_sync`` fires ``on_items_sent`` for exactly those — a policy
that releases its copy on hand-off (First Contact) or spends a copy
budget (Spray and Wait) must not pay for an item the target quarantined.

With no transport (the default everywhere), delivery is perfect and the
sync engine behaves exactly as before the fault subsystem existed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, List, Optional, Sequence

from repro.replication.codec import item_wire_size
from repro.replication.ids import ReplicaId, Version
from repro.replication.integrity import item_checksum
from repro.replication.sync import BatchEntry, SyncRequest

from .models import (
    BatchTruncation,
    EntryDuplication,
    FrameReplay,
    KnowledgeFabrication,
    MalformedFrame,
    PayloadCorruption,
)

#: Payload substituted into corrupted copies — recognisable in debugging
#: dumps, and guaranteed to differ from any honest JSON payload.
CORRUPTED_PAYLOAD = "\x00<corrupted-in-transit>"

#: Replay pool cap per directed link: old enough entries age out, which
#: keeps pool state bounded however long an emulation runs.
REPLAY_POOL_LIMIT = 32


@dataclass
class DeliveryOutcome:
    """What the channel did to one batch.

    ``delivered`` is the stream the target receives (possibly containing
    corrupted entries and garbage frames); ``confirmed`` — when the
    transport computes it — lists the original entries that arrived
    intact at least once, which is what delivery confirmation
    (``on_items_sent``) must be based on. ``None`` means the transport
    does not distinguish (perfect-content channels), and the consumer
    falls back to ``delivered``.
    """

    delivered: List[object] = field(default_factory=list)
    sent: int = 0
    truncated: bool = False
    lost: int = 0
    duplicated: int = 0
    corrupted: int = 0
    malformed: int = 0
    replayed: int = 0
    confirmed: Optional[List[object]] = None


class FaultyTransport:
    """Applies the armed channel-fault models to each transmitted batch.

    One transport instance mediates one sync session; the injector mints a
    fresh one per session so per-session decisions stay independent while
    sharing the injector's seeded RNG stream. ``replay_pool`` (when
    given) is the injector-owned pool of previously confirmed entries for
    this directed link — the transport draws replays from it and feeds
    newly confirmed entries back into it. ``on_fault`` (when given) is
    called with a counter name each time a fault actually fires, which is
    how the injector's bookkeeping sees channel-level events.
    """

    def __init__(
        self,
        rng: random.Random,
        truncation: Optional[BatchTruncation] = None,
        duplication: Optional[EntryDuplication] = None,
        corruption: Optional[PayloadCorruption] = None,
        malformed: Optional[MalformedFrame] = None,
        replay: Optional[FrameReplay] = None,
        fabrication: Optional[KnowledgeFabrication] = None,
        source_id: Optional[ReplicaId] = None,
        replay_pool: Optional[List[BatchEntry]] = None,
        on_fault: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        self._rng = rng
        self._truncation = truncation
        self._duplication = duplication
        self._corruption = corruption
        self._malformed = malformed
        self._replay = replay
        self._fabrication = fabrication
        self._source_id = source_id
        self._replay_pool = replay_pool
        self._on_fault = on_fault

    def _count(self, counter: str, amount: int = 1) -> None:
        if self._on_fault is not None and amount:
            self._on_fault(counter, amount)

    # -- request tampering ---------------------------------------------------------

    def corrupt_request(self, request: SyncRequest) -> SyncRequest:
        """Possibly tamper with the request's knowledge (fabrication model).

        Exact-mode requests get their vector inflated: a copy — knowledge
        travels by value, so the target's live vector is never touched —
        claiming counters of the *source's* own authoring range, which is
        exactly the claim the source can validate against what it
        actually authored.

        Digest-mode requests cannot be inflated counter-by-counter, so
        the model attacks the digest itself, alternating (by one RNG
        draw) between the two detectable shapes: a **saturated** bitmap
        with a consistently restamped checksum — the strongest
        suppression attack, every membership probe hits, caught by the
        fabrication probes — and a **bit-flipped** bitmap under the stale
        checksum, i.e. transit damage, caught by the integrity check.
        """
        if self._fabrication is None or self._source_id is None:
            return request
        inflate = self._fabrication.inflate_by(self._rng)
        if inflate == 0:
            return request
        self._count("fabricated_requests")
        if request.digest is not None:
            if self._rng.random() < 0.5:
                tampered = request.digest.with_bits(
                    b"\xff" * len(request.digest.bits), restamp=True
                )
            else:
                damaged = bytearray(request.digest.bits)
                damaged[self._rng.randrange(len(damaged))] ^= (
                    1 << self._rng.randrange(8)
                )
                tampered = request.digest.with_bits(
                    bytes(damaged), restamp=False
                )
            return SyncRequest(
                target_id=request.target_id,
                knowledge=request.knowledge,
                filter=request.filter,
                routing_state=request.routing_state,
                digest=tampered,
            )
        knowledge = request.knowledge.copy()
        base = max(
            knowledge.known_counter_prefix(self._source_id),
            max(knowledge.extra_counters(self._source_id), default=0),
        )
        for counter in range(base + 1, base + inflate + 1):
            knowledge.add(Version(self._source_id, counter))
        return SyncRequest(
            target_id=request.target_id,
            knowledge=knowledge,
            filter=request.filter,
            routing_state=request.routing_state,
            digest=request.digest,
        )

    # -- batch delivery ------------------------------------------------------------

    def _entry_sizes(self, batch: Sequence[Any]) -> List[int]:
        assert self._truncation is not None
        if self._truncation.unit == "bytes":
            # Memoised per item object: re-offers of the same stored copy
            # across retried sessions skip the re-encoding.
            return [item_wire_size(entry.item) for entry in batch]
        return [1] * len(batch)

    def deliver(self, batch: Sequence[Any]) -> DeliveryOutcome:
        """Run one batch through the channel, in order.

        Model order is fixed (truncation → duplication → corruption →
        malformed frames → replay) so a (config, seed) pair replays the
        exact same fault schedule.
        """
        outcome = DeliveryOutcome(sent=len(batch))
        delivered: List[Any] = list(batch)
        if self._truncation is not None and delivered:
            cut = self._truncation.plan_cut(self._entry_sizes(delivered), self._rng)
            if cut is not None:
                outcome.truncated = True
                outcome.lost = len(delivered) - cut
                delivered = delivered[:cut]

        # From here on, track (original, wire copy) pairs: ``original``
        # survives only while the wire copy is intact, so the confirmed
        # set falls out of the surviving left-hand sides.
        stream = [(entry, entry) for entry in delivered]
        if self._duplication is not None and stream:
            mask = self._duplication.duplicate_mask(len(stream), self._rng)
            doubled = []
            for pair, again in zip(stream, mask):
                doubled.append(pair)
                if again:
                    doubled.append(pair)
                    outcome.duplicated += 1
            stream = doubled
        if self._corruption is not None and stream:
            mask = self._corruption.corrupt_mask(len(stream), self._rng)
            for index, hit in enumerate(mask):
                if hit:
                    stream[index] = (None, _corrupt_copy(stream[index][1]))
                    outcome.corrupted += 1
        if self._malformed is not None and stream:
            mask = self._malformed.malform_mask(len(stream), self._rng)
            for index, hit in enumerate(mask):
                if hit:
                    stream[index] = (None, {"malformed-frame": index})
                    outcome.malformed += 1
        if self._replay is not None and self._replay_pool:
            for index in self._replay.plan_replay(
                len(self._replay_pool), self._rng
            ):
                stream.append((None, self._replay_pool[index]))
                outcome.replayed += 1

        outcome.delivered = [wire for _, wire in stream]
        confirmed: List[object] = []
        seen = set()
        for original, _ in stream:
            if original is None or id(original) in seen:
                continue
            seen.add(id(original))
            confirmed.append(original)
        outcome.confirmed = confirmed
        if self._replay_pool is not None and confirmed:
            self._replay_pool.extend(
                entry for entry in confirmed if isinstance(entry, BatchEntry)
            )
            del self._replay_pool[:-REPLAY_POOL_LIMIT]
        self._count("corrupted_entries", outcome.corrupted)
        self._count("malformed_entries", outcome.malformed)
        self._count("replayed_entries", outcome.replayed)
        return outcome


def _corrupt_copy(entry: Any) -> Any:
    """A copy of ``entry`` whose payload was damaged in transit.

    The checksum is preserved (stamped before the damage, as a real
    sender would), so the receiver's integrity check must catch the
    mismatch. Entries that were never stamped get the checksum of their
    *original* content — damage to an unchecksummed frame would otherwise
    be undetectable by construction, which is not what this model is for.
    """
    if not isinstance(entry, BatchEntry):
        return entry
    checksum = entry.checksum or item_checksum(entry.item)
    damaged = replace(entry.item, payload=CORRUPTED_PAYLOAD)
    return replace(entry, item=damaged, checksum=checksum)
