"""The pluggable fault models.

Each model is a small, stateless decision procedure: it is handed the
injector's RNG at every decision point and draws from it in a fixed
order, so a (config, seed) pair replays the exact same fault schedule.
Models never touch replicas or metrics themselves — the injector and the
emulation layer act on their decisions — which keeps them unit-testable
and lets alternative models plug in without touching the sync engine.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence


class FaultModel:
    """Base class: a named fault model with a firing probability."""

    name = "fault"

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability!r}")
        self.probability = probability

    def fires(self, rng: random.Random) -> bool:
        """One Bernoulli draw. Zero-probability models never consume RNG."""
        if self.probability <= 0.0:
            return False
        return rng.random() < self.probability

    def describe(self) -> Dict[str, object]:
        return {"model": self.name, "probability": self.probability}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(p={self.probability})"


class BernoulliEncounterDrop(FaultModel):
    """Drop a whole encounter: contact established, no sync completed."""

    name = "encounter-drop"

    def should_drop(self, rng: random.Random) -> bool:
        return self.fires(rng)


class BatchTruncation(FaultModel):
    """Cut a sync batch after K entries (or bytes): connection died mid-batch.

    ``minimum``/``maximum`` bound the delivered budget; ``unit`` selects
    whether the budget counts batch entries (``"items"``) or wire bytes
    (``"bytes"``). With ``maximum=None`` the budget ranges up to one unit
    short of the full batch, so a firing truncation always loses something.
    """

    name = "batch-truncation"

    def __init__(
        self,
        probability: float,
        minimum: int = 0,
        maximum: Optional[int] = None,
        unit: str = "items",
    ) -> None:
        super().__init__(probability)
        if minimum < 0:
            raise ValueError("minimum must be >= 0")
        if maximum is not None and maximum < minimum:
            raise ValueError("maximum must be >= minimum or None")
        if unit not in ("items", "bytes"):
            raise ValueError(f"unit must be 'items' or 'bytes', got {unit!r}")
        self.minimum = minimum
        self.maximum = maximum
        self.unit = unit

    def plan_cut(
        self, entry_sizes: Sequence[int], rng: random.Random
    ) -> Optional[int]:
        """Decide how many leading entries survive, or None for no fault.

        ``entry_sizes`` gives the cost of each batch entry in this model's
        unit (all 1 for item counting, wire bytes otherwise). The budget K
        is drawn uniformly from ``[minimum, maximum]`` (clamped so the cut
        is a strict truncation), and the delivered prefix is the longest
        one whose total size fits within K.
        """
        if not entry_sizes or not self.fires(rng):
            return None
        total = sum(entry_sizes)
        high = total - 1 if self.maximum is None else min(self.maximum, total - 1)
        if high < 0:
            return None
        low = min(self.minimum, high)
        budget = rng.randint(low, high)
        delivered = 0
        consumed = 0
        for size in entry_sizes:
            if consumed + size > budget:
                break
            consumed += size
            delivered += 1
        if delivered >= len(entry_sizes):
            return None
        return delivered

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {"minimum": self.minimum, "maximum": self.maximum, "unit": self.unit}
        )
        return description


class EntryDuplication(FaultModel):
    """Deliver some batch entries twice: retransmission without dedup."""

    name = "entry-duplication"

    def duplicate_mask(self, count: int, rng: random.Random) -> List[bool]:
        """One independent draw per delivered entry, in batch order."""
        if self.probability <= 0.0:
            return [False] * count
        return [rng.random() < self.probability for _ in range(count)]


class CrashRestart(FaultModel):
    """Crash a node after an encounter; it restarts from durable state."""

    name = "crash-restart"

    def pick_victims(
        self, participants: Sequence[str], rng: random.Random
    ) -> List[str]:
        """Independent per-participant draws, in the given (stable) order."""
        return [name for name in participants if self.fires(rng)]


# -- adversarial models -----------------------------------------------------------
#
# The four models below attack the *content* of the protocol rather than
# its timing: flipped payload bytes, garbage frames, replayed batches,
# and fabricated knowledge. They exercise the hardened receive path
# (checksums, per-entry quarantine, request validation) the way the
# transport models exercise resume/backoff.


class PayloadCorruption(FaultModel):
    """Flip a delivered entry's payload in transit: bit rot on the link.

    The corrupted copy still carries the sender's checksum, so the
    receiver's integrity check catches it and quarantines the entry; the
    real item retries at a later contact.
    """

    name = "payload-corruption"

    def corrupt_mask(self, count: int, rng: random.Random) -> List[bool]:
        """One independent draw per delivered copy, in stream order."""
        if self.probability <= 0.0:
            return [False] * count
        return [rng.random() < self.probability for _ in range(count)]


class MalformedFrame(FaultModel):
    """Replace a delivered entry with an undecodable garbage frame.

    Models framing-level damage (or a buggy/hostile peer) severe enough
    that the entry cannot even be parsed; the hardened receive path must
    skip it without aborting the rest of the batch.
    """

    name = "malformed-frame"

    def malform_mask(self, count: int, rng: random.Random) -> List[bool]:
        """One independent draw per delivered copy, in stream order."""
        if self.probability <= 0.0:
            return [False] * count
        return [rng.random() < self.probability for _ in range(count)]


class FrameReplay(FaultModel):
    """Re-deliver entries from an earlier session on the same link.

    Fires at most once per sync session; when it does, between one and
    ``maximum_entries`` previously delivered entries (sampled from the
    link's replay pool) are appended to the stream. The receiver already
    knows their versions, so an honest-source contract makes them
    detectable as replays — and at-most-once delivery must hold anyway.
    """

    name = "frame-replay"

    def __init__(self, probability: float, maximum_entries: int = 3) -> None:
        super().__init__(probability)
        if maximum_entries < 1:
            raise ValueError("maximum_entries must be >= 1")
        self.maximum_entries = maximum_entries

    def plan_replay(self, pool_size: int, rng: random.Random) -> List[int]:
        """Indices into the replay pool to re-deliver (may be empty)."""
        if pool_size <= 0 or not self.fires(rng):
            return []
        count = rng.randint(1, min(self.maximum_entries, pool_size))
        return sorted(rng.sample(range(pool_size), count))

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description["maximum_entries"] = self.maximum_entries
        return description


class KnowledgeFabrication(FaultModel):
    """Inflate the knowledge in a sync request beyond what its sender has.

    Models a tampered (or lying) target that claims to already know
    versions it never received — an unguarded source would then withhold
    real items forever. Fires at most once per session; the inflation
    amount is drawn uniformly from ``[1, maximum_inflation]``.
    """

    name = "knowledge-fabrication"

    def __init__(self, probability: float, maximum_inflation: int = 5) -> None:
        super().__init__(probability)
        if maximum_inflation < 1:
            raise ValueError("maximum_inflation must be >= 1")
        self.maximum_inflation = maximum_inflation

    def inflate_by(self, rng: random.Random) -> int:
        """How many counters to fabricate this session (0 = no fault)."""
        if not self.fires(rng):
            return 0
        return rng.randint(1, self.maximum_inflation)

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description["maximum_inflation"] = self.maximum_inflation
        return description
