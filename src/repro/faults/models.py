"""The pluggable fault models.

Each model is a small, stateless decision procedure: it is handed the
injector's RNG at every decision point and draws from it in a fixed
order, so a (config, seed) pair replays the exact same fault schedule.
Models never touch replicas or metrics themselves — the injector and the
emulation layer act on their decisions — which keeps them unit-testable
and lets alternative models plug in without touching the sync engine.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence


class FaultModel:
    """Base class: a named fault model with a firing probability."""

    name = "fault"

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability!r}")
        self.probability = probability

    def fires(self, rng: random.Random) -> bool:
        """One Bernoulli draw. Zero-probability models never consume RNG."""
        if self.probability <= 0.0:
            return False
        return rng.random() < self.probability

    def describe(self) -> Dict[str, object]:
        return {"model": self.name, "probability": self.probability}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(p={self.probability})"


class BernoulliEncounterDrop(FaultModel):
    """Drop a whole encounter: contact established, no sync completed."""

    name = "encounter-drop"

    def should_drop(self, rng: random.Random) -> bool:
        return self.fires(rng)


class BatchTruncation(FaultModel):
    """Cut a sync batch after K entries (or bytes): connection died mid-batch.

    ``minimum``/``maximum`` bound the delivered budget; ``unit`` selects
    whether the budget counts batch entries (``"items"``) or wire bytes
    (``"bytes"``). With ``maximum=None`` the budget ranges up to one unit
    short of the full batch, so a firing truncation always loses something.
    """

    name = "batch-truncation"

    def __init__(
        self,
        probability: float,
        minimum: int = 0,
        maximum: Optional[int] = None,
        unit: str = "items",
    ) -> None:
        super().__init__(probability)
        if minimum < 0:
            raise ValueError("minimum must be >= 0")
        if maximum is not None and maximum < minimum:
            raise ValueError("maximum must be >= minimum or None")
        if unit not in ("items", "bytes"):
            raise ValueError(f"unit must be 'items' or 'bytes', got {unit!r}")
        self.minimum = minimum
        self.maximum = maximum
        self.unit = unit

    def plan_cut(
        self, entry_sizes: Sequence[int], rng: random.Random
    ) -> Optional[int]:
        """Decide how many leading entries survive, or None for no fault.

        ``entry_sizes`` gives the cost of each batch entry in this model's
        unit (all 1 for item counting, wire bytes otherwise). The budget K
        is drawn uniformly from ``[minimum, maximum]`` (clamped so the cut
        is a strict truncation), and the delivered prefix is the longest
        one whose total size fits within K.
        """
        if not entry_sizes or not self.fires(rng):
            return None
        total = sum(entry_sizes)
        high = total - 1 if self.maximum is None else min(self.maximum, total - 1)
        if high < 0:
            return None
        low = min(self.minimum, high)
        budget = rng.randint(low, high)
        delivered = 0
        consumed = 0
        for size in entry_sizes:
            if consumed + size > budget:
                break
            consumed += size
            delivered += 1
        if delivered >= len(entry_sizes):
            return None
        return delivered

    def describe(self) -> Dict[str, object]:
        description = super().describe()
        description.update(
            {"minimum": self.minimum, "maximum": self.maximum, "unit": self.unit}
        )
        return description


class EntryDuplication(FaultModel):
    """Deliver some batch entries twice: retransmission without dedup."""

    name = "entry-duplication"

    def duplicate_mask(self, count: int, rng: random.Random) -> List[bool]:
        """One independent draw per delivered entry, in batch order."""
        if self.probability <= 0.0:
            return [False] * count
        return [rng.random() < self.probability for _ in range(count)]


class CrashRestart(FaultModel):
    """Crash a node after an encounter; it restarts from durable state."""

    name = "crash-restart"

    def pick_victims(
        self, participants: Sequence[str], rng: random.Random
    ) -> List[str]:
        """Independent per-participant draws, in the given (stable) order."""
        return [name for name in participants if self.fires(rng)]
