"""Configuration for the fault-injection subsystem.

A :class:`FaultConfig` is a complete, declarative description of the
failure environment an emulation runs in: which fault models are armed,
how aggressive each one is, and how interrupted sessions back off before
retrying. Like :class:`~repro.experiments.config.ExperimentConfig` it is
frozen and fully validated at construction, so a config plus a seed is a
reproducible description of every fault the run will see.

All probabilities default to ``0.0`` — a default-constructed config is
*disabled* and an emulator given one behaves bit-for-bit like an emulator
given no fault config at all (the zero-fault equivalence guarantee,
enforced by ``tests/integration/test_zero_fault_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional

from repro._compat import keyword_only_dataclass

#: Truncation budgets may be expressed in batch entries or in wire bytes.
TRUNCATION_UNITS = ("items", "bytes")

#: How the injector organises its randomness: one global stream (the
#: original layout, byte-compatible with every pre-existing run) or one
#: seeded child stream per host pair (splittable across shard workers).
RNG_STREAM_MODES = ("shared", "per-link")


@keyword_only_dataclass
@dataclass(frozen=True)
class FaultConfig:
    """Knobs for every fault model plus the retry/backoff policy.

    Fault models (each armed when its probability is positive):

    * ``encounter_drop_probability`` — Bernoulli drop of a whole
      encounter: the radio contact happened but no sync ran.
    * ``truncation_probability`` — per sync session, cut the batch after
      ``K`` delivered entries (or bytes), ``K`` drawn uniformly from
      ``[truncation_min, truncation_max]``; the target keeps the prefix.
    * ``duplication_probability`` — per delivered batch entry, the
      transport delivers a second copy immediately after the first
      (link-layer retransmission without acknowledgement).
    * ``crash_probability`` — per encounter participant, the node crashes
      after the encounter and restarts from durable state via the
      persistence layer.

    Adversarial models (content-level misbehaviour; see
    ``docs/faults.md``):

    * ``corruption_probability`` — per delivered copy, the payload is
      corrupted in transit (the checksum catches it at the receiver).
    * ``replay_probability`` — per sync session, previously delivered
      entries from the same link are re-delivered.
    * ``fabrication_probability`` — per sync session, the sync request's
      knowledge is inflated to claim versions the target never received.
    * ``malformed_probability`` — per delivered copy, the entry is
      replaced by an undecodable garbage frame.

    Retry/backoff bookkeeping (applies to interrupted sessions):

    * ``retry_backoff_base`` — seconds to wait before re-attempting a
      pair whose last sync was truncated.
    * ``retry_backoff_factor`` — exponential growth per consecutive
      interruption.
    * ``retry_backoff_max`` — cap on the computed delay.

    Peer-health policy (consumed by
    :class:`repro.replication.peer_health.PeerHealthTracker`): a peer
    accumulating ``suspect_threshold`` violation strikes turns suspect,
    ``quarantine_threshold`` turns quarantined; quarantined peers wait
    out an exponential backoff (``quarantine_backoff_*`` with
    ``quarantine_jitter``) before ``recovery_probes`` consecutive clean
    probe encounters restore them to healthy.
    """

    encounter_drop_probability: float = 0.0
    truncation_probability: float = 0.0
    truncation_min: int = 0
    truncation_max: Optional[int] = None
    truncation_unit: str = "items"
    duplication_probability: float = 0.0
    crash_probability: float = 0.0
    corruption_probability: float = 0.0
    replay_probability: float = 0.0
    fabrication_probability: float = 0.0
    malformed_probability: float = 0.0
    retry_backoff_base: float = 60.0
    retry_backoff_factor: float = 2.0
    retry_backoff_max: float = 3600.0
    suspect_threshold: int = 3
    quarantine_threshold: int = 6
    quarantine_backoff_base: float = 120.0
    quarantine_backoff_factor: float = 2.0
    quarantine_backoff_max: float = 3600.0
    quarantine_jitter: float = 0.1
    recovery_probes: int = 2
    # RNG organisation: "shared" draws every fault decision from one
    # global stream (byte-identical to all pre-existing runs); "per-link"
    # derives a seeded child stream per host pair, so a run partitioned
    # across shard workers makes exactly the draws a global run would —
    # the mode that unlocks transport faults on sharded columnar runs.
    rng_streams: str = "shared"

    def __post_init__(self) -> None:
        for name in (
            "encounter_drop_probability",
            "truncation_probability",
            "duplication_probability",
            "crash_probability",
            "corruption_probability",
            "replay_probability",
            "fabrication_probability",
            "malformed_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.truncation_unit not in TRUNCATION_UNITS:
            raise ValueError(
                f"truncation_unit must be one of {TRUNCATION_UNITS}, "
                f"got {self.truncation_unit!r}"
            )
        if self.truncation_min < 0:
            raise ValueError("truncation_min must be >= 0")
        if self.truncation_max is not None and self.truncation_max < self.truncation_min:
            raise ValueError("truncation_max must be >= truncation_min or None")
        if self.retry_backoff_base <= 0:
            raise ValueError("retry_backoff_base must be positive")
        if self.retry_backoff_factor < 1.0:
            raise ValueError("retry_backoff_factor must be >= 1")
        if self.retry_backoff_max < self.retry_backoff_base:
            raise ValueError("retry_backoff_max must be >= retry_backoff_base")
        if self.suspect_threshold < 1:
            raise ValueError("suspect_threshold must be >= 1")
        if self.quarantine_threshold < self.suspect_threshold:
            raise ValueError(
                "quarantine_threshold must be >= suspect_threshold"
            )
        if self.quarantine_backoff_base <= 0:
            raise ValueError("quarantine_backoff_base must be positive")
        if self.quarantine_backoff_factor < 1.0:
            raise ValueError("quarantine_backoff_factor must be >= 1")
        if self.quarantine_backoff_max < self.quarantine_backoff_base:
            raise ValueError(
                "quarantine_backoff_max must be >= quarantine_backoff_base"
            )
        if not 0.0 <= self.quarantine_jitter < 1.0:
            raise ValueError("quarantine_jitter must be in [0, 1)")
        if self.recovery_probes < 1:
            raise ValueError("recovery_probes must be >= 1")
        if self.rng_streams not in RNG_STREAM_MODES:
            raise ValueError(
                f"rng_streams must be one of {RNG_STREAM_MODES}, "
                f"got {self.rng_streams!r}"
            )

    @property
    def enabled(self) -> bool:
        """True when at least one fault model can actually fire."""
        return any(
            probability > 0.0
            for probability in (
                self.encounter_drop_probability,
                self.truncation_probability,
                self.duplication_probability,
                self.crash_probability,
                self.corruption_probability,
                self.replay_probability,
                self.fabrication_probability,
                self.malformed_probability,
            )
        )

    @property
    def has_transport_faults(self) -> bool:
        """True when any per-session channel fault is armed (the sync
        engine then routes batches through a :class:`FaultyTransport`)."""
        return any(
            probability > 0.0
            for probability in (
                self.truncation_probability,
                self.duplication_probability,
                self.corruption_probability,
                self.replay_probability,
                self.fabrication_probability,
                self.malformed_probability,
            )
        )

    @property
    def has_adversarial_faults(self) -> bool:
        """True when a content-level (adversarial) fault model is armed."""
        return any(
            probability > 0.0
            for probability in (
                self.corruption_probability,
                self.replay_probability,
                self.fabrication_probability,
                self.malformed_probability,
            )
        )

    # -- serialization (the repro.api round-trip contract) ------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; ``from_dict(to_dict())`` reconstructs exactly.

        ``rng_streams`` is omitted at its default ("shared") so the
        serialized form — and therefore every content-addressed run id
        derived from it — is unchanged for configs predating the knob.
        """
        data = asdict(self)
        if data.get("rng_streams") == "shared":
            del data["rng_streams"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultConfig":
        """Rebuild a config serialized by :meth:`to_dict`.

        Unknown keys raise :class:`TypeError` naming the offending field
        (via the keyword-only constructor), so a stale artifact fails
        loudly instead of silently dropping a knob.
        """
        return cls(**dict(data))
