"""Configuration for the fault-injection subsystem.

A :class:`FaultConfig` is a complete, declarative description of the
failure environment an emulation runs in: which fault models are armed,
how aggressive each one is, and how interrupted sessions back off before
retrying. Like :class:`~repro.experiments.config.ExperimentConfig` it is
frozen and fully validated at construction, so a config plus a seed is a
reproducible description of every fault the run will see.

All probabilities default to ``0.0`` — a default-constructed config is
*disabled* and an emulator given one behaves bit-for-bit like an emulator
given no fault config at all (the zero-fault equivalence guarantee,
enforced by ``tests/integration/test_zero_fault_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional

from repro._compat import keyword_only_dataclass

#: Truncation budgets may be expressed in batch entries or in wire bytes.
TRUNCATION_UNITS = ("items", "bytes")


@keyword_only_dataclass
@dataclass(frozen=True)
class FaultConfig:
    """Knobs for every fault model plus the retry/backoff policy.

    Fault models (each armed when its probability is positive):

    * ``encounter_drop_probability`` — Bernoulli drop of a whole
      encounter: the radio contact happened but no sync ran.
    * ``truncation_probability`` — per sync session, cut the batch after
      ``K`` delivered entries (or bytes), ``K`` drawn uniformly from
      ``[truncation_min, truncation_max]``; the target keeps the prefix.
    * ``duplication_probability`` — per delivered batch entry, the
      transport delivers a second copy immediately after the first
      (link-layer retransmission without acknowledgement).
    * ``crash_probability`` — per encounter participant, the node crashes
      after the encounter and restarts from durable state via the
      persistence layer.

    Retry/backoff bookkeeping (applies to interrupted sessions):

    * ``retry_backoff_base`` — seconds to wait before re-attempting a
      pair whose last sync was truncated.
    * ``retry_backoff_factor`` — exponential growth per consecutive
      interruption.
    * ``retry_backoff_max`` — cap on the computed delay.
    """

    encounter_drop_probability: float = 0.0
    truncation_probability: float = 0.0
    truncation_min: int = 0
    truncation_max: Optional[int] = None
    truncation_unit: str = "items"
    duplication_probability: float = 0.0
    crash_probability: float = 0.0
    retry_backoff_base: float = 60.0
    retry_backoff_factor: float = 2.0
    retry_backoff_max: float = 3600.0

    def __post_init__(self) -> None:
        for name in (
            "encounter_drop_probability",
            "truncation_probability",
            "duplication_probability",
            "crash_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.truncation_unit not in TRUNCATION_UNITS:
            raise ValueError(
                f"truncation_unit must be one of {TRUNCATION_UNITS}, "
                f"got {self.truncation_unit!r}"
            )
        if self.truncation_min < 0:
            raise ValueError("truncation_min must be >= 0")
        if self.truncation_max is not None and self.truncation_max < self.truncation_min:
            raise ValueError("truncation_max must be >= truncation_min or None")
        if self.retry_backoff_base <= 0:
            raise ValueError("retry_backoff_base must be positive")
        if self.retry_backoff_factor < 1.0:
            raise ValueError("retry_backoff_factor must be >= 1")
        if self.retry_backoff_max < self.retry_backoff_base:
            raise ValueError("retry_backoff_max must be >= retry_backoff_base")

    @property
    def enabled(self) -> bool:
        """True when at least one fault model can actually fire."""
        return any(
            probability > 0.0
            for probability in (
                self.encounter_drop_probability,
                self.truncation_probability,
                self.duplication_probability,
                self.crash_probability,
            )
        )

    @property
    def has_transport_faults(self) -> bool:
        """True when per-batch (truncation/duplication) faults are armed."""
        return self.truncation_probability > 0.0 or self.duplication_probability > 0.0

    # -- serialization (the repro.api round-trip contract) ------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; ``from_dict(to_dict())`` reconstructs exactly."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultConfig":
        """Rebuild a config serialized by :meth:`to_dict`.

        Unknown keys raise :class:`TypeError` naming the offending field
        (via the keyword-only constructor), so a stale artifact fails
        loudly instead of silently dropping a knob.
        """
        return cls(**dict(data))
