"""Fault injection for the replication substrate and the emulation.

The paper's robustness claim — Cimbiosys-style batch ordering lets an
interrupted sync make durable, monotone progress — is only worth stating
if it survives actual faults. This package provides the faults:

* :class:`FaultConfig` — declarative, validated description of a failure
  environment (drop/truncation/duplication/crash probabilities plus the
  retry backoff policy);
* the pluggable fault models in :mod:`repro.faults.models`;
* :class:`FaultyTransport` — the lossy channel the sync engine routes
  batches through;
* :class:`FaultInjector` — seeded orchestration with its own RNG stream
  (fault schedules never perturb the base experiment's randomness) and
  :class:`ResumeTracker` retry/backoff bookkeeping.

See ``docs/faults.md`` for the model-by-model description and
``tests/integration/test_fault_invariants.py`` for the randomized
harness that checks the substrate's guarantees under mixed fault
schedules.
"""

from .config import TRUNCATION_UNITS, FaultConfig
from .injector import (
    FaultCounters,
    FaultInjector,
    Pair,
    ResumeTracker,
    RetryState,
    pair_key,
)
from .models import (
    BatchTruncation,
    BernoulliEncounterDrop,
    CrashRestart,
    EntryDuplication,
    FaultModel,
    FrameReplay,
    KnowledgeFabrication,
    MalformedFrame,
    PayloadCorruption,
)
from .transport import (
    CORRUPTED_PAYLOAD,
    REPLAY_POOL_LIMIT,
    DeliveryOutcome,
    FaultyTransport,
)

__all__ = [
    "BatchTruncation",
    "BernoulliEncounterDrop",
    "CORRUPTED_PAYLOAD",
    "CrashRestart",
    "DeliveryOutcome",
    "EntryDuplication",
    "FaultConfig",
    "FaultCounters",
    "FaultInjector",
    "FaultModel",
    "FaultyTransport",
    "FrameReplay",
    "KnowledgeFabrication",
    "MalformedFrame",
    "Pair",
    "PayloadCorruption",
    "REPLAY_POOL_LIMIT",
    "ResumeTracker",
    "RetryState",
    "TRUNCATION_UNITS",
    "pair_key",
]
