"""The emulator: replays a trace against a population of emulated nodes.

This is the paper's experimental environment (Section VI-A) in simulated
time: "Each DTN application instance represents a different device and is
paired with a Cimbiosys replica. Whenever a host sends a message, the DTN
application simply inserts the message into the sending host's replica.
During an encounter between two hosts, we performed two syncs between the
corresponding replicas, alternating the source and target roles."

The emulator schedules three event kinds on the discrete-event engine:

* **reassignments** (day boundaries, first): each node's hosted-user set is
  replaced — filters change, relayed mail can become delivered mail;
* **injections**: a user's message enters the replica of whichever node
  currently hosts the user;
* **encounters**: two syncs with alternating roles, optionally capped by
  the Figure 9 bandwidth constraint.

Everything is deterministic given the trace, the workload, and ``seed``
(used only to pick which side of an encounter initiates first).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from repro.faults import FaultConfig, FaultInjector
from repro.replication.digest import DigestConfig
from repro.replication.errors import SyncProtocolError
from repro.replication.events import BaseReplicaObserver
from repro.replication.items import Item
from repro.replication.peer_health import PeerHealthTracker
from repro.replication.session import EncounterSession, SessionConfig

from .encounters import SECONDS_PER_DAY, Encounter, EncounterTrace
from .engine import EventPriority, SimulationEngine
from .metrics import MetricsCollector
from .node import EmulatedNode


@dataclass(frozen=True)
class Injection:
    """A message the workload injects: who sends what to whom, when."""

    time: float
    source: str
    destination: str
    body: object = None


#: day → node name → user addresses hosted that day.
AssignmentSchedule = Mapping[int, Mapping[str, FrozenSet[str]]]


class _EvictionCounter(BaseReplicaObserver):
    def __init__(self, metrics: MetricsCollector) -> None:
        self._metrics = metrics

    def on_evict(self, item: Item) -> None:
        self._metrics.record_eviction()


class Emulator:
    """Wires trace + workload + nodes together and runs to completion."""

    def __init__(
        self,
        trace: EncounterTrace,
        nodes: Mapping[str, EmulatedNode],
        injections: Sequence[Injection] = (),
        assignments: Optional[AssignmentSchedule] = None,
        bandwidth_limit: Optional[int] = None,
        messages_per_second: Optional[float] = None,
        sync_failure_probability: float = 0.0,
        seed: int = 0,
        metrics: Optional[MetricsCollector] = None,
        faults: Optional[FaultConfig] = None,
        fault_seed: int = 0,
        digest: Optional[DigestConfig] = None,
        churn: Optional["ChurnConfig"] = None,
        churn_schedule: Optional["ChurnSchedule"] = None,
    ) -> None:
        """Realism knobs beyond the paper's Figure 9/10 limits:

        * ``messages_per_second`` derives a per-encounter transfer budget
          from the encounter's radio-contact ``duration`` (encounters
          without a recorded duration stay unlimited); it composes with
          ``bandwidth_limit`` by taking the tighter of the two.
        * ``sync_failure_probability`` drops whole encounters at random
          (the radio contact happened but no sync completed), seeded and
          deterministic. The substrate's crash-safety makes this purely a
          performance effect, never a correctness one.
        * ``faults`` + ``fault_seed`` arm the :mod:`repro.faults`
          subsystem: encounter drops, mid-batch truncation, duplicated
          delivery, crash-restarts, and the adversarial channel models
          (payload corruption, malformed frames, frame replay, knowledge
          fabrication), with retry/backoff bookkeeping for interrupted
          pairs and per-peer health tracking (suspect/quarantine with
          jittered backoff and recovery probes). The injector draws from
          its *own* RNG seeded by ``fault_seed``, so arming faults never
          perturbs the base experiment's random draws.
        * ``digest`` arms the compact knowledge-digest mode of the sync
          protocol (``docs/protocol.md`` §8): targets summarise their
          knowledge as a Bloom digest instead of shipping the exact
          vector whenever the digest is smaller. A false positive can
          only *suppress* an item for one contact (never deliver a
          duplicate), and the suppressed item is re-offered at a later
          contact under a fresh salt — suppression is retried, never
          lost.
        * ``churn`` arms the :mod:`repro.churn` lifecycle model: late
          arrivals, graceful leaves with a final handoff sync, abrupt
          crashes with checkpoint or amnesiac rejoin, free-riding
          behaviours, and reciprocity-gated encounter admission. The
          schedule is derived from ``(churn, trace)`` alone (pass
          ``churn_schedule`` to reuse an already-derived one); arming
          churn consumes none of the base experiment's random draws.
        """
        if not 0.0 <= sync_failure_probability <= 1.0:
            raise ValueError("sync_failure_probability must be in [0, 1]")
        if messages_per_second is not None and messages_per_second <= 0:
            raise ValueError("messages_per_second must be positive")
        self.trace = trace
        self.nodes: Dict[str, EmulatedNode] = dict(nodes)
        self.injections = list(injections)
        self.assignments = dict(assignments or {})
        self.bandwidth_limit = bandwidth_limit
        self.messages_per_second = messages_per_second
        self.sync_failure_probability = sync_failure_probability
        self.failed_encounters = 0
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.digest = digest
        self.engine = SimulationEngine()
        self._rng = random.Random(seed)
        self._user_location: Dict[str, str] = {}
        self._current_day_map: Mapping[str, FrozenSet[str]] = {}
        self._skipped_injections: list[Injection] = []
        # Churn wiring (imported lazily: repro.emulation.__init__ pulls
        # this module in, and repro.churn imports emulation submodules —
        # a top-level import here would close that cycle mid-init).
        self.churn = churn if churn is not None and churn.enabled else None
        self.churn_schedule = None
        self.lifecycle = None
        self.reciprocity = None
        if self.churn is not None:
            from repro.churn.lifecycle import LifecycleTracker
            from repro.churn.schedule import generate_churn_schedule
            from repro.churn.trust import ReciprocityLedger

            self.churn_schedule = (
                churn_schedule
                if churn_schedule is not None
                else generate_churn_schedule(self.churn, trace)
            )
            self.lifecycle = LifecycleTracker(
                sorted(self.nodes), self.churn_schedule
            )
            self.reciprocity = ReciprocityLedger(
                sorted(self.nodes),
                threshold=self.churn.reciprocity_threshold,
                min_taken=self.churn.reciprocity_min_taken,
            )
            self.metrics.arm_churn()
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(faults, seed=fault_seed)
            if faults is not None and faults.enabled
            else None
        )
        #: Per-node peer-health trackers (observer name → tracker). Only
        #: armed alongside the fault injector: with a perfect channel no
        #: protocol violations can occur, and keeping the trackers out of
        #: the zero-fault path preserves byte-identical behaviour.
        self.peer_health: Dict[str, PeerHealthTracker] = {}
        if self.fault_injector is not None:
            assert faults is not None
            for name in sorted(nodes):
                self.peer_health[name] = PeerHealthTracker(
                    suspect_threshold=faults.suspect_threshold,
                    quarantine_threshold=faults.quarantine_threshold,
                    backoff_base=faults.quarantine_backoff_base,
                    backoff_factor=faults.quarantine_backoff_factor,
                    backoff_max=faults.quarantine_backoff_max,
                    jitter=faults.quarantine_jitter,
                    recovery_probes=faults.recovery_probes,
                    # Stable across Python processes (unlike hash()) and
                    # decorrelated from the injector's stream.
                    seed=zlib.crc32(name.encode("utf-8"))
                    ^ (fault_seed & 0xFFFFFFFF),
                )

        missing = self.trace.hosts - self.nodes.keys()
        if missing:
            raise ValueError(f"trace references unknown nodes: {sorted(missing)}")

        self._eviction_counter = _EvictionCounter(self.metrics)
        for node in self.nodes.values():
            self._wire_node(node)

    def _wire_node(self, node: EmulatedNode) -> None:
        """Attach metrics plumbing to a (possibly freshly restarted) node."""
        node.replica.register_observer(self._eviction_counter)
        node.app.on_delivery(
            lambda message, _node=node: self._on_delivery(_node, message)
        )

    # -- event handlers ----------------------------------------------------------

    def _apply_assignment(self, day: int) -> None:
        day_map = self.assignments.get(day, {})
        self._current_day_map = day_map
        for name, node in self.nodes.items():
            if self.lifecycle is not None and not self.lifecycle.online(name):
                # Offline nodes keep their crash-time filter: their next
                # restart restores exactly the persisted state, and the
                # current day map is re-applied at rejoin time.
                continue
            users = frozenset(day_map.get(name, frozenset()))
            node.assign_addresses(users)
        self._user_location = {
            user: name
            for name, users in day_map.items()
            for user in users
            if self.lifecycle is None or self.lifecycle.online(name)
        }

    def _inject(self, injection: Injection) -> None:
        # The source may name a node directly (bus-addressed workloads) or
        # a user, resolved through the current assignment.
        if injection.source in self.nodes:
            node_name = injection.source
        else:
            node_name = self._user_location.get(injection.source)
        if node_name is None:
            # The sender's user is not riding any bus right now; the
            # workload layer avoids this, but record rather than crash.
            self._skipped_injections.append(injection)
            return
        if self.lifecycle is not None and not self.lifecycle.online(node_name):
            # The sending node is down: the message is never born (its
            # app is not running), which is a real churn cost — counted,
            # not silently dropped.
            self.metrics.record_churn_lost_injection()
            return
        node = self.nodes[node_name]
        message = node.send(
            injection.source,
            injection.destination,
            injection.body,
            now=self.engine.now,
        )
        self.metrics.record_injection(
            message.message_id,
            injection.source,
            injection.destination,
            self.engine.now,
            node_name,
        )
        if node.app.has_received(message.message_id):
            # Sender and recipient share a host: the message matched the
            # local filter at creation, before the injection was recorded.
            self.metrics.record_delivery(
                message.message_id,
                self.engine.now,
                node_name,
                self.count_copies(message.message_id),
            )

    def _encounter_budget(self, encounter: Encounter) -> Optional[int]:
        """The transfer budget for one encounter: the tighter of the flat
        Figure 9 cap and the duration-derived capacity."""
        budget = self.bandwidth_limit
        if self.messages_per_second is not None and encounter.duration > 0:
            by_duration = max(
                1, int(encounter.duration * self.messages_per_second)
            )
            budget = by_duration if budget is None else min(budget, by_duration)
        return budget

    def _run_encounter(self, encounter: Encounter) -> None:
        order = self._rng.random() < 0.5
        if (
            self.sync_failure_probability > 0.0
            and self._rng.random() < self.sync_failure_probability
        ):
            self.failed_encounters += 1
            return
        # Churn gating comes *after* the base draws above: the coin and
        # failure draw are consumed for every trace encounter in both
        # execution modes (the swarm pre-draws them in schedule order),
        # so skipping an encounter must not skip its draws.
        if self.lifecycle is not None:
            a_online = self.lifecycle.online(encounter.a)
            b_online = self.lifecycle.online(encounter.b)
            if not (a_online and b_online):
                self.metrics.record_churn_skip()
                return
            assert self.reciprocity is not None
            if not self.reciprocity.admit(encounter.a, encounter.b):
                self.metrics.record_reciprocity_refusal()
                return
        injector = self.fault_injector
        now = self.engine.now
        if injector is not None:
            if not injector.encounter_allowed(encounter.a, encounter.b, now):
                self.metrics.record_backoff_skip()
                return
            if not self._peers_willing(encounter.a, encounter.b, now):
                self.metrics.record_quarantine_skip()
                return
            if injector.should_drop_encounter(encounter.a, encounter.b):
                self.failed_encounters += 1
                self.metrics.record_dropped_encounter()
                return
        node_a = self.nodes[encounter.a]
        node_b = self.nodes[encounter.b]
        first, second = (node_a, node_b) if order else (node_b, node_a)
        transport_factory = (
            (
                lambda source_id, target_id: injector.transport(
                    source_id.name, target_id.name
                )
            )
            if injector is not None
            else None
        )
        # Knowledge must be monotone across an encounter no matter what
        # the channel did; a regression here means the hardening layer
        # failed, and silently carrying on would poison the experiment.
        before = {
            name: self.nodes[name].replica.knowledge.copy()
            for name in (encounter.a, encounter.b)
        }
        stats = EncounterSession(
            first=first.endpoint,
            second=second.endpoint,
            now=now,
            config=SessionConfig(
                max_items=self._encounter_budget(encounter),
                digest=self.digest,
            ),
            transport_factory=transport_factory,
        ).run()
        for name, old in before.items():
            if not self.nodes[name].replica.knowledge.dominates(old):
                raise SyncProtocolError(
                    f"version vector of {name!r} regressed during an encounter"
                )
        self.metrics.record_encounter()
        self._observe_syncs(encounter.a, encounter.b, stats, now)
        if injector is not None:
            interrupted = any(sync_stats.interrupted for sync_stats in stats)
            resumed = injector.note_encounter_outcome(
                encounter.a, encounter.b, now, interrupted
            )
            if resumed:
                self.metrics.record_resumed_pair()
        for sync_stats in stats:
            self.metrics.record_sync(sync_stats)
        if injector is not None:
            self._record_peer_outcomes(encounter, stats, now)
            for victim in injector.crash_victims((encounter.a, encounter.b)):
                self.restart_node(victim)

    def _observe_syncs(self, a: str, b: str, stats, now: float) -> None:
        """Feed one completed encounter into the churn bookkeeping."""
        if self.lifecycle is None:
            return
        self.lifecycle.note_encounter(a, b, now, self.metrics)
        assert self.reciprocity is not None
        for sync_stats in stats:
            self.reciprocity.observe_sync(
                sync_stats.source.name, sync_stats.target.name,
                sync_stats.sent_total,
            )

    def _apply_lifecycle(self, event) -> None:
        """Apply one scheduled lifecycle event (arrive/leave/crash/rejoin)."""
        assert self.lifecycle is not None
        now = self.engine.now
        name = event.node
        node = self.nodes[name]
        if event.kind == "leave" and event.partner is not None:
            # The graceful leaver's final handoff sync, run while both
            # sides are still up (the schedule guarantees the partner's
            # availability) — deliberate, so it bypasses the fault and
            # reciprocity gates and has fixed roles: leaver first.
            self._run_handoff(name, event.partner, now)
        if event.kind in ("leave", "crash"):
            for user in node.assigned_addresses:
                if self._user_location.get(user) == name:
                    del self._user_location[user]
        if event.kind == "rejoin":
            if event.amnesiac:
                node.amnesiac_restart()
            else:
                # The node object was frozen in place at crash time, so
                # a crash_restart *now* is exactly a reboot from the
                # checkpoint it would have written back then.
                node.crash_restart()
            self._wire_node(node)
        self.lifecycle.apply(event, now, self.metrics)
        if event.kind in ("arrive", "rejoin"):
            users = frozenset(self._current_day_map.get(name, frozenset()))
            node.assign_addresses(users)
            for user in users:
                self._user_location[user] = name

    def _run_handoff(self, leaver: str, partner: str, now: float) -> None:
        """Two syncs between the leaver and its handoff partner."""
        first = self.nodes[leaver]
        second = self.nodes[partner]
        before = {
            name: self.nodes[name].replica.knowledge.copy()
            for name in (leaver, partner)
        }
        stats = EncounterSession(
            first=first.endpoint,
            second=second.endpoint,
            now=now,
            config=SessionConfig(max_items=None, digest=self.digest),
        ).run()
        for name, old in before.items():
            if not self.nodes[name].replica.knowledge.dominates(old):
                raise SyncProtocolError(
                    f"version vector of {name!r} regressed during a handoff"
                )
        self.metrics.record_encounter()
        self.metrics.record_churn_handoff()
        self._observe_syncs(leaver, partner, stats, now)
        for sync_stats in stats:
            self.metrics.record_sync(sync_stats)

    def _peers_willing(self, a: str, b: str, now: float) -> bool:
        """Do both participants accept the encounter right now?

        Both trackers are consulted without short-circuiting: ``allowed``
        has the side effect of opening a recovery probe when a quarantine
        backoff expires, and that bookkeeping must advance symmetrically
        regardless of which side refuses.
        """
        if not self.peer_health:
            return True
        a_willing = self.peer_health[a].allowed(b, now)
        b_willing = self.peer_health[b].allowed(a, now)
        return a_willing and b_willing

    def _record_peer_outcomes(self, encounter, stats, now: float) -> None:
        """Feed each side's observed violations into its health tracker.

        Both directions are seeded at zero strikes so a clean encounter
        counts toward recovery even when no items flowed.
        """
        if not self.peer_health:
            return
        strikes: Dict[Tuple[str, str], int] = {
            (encounter.a, encounter.b): 0,
            (encounter.b, encounter.a): 0,
        }
        for sync_stats in stats:
            for violation in sync_stats.violations:
                key = (violation.observer, violation.peer)
                strikes[key] = strikes.get(key, 0) + 1
        for observer, peer in sorted(strikes):
            tracker = self.peer_health.get(observer)
            if tracker is None:
                continue
            transitions = tracker.record_outcome(
                peer, strikes[(observer, peer)], now
            )
            for label in transitions:
                self.metrics.record_health_transition(label)

    def restart_node(self, name: str) -> EmulatedNode:
        """Crash-restart one node and re-attach the emulator's plumbing.

        The node rebuilds itself from durable state
        (:meth:`EmulatedNode.crash_restart`); the fresh replica and app
        then need the metrics observer and delivery callback re-wired.
        """
        node = self.nodes[name]
        node.crash_restart()
        self._wire_node(node)
        self.metrics.record_crash()
        return node

    def _on_delivery(self, node: EmulatedNode, message) -> None:
        copies = self.count_copies(message.message_id)
        self.metrics.record_delivery(
            message.message_id, self.engine.now, node.name, copies
        )

    # -- queries -----------------------------------------------------------------------

    def count_copies(self, item_id) -> int:
        """Live (non-tombstone) copies of a message stored network-wide."""
        return sum(1 for node in self.nodes.values() if node.holds_message(item_id))

    @property
    def skipped_injections(self) -> Sequence[Injection]:
        return tuple(self._skipped_injections)

    def user_location(self, user: str) -> Optional[str]:
        return self._user_location.get(user)

    # -- orchestration -----------------------------------------------------------------------

    def schedule_all(self, extra_days: int = 0) -> float:
        """Queue every event; returns the simulation end time."""
        last_day = max(
            [encounter.day for encounter in self.trace]
            + list(self.assignments.keys())
            + [0],
        )
        end_time = (last_day + 1 + extra_days) * SECONDS_PER_DAY
        for day in sorted(self.assignments):
            self.engine.schedule(
                day * SECONDS_PER_DAY,
                lambda _day=day: self._apply_assignment(_day),
                EventPriority.CONTROL,
            )
        if self.churn_schedule is not None:
            for event in self.churn_schedule.events:
                self.engine.schedule(
                    event.time,
                    lambda _event=event: self._apply_lifecycle(_event),
                    EventPriority.CONTROL,
                )
        for injection in self.injections:
            self.engine.schedule(
                injection.time,
                lambda _injection=injection: self._inject(_injection),
                EventPriority.INJECT,
            )
        for encounter in self.trace:
            self.engine.schedule(
                encounter.time,
                lambda _encounter=encounter: self._run_encounter(_encounter),
                EventPriority.ENCOUNTER,
            )
        return end_time

    def run(self, extra_days: int = 0) -> MetricsCollector:
        """Run the whole emulation and finalise metrics."""
        end_time = self.schedule_all(extra_days=extra_days)
        self.engine.run(until=end_time)
        self.finalize()
        return self.metrics

    def finalize(self) -> None:
        """Stamp end-of-experiment state (copy counts) into the metrics."""
        self.metrics.end_time = self.engine.now
        for record in self.metrics.records.values():
            record.copies_at_end = self.count_copies(record.message_id)
        if self.lifecycle is not None:
            assert self.reciprocity is not None
            node_seconds = self.lifecycle.finalize(self.engine.now)
            self.metrics.finalize_churn(
                node_seconds,
                self.lifecycle.departed,
                self.reciprocity.scores(),
            )
