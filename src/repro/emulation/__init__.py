"""Trace-driven discrete-event emulation of the DTN messaging system.

Reproduces the paper's Section VI-A environment: many application+replica
instances in one process, encounters replayed from a mobility trace, two
syncs per encounter with alternating roles, optional bandwidth and storage
constraints, and delivery/traffic/storage metrics collection.
"""

from .encounters import SECONDS_PER_DAY, Encounter, EncounterTrace
from .engine import EventPriority, SimulationEngine
from .metrics import DAYS, HOURS, MessageRecord, MetricsCollector
from .network import AssignmentSchedule, Emulator, Injection
from .node import EmulatedNode

__all__ = [
    "AssignmentSchedule",
    "DAYS",
    "Emulator",
    "EmulatedNode",
    "Encounter",
    "EncounterTrace",
    "EventPriority",
    "HOURS",
    "Injection",
    "MessageRecord",
    "MetricsCollector",
    "SECONDS_PER_DAY",
    "SimulationEngine",
]
