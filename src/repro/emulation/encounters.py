"""Encounter schedules: when which pairs of hosts can synchronise.

An :class:`Encounter` is one connectivity opportunity between two hosts at
a point in simulated time (seconds from the start of the trace). An
:class:`EncounterTrace` is an ordered collection of encounters plus the
derived views the experiments need: the set of participating hosts, per-day
slicing, per-host activity, and pairwise meeting frequencies (which drive
the ``selected`` filter strategy of Figures 5 and 6).

Time convention: day ``d`` (0-based) spans ``[d·86400, (d+1)·86400)``
seconds; the DieselNet generator places encounters inside each day's
service window (08:00–23:00).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Tuple

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True, order=True)
class Encounter:
    """One meeting between hosts ``a`` and ``b`` at ``time`` seconds.

    ``duration`` (seconds, 0 = unknown/instantaneous) models how long the
    radio contact lasted; the emulator can translate it into a
    per-encounter transfer budget (real DieselNet contacts are short and
    frequently truncate transfers).
    """

    time: float
    a: str
    b: str
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("an encounter needs two distinct hosts")
        if self.time < 0:
            raise ValueError("encounter time must be non-negative")
        if self.duration < 0:
            raise ValueError("encounter duration must be non-negative")

    @property
    def day(self) -> int:
        return int(self.time // SECONDS_PER_DAY)

    @property
    def pair(self) -> Tuple[str, str]:
        """The unordered pair, canonically sorted."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


class EncounterTrace:
    """An immutable, time-sorted sequence of encounters."""

    def __init__(self, encounters: Iterable[Encounter]) -> None:
        self._encounters: List[Encounter] = sorted(encounters)

    def __len__(self) -> int:
        return len(self._encounters)

    def __iter__(self) -> Iterator[Encounter]:
        return iter(self._encounters)

    def __getitem__(self, index: int) -> Encounter:
        return self._encounters[index]

    @property
    def hosts(self) -> FrozenSet[str]:
        """Every host appearing anywhere in the trace."""
        names = set()
        for encounter in self._encounters:
            names.add(encounter.a)
            names.add(encounter.b)
        return frozenset(names)

    @property
    def days(self) -> Tuple[int, ...]:
        """The distinct days (0-based) on which encounters occur, sorted."""
        return tuple(sorted({encounter.day for encounter in self._encounters}))

    @property
    def duration(self) -> float:
        """Seconds from time 0 to the end of the last encounter's day."""
        if not self._encounters:
            return 0.0
        return (self._encounters[-1].day + 1) * SECONDS_PER_DAY

    def on_day(self, day: int) -> "EncounterTrace":
        """The sub-trace of encounters on one day."""
        return EncounterTrace(e for e in self._encounters if e.day == day)

    def hosts_active_on(self, day: int) -> FrozenSet[str]:
        """Hosts with at least one encounter on ``day``."""
        names = set()
        for encounter in self._encounters:
            if encounter.day == day:
                names.add(encounter.a)
                names.add(encounter.b)
        return frozenset(names)

    def active_hosts_by_day(self) -> Dict[int, FrozenSet[str]]:
        """Day → hosts active that day, in one pass."""
        by_day: Dict[int, set] = defaultdict(set)
        for encounter in self._encounters:
            by_day[encounter.day].add(encounter.a)
            by_day[encounter.day].add(encounter.b)
        return {day: frozenset(hosts) for day, hosts in by_day.items()}

    def meeting_counts(self) -> Mapping[Tuple[str, str], int]:
        """Unordered pair → number of encounters across the whole trace."""
        return Counter(encounter.pair for encounter in self._encounters)

    def meeting_counts_for(self, host: str) -> Dict[str, int]:
        """Other host → number of encounters with ``host``.

        This is the oracle the ``selected`` filter strategy uses: "picks
        the k other hosts that a given host will encounter most in the
        trace".
        """
        counts: Counter = Counter()
        for encounter in self._encounters:
            if encounter.a == host:
                counts[encounter.b] += 1
            elif encounter.b == host:
                counts[encounter.a] += 1
        return dict(counts)

    def restricted_to(self, hosts: Iterable[str]) -> "EncounterTrace":
        """The sub-trace touching only the given hosts."""
        keep = frozenset(hosts)
        return EncounterTrace(
            e for e in self._encounters if e.a in keep and e.b in keep
        )

    def summary(self) -> Dict[str, float]:
        """Headline statistics, matching how the paper describes its trace."""
        by_day = self.active_hosts_by_day()
        days = len(by_day)
        return {
            "encounters": float(len(self._encounters)),
            "hosts": float(len(self.hosts)),
            "days": float(days),
            "mean_hosts_per_day": (
                sum(len(h) for h in by_day.values()) / days if days else 0.0
            ),
            "mean_encounters_per_day": (
                len(self._encounters) / days if days else 0.0
            ),
        }
