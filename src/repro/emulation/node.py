"""An emulated host: replica + messaging app + routing policy + addresses.

Each DieselNet bus becomes one :class:`EmulatedNode`. The node owns:

* its replica (with an optional relay-store cap — the Figure 10 storage
  constraint),
* its messaging app (delivery accounting),
* its routing policy instance (bound to the replica and to the node's
  dynamic address set),
* its **address set** — the node's own address plus the user addresses
  currently assigned to it (the paper re-distributes users over active
  buses every day) plus any static relay addresses from a Figure 5/6
  filter strategy.

Changing the address set rewrites the replica's filter; the replica's
filter-change logic promotes already-relayed items into the in-filter
store, which the app observes as deliveries — exactly the "user boards a
bus that already carries their mail" case.
"""

from __future__ import annotations

import json
from typing import Callable, FrozenSet, Iterable, Optional

from repro.dtn.policy import DTNPolicy
from repro.messaging.app import MessagingApp
from repro.replication.filters import MultiAddressFilter
from repro.replication.ids import ReplicaId
from repro.replication.persistence import (
    amnesiac_replica_state,
    replica_from_state,
    replica_to_state,
)
from repro.replication.replica import Replica
from repro.replication.sync import SyncEndpoint


class EmulatedNode:
    """One host participating in the emulation."""

    def __init__(
        self,
        name: str,
        policy: DTNPolicy,
        relay_capacity: Optional[int] = None,
        relay_eviction: object = "fifo",
        static_relay_addresses: Iterable[str] = (),
        delete_on_receipt: bool = False,
        policy_factory: Optional[Callable[[], DTNPolicy]] = None,
    ) -> None:
        self.name = name
        self._assigned_addresses: FrozenSet[str] = frozenset()
        self._static_relay: FrozenSet[str] = frozenset(static_relay_addresses)
        self.delete_on_receipt = delete_on_receipt
        #: How to build a pristine policy instance for an amnesiac
        #: restart (the old instance's routing state is exactly what an
        #: amnesia event is supposed to destroy). Optional: nodes in
        #: churn-free runs never need one.
        self.policy_factory = policy_factory
        self.replica = Replica(
            ReplicaId(name),
            self._build_filter(),
            relay_capacity=relay_capacity,
            relay_eviction=relay_eviction,
        )
        self.policy = policy.bind(self.replica, self.addresses)
        self.app = MessagingApp(
            self.replica, self.addresses, delete_on_receipt=delete_on_receipt
        )
        self.endpoint = SyncEndpoint(self.replica, self.policy)

    # -- addressing ---------------------------------------------------------------

    def addresses(self) -> FrozenSet[str]:
        """Addresses this node currently answers to (own + assigned users).

        Static relay addresses are *not* included: the node carries mail
        for them (its filter matches) but is not their destination.
        """
        return self._assigned_addresses | {self.name}

    @property
    def assigned_addresses(self) -> FrozenSet[str]:
        return self._assigned_addresses

    @property
    def static_relay_addresses(self) -> FrozenSet[str]:
        return self._static_relay

    def assign_addresses(self, addresses: Iterable[str]) -> None:
        """Set the user addresses hosted here (a day-boundary reassignment)."""
        new = frozenset(addresses)
        if new == self._assigned_addresses:
            return
        self._assigned_addresses = new
        self.replica.set_filter(self._build_filter())

    def set_static_relay_addresses(self, addresses: Iterable[str]) -> None:
        """Set the Figure 5/6 style extra relay addresses."""
        new = frozenset(addresses)
        if new == self._static_relay:
            return
        self._static_relay = new
        self.replica.set_filter(self._build_filter())

    def _build_filter(self) -> MultiAddressFilter:
        return MultiAddressFilter(
            own_address=self.name,
            relay_addresses=self._assigned_addresses | self._static_relay,
        )

    # -- fault injection --------------------------------------------------------------

    def crash_restart(self) -> "EmulatedNode":
        """Simulate a crash + reboot: only durable state survives.

        The replica is serialised through the persistence layer (with a
        JSON round-trip, exactly what disk storage would impose) and
        rebuilt; the routing policy is re-bound to the restored replica
        and reloads its ``persistent_state()`` through the same JSON
        round-trip (paper §V-A: routing state is serialised to disk); the
        messaging app is recreated with its durable delivery log, so old
        deliveries are not re-announced. Observers registered on the
        previous replica are gone — callers wiring metrics must re-attach
        them (the emulator does this in ``restart_node``).
        """
        replica_state = json.loads(json.dumps(replica_to_state(self.replica)))
        policy_state = json.loads(json.dumps(self.policy.persistent_state()))
        delivery_log = self.app.delivery_log()
        self.replica = replica_from_state(replica_state)
        self.policy.bind(self.replica, self.addresses)
        self.policy.restore_state(policy_state)
        self.app = MessagingApp(
            self.replica, self.addresses, delete_on_receipt=self.delete_on_receipt
        )
        self.app.restore_delivery_log(delivery_log)
        self.endpoint = SyncEndpoint(self.replica, self.policy)
        return self

    def amnesiac_restart(self) -> "EmulatedNode":
        """Reboot after losing all local state except identity.

        The replica comes back with empty stores and knowledge but the
        *preserved* id-factory counters (see
        :func:`~repro.replication.persistence.amnesiac_replica_state` —
        reusing serials would collide with still-circulating copies of
        forgotten items). The routing policy is rebuilt from scratch via
        ``policy_factory`` and the messaging app restarts with an empty
        delivery log: previously delivered messages will be announced
        again if they arrive again, which is what losing the log means.
        """
        if self.policy_factory is None:
            raise ValueError(
                f"node {self.name!r} has no policy_factory; an amnesiac "
                "restart needs one to rebuild its routing policy"
            )
        state = json.loads(
            json.dumps(amnesiac_replica_state(replica_to_state(self.replica)))
        )
        self.replica = replica_from_state(state)
        self.policy = self.policy_factory().bind(self.replica, self.addresses)
        self.app = MessagingApp(
            self.replica, self.addresses, delete_on_receipt=self.delete_on_receipt
        )
        self.endpoint = SyncEndpoint(self.replica, self.policy)
        return self

    # -- convenience ------------------------------------------------------------------

    def send(self, source: str, destination: str, body: object, now: float):
        """Inject a message from a hosted user."""
        return self.app.send_from(source, destination, body, now=now)

    def holds_message(self, item_id) -> bool:
        """True if a live (non-tombstone) copy is stored here."""
        item = self.replica.get_item(item_id)
        return item is not None and not item.deleted

    def __repr__(self) -> str:
        return f"EmulatedNode({self.name}, users={sorted(self._assigned_addresses)})"
