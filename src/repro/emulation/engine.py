"""A deterministic discrete-event simulation engine.

The emulation replays a trace of timestamped events (encounters, message
injections, day-boundary reassignments). All it needs from an engine is a
priority queue of callbacks with a monotone clock — but determinism is a
hard requirement (experiments must be exactly reproducible from a seed), so
ties are broken by an explicit (priority, sequence) pair: events scheduled
at the same instant run in a caller-controlled priority order, then in
scheduling order.

Event priorities let the emulator guarantee, e.g., that a day's user
reassignment happens before any encounter at the same timestamp.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, List, Optional, Tuple

EventCallback = Callable[[], None]


class EventPriority(IntEnum):
    """Same-timestamp ordering bands (lower runs first)."""

    CONTROL = 0  # reassignments, configuration changes
    INJECT = 1  # message sends
    ENCOUNTER = 2  # pairwise syncs
    SAMPLE = 3  # metrics sampling


@dataclass(order=True)
class _Scheduled:
    time: float
    priority: int
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class SimulationEngine:
    """Run callbacks in timestamp order with a simulated clock."""

    def __init__(self) -> None:
        self._queue: List[_Scheduled] = []
        self._sequence = 0
        self._now = 0.0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """The current simulated time, in seconds."""
        return self._now

    def schedule(
        self,
        time: float,
        callback: EventCallback,
        priority: EventPriority = EventPriority.ENCOUNTER,
    ) -> _Scheduled:
        """Schedule ``callback`` at simulated ``time``.

        Scheduling in the past raises: the engine never rewinds, so a
        past-dated event would silently reorder history.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        event = _Scheduled(time, int(priority), self._sequence, callback)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: _Scheduled) -> None:
        """Cancel a scheduled event (lazy removal)."""
        event.cancelled = True

    def run(self, until: Optional[float] = None) -> float:
        """Process events in order; stop when the queue drains or ``until``.

        Returns the final simulated time. With ``until`` set, the clock is
        advanced to ``until`` even if the queue drained earlier, so
        duration-based metrics line up.
        """
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                self.events_processed += 1
                event.callback()
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Process exactly one event. Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    @property
    def pending(self) -> int:
        """Events still queued (including lazily cancelled ones)."""
        return len(self._queue)
