"""Flat-array emulation core for city-scale runs (``engine="columnar"``).

The object engine (:mod:`repro.emulation.network`) is the executable
spec: every node owns a :class:`~repro.replication.replica.Replica` with
``Item``/``VersionVector``/``ItemStore`` instances, and every encounter
walks those objects.  That is the right shape for protocol work, but it
tops out around fifty nodes — far short of the paper's metro ambitions.

This module re-implements the *supported subset* of that machinery on
flat, integer-interned state:

* every item authored during a run gets one integer index; the item
  table is a handful of parallel arrays (destination address id, origin
  node, per-origin serial, live holder count);
* per-node knowledge is a plain ``set`` of item indices (the paper's
  version vectors degenerate to membership sets because emulated runs
  never update an item after authoring it);
* per-node holdings are three insertion-ordered dicts (store, outbox,
  relay) mirroring the object engine's enumeration order exactly;
* the encounter trace is columnar (:class:`ColumnarTrace`,
  ``array``-module columns) and the event loop is a two-pointer merge
  over the injection and encounter columns instead of a heap.

Correctness contract: for any configuration accepted by
:func:`columnar_unsupported_reason`, a columnar run reproduces the
object engine *draw for draw* — same RNG consumption from the encounter
rng and the fault injector rng, same batch contents and order, same
delivery records, same metric totals.  The randomized differential
harness in ``tests/emulation/test_columnar_equivalence.py`` enforces
this across policies, seeds, and fault configs.  Three counters are
deliberately not reproduced (the columnar core has nothing to cache or
serialize): ``filter_cache_*``, ``checksum_cache_*``, and
``metadata_bytes`` stay zero.

Unsupported configurations raise :class:`ColumnarUnsupportedError`
rather than silently diverging; the object engine remains the path for
user addressing, storage limits, knowledge digests, and the adversarial
fault models.

Sharding: :func:`run_columnar_sharded` partitions the world by
connected components of the encounter graph (union-find), precomputes
the encounter-order coin flips so every shard consumes exactly the
draws it would have seen in a global run, ships the trace columns to
workers through ``multiprocessing.shared_memory``, and merges the
per-shard :class:`~repro.emulation.metrics.MetricsCollector` results
deterministically.  Because items never cross shard boundaries (shards
are unions of trace components), the merged result is identical to an
unsharded run.  In the default ``rng_streams="shared"`` mode fault
injection draws from one global rng stream, so the sharded path then
requires ``faults=None``; ``rng_streams="per-link"`` gives every host
pair its own seeded child stream, making armed transport faults safe to
shard (a pair never crosses a component).
"""

from __future__ import annotations

import random
from array import array
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.dtn.direct import DirectDeliveryPolicy
from repro.dtn.epidemic import EpidemicPolicy
from repro.dtn.first_contact import FirstContactPolicy
from repro.dtn.registry import get_policy
from repro.dtn.spray_wait import SprayAndWaitPolicy
from repro.emulation.encounters import SECONDS_PER_DAY, EncounterTrace
from repro.emulation.metrics import MetricsCollector
from repro.emulation.network import Injection
from repro.faults.config import FaultConfig
from repro.faults.injector import FaultInjector
from repro.replication.ids import ItemId, ReplicaId
from repro.replication.routing import NullRoutingPolicy

__all__ = [
    "ColumnarTrace",
    "ColumnarUnsupportedError",
    "ColumnarWorld",
    "UNREPLICATED_COUNTERS",
    "columnar_unsupported_reason",
    "comparable_metrics",
    "merge_metrics",
    "plan_shards",
    "run_columnar",
    "run_columnar_sharded",
    "trace_components",
]


class ColumnarUnsupportedError(ValueError):
    """The configuration needs machinery the columnar core does not model."""


# Policy kinds the flat hot loop implements inline.  The selection /
# prepare / on-sent semantics of each are transcribed from the policy
# classes in repro.dtn — the equivalence harness keeps them honest.
_DIRECT = 0
_EPIDEMIC = 1
_SPRAY = 2
_FIRST_CONTACT = 3

#: Adversarial fault channels the columnar transport does not model.
_UNSUPPORTED_FAULTS = (
    "crash_probability",
    "corruption_probability",
    "replay_probability",
    "fabrication_probability",
    "malformed_probability",
)


def _policy_kind(policy: Any) -> Tuple[int, int]:
    """Map a policy instance to ``(kind, parameter)`` or raise."""
    if isinstance(policy, EpidemicPolicy):
        return _EPIDEMIC, int(policy.initial_ttl)
    if isinstance(policy, SprayAndWaitPolicy):
        return _SPRAY, int(policy.initial_copies)
    if isinstance(policy, FirstContactPolicy):
        return _FIRST_CONTACT, 0
    if isinstance(policy, (DirectDeliveryPolicy, NullRoutingPolicy)):
        return _DIRECT, 0
    raise ColumnarUnsupportedError(
        f"policy {type(policy).__name__} is not implemented by the "
        "columnar engine (supported: cimbiosys/direct, epidemic, spray, "
        "first-contact)"
    )


def columnar_unsupported_reason(config: Any) -> Optional[str]:
    """Why ``config`` cannot run on the columnar engine (None = it can).

    The gate is deliberately conservative: anything the flat core does
    not reproduce draw-for-draw against the object engine is rejected.
    """
    if config.addressing != "bus":
        return "columnar engine supports bus addressing only"
    if config.storage_limit is not None:
        return "columnar engine does not model storage limits / eviction"
    if config.delete_on_receipt:
        return "columnar engine does not model delete_on_receipt"
    if config.knowledge_digest:
        return "columnar engine does not model knowledge digests"
    churn = getattr(config, "churn", None)
    if churn is not None and churn.enabled:
        return "columnar engine does not model churn lifecycles"
    try:
        _policy_kind(get_policy(config.policy, **config.policy_parameters))
    except ColumnarUnsupportedError as exc:
        return str(exc)
    faults = config.faults
    if faults is not None and faults.enabled:
        for field in _UNSUPPORTED_FAULTS:
            if getattr(faults, field) > 0.0:
                return (
                    f"columnar engine does not model {field.split('_')[0]} "
                    "faults"
                )
        if faults.truncation_probability > 0.0 and faults.truncation_unit != "items":
            return "columnar engine models item-unit truncation only"
    return None


class ColumnarTrace:
    """An encounter trace as flat columns (stdlib ``array`` module).

    Hosts are interned: column ``a``/``b`` entries are indices into the
    sorted ``hosts`` tuple.  Encounters are stored in the same order the
    object engine processes them (time-sorted, ties in input order —
    :class:`~repro.emulation.encounters.EncounterTrace` already sorts).
    """

    __slots__ = ("hosts", "times", "a", "b", "durations")

    def __init__(
        self,
        hosts: Sequence[str],
        times: array,
        a: array,
        b: array,
        durations: array,
    ) -> None:
        self.hosts: Tuple[str, ...] = tuple(hosts)
        self.times = times
        self.a = a
        self.b = b
        self.durations = durations

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last_day(self) -> int:
        if not self.times:
            return 0
        return int(self.times[-1] // SECONDS_PER_DAY)

    @classmethod
    def from_trace(cls, trace: EncounterTrace) -> "ColumnarTrace":
        hosts = tuple(sorted(trace.hosts))
        host_id = {host: i for i, host in enumerate(hosts)}
        times = array("d")
        a = array("i")
        b = array("i")
        durations = array("d")
        for encounter in trace:
            times.append(encounter.time)
            a.append(host_id[encounter.a])
            b.append(host_id[encounter.b])
            durations.append(encounter.duration)
        return cls(hosts, times, a, b, durations)


class ColumnarWorld:
    """One run's worth of flat state plus the batched event loop."""

    def __init__(
        self,
        trace: ColumnarTrace,
        injections: Sequence[Injection],
        *,
        policy: str,
        policy_parameters: Optional[Mapping[str, Any]] = None,
        relay_sets: Optional[Mapping[str, FrozenSet[str]]] = None,
        bandwidth_limit: Optional[int] = None,
        faults: Optional[FaultConfig] = None,
        fault_seed: int = 0,
        seed: int = 0,
        order_draws: Optional[Sequence[int]] = None,
    ) -> None:
        self.trace = trace
        self.hosts: Tuple[str, ...] = trace.hosts
        n = len(self.hosts)
        self._host_id: Dict[str, int] = {h: i for i, h in enumerate(self.hosts)}

        # Address interning.  Host names take ids 0..n-1 (node id ==
        # address id for a node's own name); any other destination
        # address seen in the workload is appended on demand.
        self._addr_id: Dict[str, int] = dict(self._host_id)

        # Per-node filter match sets: {own address} ∪ relay addresses,
        # mirroring MultiAddressFilter.
        self._match: List[Set[int]] = []
        relay_sets = relay_sets or {}
        for i, host in enumerate(self.hosts):
            match = {i}
            for address in relay_sets.get(host, ()):
                match.add(self._intern_address(address))
            self._match.append(match)

        # Per-node replication state.  The three holding dicts mirror
        # the object engine's store → outbox → relay enumeration order;
        # values are unused (insertion-ordered set semantics).
        self._knowledge: List[Set[int]] = [set() for _ in range(n)]
        self._store: List[Dict[int, None]] = [{} for _ in range(n)]
        self._outbox: List[Dict[int, None]] = [{} for _ in range(n)]
        self._relay: List[Dict[int, None]] = [{} for _ in range(n)]
        # Policy-local attribute per (node, item): epidemic TTL or spray
        # copy count.  One run has one policy, so a single dict per node
        # suffices; absence means "never stamped" (None in the object
        # engine's item.local()).
        self._local: List[Dict[int, int]] = [{} for _ in range(n)]
        self._serials = array("q", [0] * n)

        # Item table (grows per injection).
        self._item_dest = array("q")
        self._item_origin = array("i")
        self._holders = array("i")
        self._item_ids: List[ItemId] = []
        self._replica_ids: List[ReplicaId] = [ReplicaId(h) for h in self.hosts]

        policy_instance = get_policy(policy, **dict(policy_parameters or {}))
        self._kind, self._policy_param = _policy_kind(policy_instance)

        self.bandwidth_limit = bandwidth_limit
        self._rng = random.Random(seed)
        self._order_draws = order_draws
        self._injections = sorted(injections, key=lambda inj: inj.time)
        self.skipped_injections: List[Injection] = []
        self.failed_encounters = 0

        self._injector: Optional[FaultInjector] = (
            FaultInjector(faults, seed=fault_seed)
            if faults is not None and faults.enabled
            else None
        )
        # The object engine routes every sync through FaultyTransport
        # whenever any channel model is armed; within the supported
        # subset that means truncation and/or duplication.
        self._transport_armed = self._injector is not None and (
            self._injector._truncation is not None
            or self._injector._duplication is not None
        )

        self.metrics = MetricsCollector()
        # Sync counters accumulate locally and flush once in _finalize —
        # a SyncStats object per sync would dominate the hot loop.
        self._c_syncs = 0
        self._c_encounters = 0
        self._c_transmissions = 0
        self._c_matching = 0
        self._c_relayed = 0
        self._c_truncated = 0
        self._c_lost = 0
        self._c_redundant = 0
        self._c_interrupted = 0
        self._c_store_items = 0
        self._c_scanned = 0
        self._c_index_skipped = 0

    # -- interning ---------------------------------------------------------

    def _intern_address(self, address: str) -> int:
        addr_id = self._addr_id.get(address)
        if addr_id is None:
            addr_id = len(self._addr_id)
            self._addr_id[address] = addr_id
        return addr_id

    # -- event loop --------------------------------------------------------

    def run(
        self, extra_days: int = 0, end_time: Optional[float] = None
    ) -> MetricsCollector:
        """Replay injections + encounters in event order; return metrics."""
        times = self.trace.times
        n_enc = len(times)
        if end_time is None:
            last_day = self.trace.last_day if n_enc else 0
            end_time = float((last_day + 1 + extra_days) * SECONDS_PER_DAY)
        injections = self._injections
        n_inj = len(injections)
        ii = 0
        ei = 0
        run_encounter = self._run_encounter
        inject = self._inject
        # Two-pointer merge replicating the engine heap: injections beat
        # encounters on time ties (INJECT < ENCOUNTER priority), events
        # past the horizon are never processed.
        while ii < n_inj or ei < n_enc:
            if ii < n_inj and (ei >= n_enc or injections[ii].time <= times[ei]):
                if injections[ii].time > end_time:
                    break
                inject(injections[ii])
                ii += 1
            else:
                if times[ei] > end_time:
                    break
                run_encounter(ei)
                ei += 1
        self._finalize(end_time)
        return self.metrics

    def _inject(self, injection: Injection) -> None:
        nid = self._host_id.get(injection.source)
        if nid is None:
            # Bus-addressed workloads always name a node; mirror the
            # object engine's record-rather-than-crash behaviour.
            self.skipped_injections.append(injection)
            return
        serial = self._serials[nid]
        self._serials[nid] = serial + 1
        idx = len(self._item_ids)
        item_id = ItemId(self._replica_ids[nid], serial)
        self._item_ids.append(item_id)
        dest = self._intern_address(injection.destination)
        self._item_dest.append(dest)
        self._item_origin.append(nid)
        self._holders.append(1)
        self._knowledge[nid].add(idx)
        if dest in self._match[nid]:
            self._store[nid][idx] = None
        else:
            self._outbox[nid][idx] = None
        self.metrics.record_injection(
            item_id,
            injection.source,
            injection.destination,
            injection.time,
            self.hosts[nid],
        )
        if dest == nid:
            # Sender and recipient ride the same bus today: delivered at
            # creation, exactly like the object engine's has_received
            # check right after injection.
            self.metrics.record_delivery(
                item_id, injection.time, self.hosts[nid], 1
            )

    def _run_encounter(self, ei: int) -> None:
        now = self.trace.times[ei]
        ai = self.trace.a[ei]
        bi = self.trace.b[ei]
        if self._order_draws is not None:
            order = bool(self._order_draws[ei])
        else:
            order = self._rng.random() < 0.5
        injector = self._injector
        if injector is not None:
            name_a = self.hosts[ai]
            name_b = self.hosts[bi]
            if not injector.encounter_allowed(name_a, name_b, now):
                self.metrics.record_backoff_skip()
                return
            if injector.should_drop_encounter(name_a, name_b):
                self.failed_encounters += 1
                self.metrics.record_dropped_encounter()
                return
        first, second = (ai, bi) if order else (bi, ai)
        budget = self.bandwidth_limit
        sent_a, interrupted_a = self._sync(first, second, now, budget)
        if budget is not None:
            budget = max(0, budget - sent_a)
        _, interrupted_b = self._sync(second, first, now, budget)
        self._c_encounters += 1
        if injector is not None:
            if injector.note_encounter_outcome(
                name_a, name_b, now, interrupted=interrupted_a or interrupted_b
            ):
                self.metrics.record_resumed_pair()

    def _sync(
        self, src: int, tgt: int, now: float, budget: Optional[int]
    ) -> Tuple[int, bool]:
        """One directed sync; returns (sent_total, interrupted)."""
        store_s = self._store[src]
        outbox_s = self._outbox[src]
        relay_s = self._relay[src]
        store_size = len(store_s) + len(outbox_s) + len(relay_s)
        tknow = self._knowledge[tgt]
        tmatch = self._match[tgt]
        dest = self._item_dest
        kind = self._kind

        # Candidate enumeration: store → outbox → relay insertion order,
        # skipping what the target already knows (the object engine's
        # items_unknown_to fast path yields exactly this sequence).
        matched_ids: List[int] = []
        normal_ids: List[int] = []
        candidates = 0
        if kind == _DIRECT:
            for holding in (store_s, outbox_s, relay_s):
                for i in holding:
                    if i in tknow:
                        continue
                    candidates += 1
                    if dest[i] in tmatch:
                        matched_ids.append(i)
        elif kind == _EPIDEMIC:
            attr = self._local[src]
            initial = self._policy_param
            for holding in (store_s, outbox_s, relay_s):
                for i in holding:
                    if i in tknow:
                        continue
                    candidates += 1
                    if dest[i] in tmatch:
                        matched_ids.append(i)
                    else:
                        ttl = attr.get(i)
                        if ttl is None:
                            # Lazy stamp on first policy inspection,
                            # mirroring EpidemicPolicy._current_ttl.
                            ttl = initial
                            attr[i] = ttl
                        if ttl > 0:
                            normal_ids.append(i)
        elif kind == _SPRAY:
            attr = self._local[src]
            initial = self._policy_param
            for holding in (store_s, outbox_s, relay_s):
                for i in holding:
                    if i in tknow:
                        continue
                    candidates += 1
                    if dest[i] in tmatch:
                        matched_ids.append(i)
                    else:
                        copies = attr.get(i)
                        if copies is None:
                            copies = initial
                            attr[i] = copies
                        if copies >= 2:
                            normal_ids.append(i)
        else:  # first contact
            for holding in (store_s, outbox_s, relay_s):
                for i in holding:
                    if i in tknow:
                        continue
                    candidates += 1
                    if dest[i] in tmatch:
                        matched_ids.append(i)
                    elif dest[i] != src:
                        # FirstContactPolicy holds items addressed to
                        # this node itself (local_addresses()).
                        normal_ids.append(i)

        # Bandwidth cap: filter matches (priority class 100) sort ahead
        # of normal entries (20), ties broken by enumeration index — the
        # capped batch is therefore a prefix of matched + normal.
        n_matched = len(matched_ids)
        total = n_matched + len(normal_ids)
        truncated = 0
        if budget is not None and total > budget:
            truncated = total - budget
            if budget <= n_matched:
                batch = matched_ids[:budget]
                sent_matching = budget
            else:
                batch = matched_ids + normal_ids[: budget - n_matched]
                sent_matching = n_matched
        else:
            batch = matched_ids + normal_ids if normal_ids else matched_ids
            sent_matching = n_matched
        sent_total = len(batch)

        # prepare_outgoing: snapshot shipped policy attributes before
        # any on_items_sent mutation (spray halves *after* shipping).
        shipped: Optional[List[int]] = None
        if kind == _EPIDEMIC and batch:
            attr = self._local[src]
            initial = self._policy_param
            shipped = [max(0, attr.get(i, initial) - 1) for i in batch]
        elif kind == _SPRAY and batch:
            attr = self._local[src]
            shipped = []
            for i in batch:
                copies = attr.get(i)
                shipped.append(
                    1 if copies is None or copies < 2 else copies // 2
                )

        # Transport: replicate FaultyTransport.deliver's draw order on
        # the injector rng (truncation plan, then one duplication draw
        # per surviving stream entry).  An empty batch draws nothing.
        interrupted = False
        lost = 0
        delivered_n = sent_total
        dup_mask: Optional[List[bool]] = None
        if self._transport_armed and batch:
            injector = self._injector
            assert injector is not None
            rng = injector.rng_for(self.hosts[src], self.hosts[tgt])
            truncation = injector._truncation
            if truncation is not None:
                cut = truncation.plan_cut([1] * sent_total, rng)
                if cut is not None:
                    interrupted = True
                    lost = sent_total - cut
                    delivered_n = cut
            duplication = injector._duplication
            if duplication is not None and delivered_n:
                dup_mask = duplication.duplicate_mask(delivered_n, rng)

        # Source-side confirmation (each delivered entry once), *before*
        # the target applies — perform_sync's order, which matters for
        # first-contact holder counts at delivery time.
        if kind == _SPRAY and delivered_n:
            attr = self._local[src]
            for pos in range(delivered_n):
                i = batch[pos]
                copies = attr.get(i)
                if copies is not None and copies >= 2:
                    attr[i] = copies - copies // 2
        elif kind == _FIRST_CONTACT and delivered_n:
            holders = self._holders
            for pos in range(delivered_n):
                i = batch[pos]
                if i in store_s:
                    del store_s[i]
                elif i in outbox_s:
                    del outbox_s[i]
                elif i in relay_s:
                    del relay_s[i]
                else:
                    continue
                holders[i] -= 1

        # Target-side apply.  Duplicated frames arrive adjacent; with a
        # faulty transport the object engine tolerates them as redundant
        # (knowledge already contains the version).
        redundant = 0
        tstore = self._store[tgt]
        trelay = self._relay[tgt]
        tattr = self._local[tgt] if shipped is not None else None
        holders = self._holders
        metrics = self.metrics
        item_ids = self._item_ids
        tgt_name = self.hosts[tgt]
        tolerate = self._transport_armed
        for pos in range(delivered_n):
            i = batch[pos]
            repeats = 2 if dup_mask is not None and dup_mask[pos] else 1
            for _ in range(repeats):
                if tolerate and i in tknow:
                    redundant += 1
                    continue
                tknow.add(i)
                if tattr is not None:
                    assert shipped is not None
                    tattr[i] = shipped[pos]
                holders[i] += 1
                if dest[i] in tmatch:
                    tstore[i] = None
                    if dest[i] == tgt:
                        metrics.record_delivery(
                            item_ids[i], now, tgt_name, holders[i]
                        )
                else:
                    trelay[i] = None

        self._c_syncs += 1
        self._c_transmissions += sent_total
        self._c_matching += sent_matching
        self._c_relayed += sent_total - sent_matching
        self._c_truncated += truncated
        self._c_lost += lost
        self._c_redundant += redundant
        self._c_store_items += store_size
        self._c_scanned += candidates
        self._c_index_skipped += store_size - candidates
        if interrupted:
            self._c_interrupted += 1
        return sent_total, interrupted

    def _finalize(self, end_time: float) -> None:
        m = self.metrics
        m.syncs += self._c_syncs
        m.encounters += self._c_encounters
        m.transmissions += self._c_transmissions
        m.matching_transmissions += self._c_matching
        m.relayed_transmissions += self._c_relayed
        m.truncated_transmissions += self._c_truncated
        m.lost_transmissions += self._c_lost
        m.redundant_transmissions += self._c_redundant
        m.interrupted_syncs += self._c_interrupted
        m.store_items_at_sync += self._c_store_items
        m.items_scanned += self._c_scanned
        m.index_skipped += self._c_index_skipped
        m.end_time = end_time
        holders = self._holders
        index_of = {item_id: i for i, item_id in enumerate(self._item_ids)}
        for record in m.records.values():
            idx = index_of.get(record.message_id)
            if idx is not None:
                record.copies_at_end = int(holders[idx])

    # -- introspection (tests / equivalence harness) -----------------------

    def knowledge_of(self, host: str) -> FrozenSet[str]:
        """Known versions of ``host`` as ``"origin:counter"`` strings."""
        nid = self._host_id[host]
        origin = self._item_origin
        item_ids = self._item_ids
        # Versions replicate IdFactory: the k-th item authored at a node
        # carries counter k+1 (serial k).
        return frozenset(
            f"{self.hosts[origin[i]]}:{item_ids[i].serial + 1}"
            for i in self._knowledge[nid]
        )

    def holdings_of(self, host: str) -> Tuple[str, ...]:
        """Stored item ids of ``host`` in enumeration order."""
        nid = self._host_id[host]
        ids = self._item_ids
        out: List[str] = []
        for holding in (self._store[nid], self._outbox[nid], self._relay[nid]):
            out.extend(str(ids[i]) for i in holding)
        return tuple(out)


# -- config-driven entry points -------------------------------------------


def _relay_sets(config: Any, trace: EncounterTrace) -> Dict[str, FrozenSet[str]]:
    """Figure 5/6 relay sets, drawing the filter rng in scenario order."""
    hosts = sorted(trace.hosts)
    if config.filter_strategy == "self" or config.filter_k == 0:
        return {host: frozenset() for host in hosts}
    from repro.experiments.scenario import _bus_relay_addresses

    filter_rng = random.Random(config.filter_seed)
    return {
        host: _bus_relay_addresses(host, config, trace, filter_rng)
        for host in hosts
    }


def _build_inputs(
    config: Any,
    trace: Optional[EncounterTrace],
    model: Optional[Any],
) -> Tuple[EncounterTrace, List[Injection], Dict[str, FrozenSet[str]]]:
    """Reproduce build_scenario's generator calls (same seeds, same order)."""
    from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
    from repro.traces.enron import generate_enron_model
    from repro.traces.mapping import assign_users_daily
    from repro.traces.workload import WorkloadConfig, build_injection_schedule

    if trace is None:
        trace = generate_dieselnet_trace(
            DieselNetConfig(seed=config.trace_seed, scale=config.scale)
        )
    if model is None:
        model = generate_enron_model(
            n_users=config.effective_users, seed=config.email_seed
        )
    users = list(model.users)
    assignments = assign_users_daily(trace, users, seed=config.assignment_seed)
    injections = build_injection_schedule(
        model,
        assignments,
        WorkloadConfig(
            target_total=config.effective_messages,
            injection_days=config.injection_days,
            seed=config.workload_seed,
            addressing=config.addressing,
        ),
    )
    return trace, injections, _relay_sets(config, trace)


def build_world(
    config: Any,
    trace: Optional[EncounterTrace] = None,
    model: Optional[Any] = None,
) -> Tuple[ColumnarWorld, EncounterTrace]:
    """Construct a ready-to-run :class:`ColumnarWorld` for ``config``."""
    reason = columnar_unsupported_reason(config)
    if reason is not None:
        raise ColumnarUnsupportedError(reason)
    trace, injections, relay_sets = _build_inputs(config, trace, model)
    world = ColumnarWorld(
        ColumnarTrace.from_trace(trace),
        injections,
        policy=config.policy,
        policy_parameters=config.policy_parameters,
        relay_sets=relay_sets,
        bandwidth_limit=config.bandwidth_limit,
        faults=config.faults,
        fault_seed=config.fault_seed,
        seed=config.encounter_order_seed,
    )
    return world, trace


def run_columnar(
    config: Any,
    trace: Optional[EncounterTrace] = None,
    model: Optional[Any] = None,
    extra_days: int = 0,
) -> Tuple[MetricsCollector, Dict[str, float]]:
    """Run ``config`` on the columnar engine.

    Returns ``(metrics, trace_summary)`` so the caller (normally
    :func:`repro.experiments.runner.run_experiment`) can wrap them in an
    :class:`~repro.experiments.runner.ExperimentResult` without a
    circular import.
    """
    world, trace = build_world(config, trace, model)
    trace_summary = trace.summary()
    metrics = world.run(extra_days=extra_days)
    return metrics, trace_summary


#: Metric counters outside the equivalence contract: the columnar core
#: has no filter/checksum caches and never serialises metadata, so these
#: stay at zero while the object engine counts real cache traffic.
UNREPLICATED_COUNTERS: Tuple[str, ...] = (
    "filter_cache_hits",
    "filter_cache_misses",
    "filter_cache_invalidations",
    "checksum_cache_hits",
    "checksum_cache_misses",
    "checksum_cache_invalidations",
    "metadata_bytes",
)


def comparable_metrics(metrics: MetricsCollector) -> Dict[str, Any]:
    """``metrics.to_dict()`` restricted to the equivalence contract.

    Both the equivalence tests and ``repro bench scale`` compare engines
    through this view: everything in :meth:`MetricsCollector.to_dict`
    except :data:`UNREPLICATED_COUNTERS`.
    """
    data = metrics.to_dict()
    for key in UNREPLICATED_COUNTERS:
        data.pop(key, None)
    return data


# -- sharding --------------------------------------------------------------


def trace_components(trace: ColumnarTrace) -> List[List[int]]:
    """Connected components of the encounter graph (union-find).

    Returns lists of host ids; hosts that never meet anyone form
    singleton components.  Items can only travel within a component, so
    components are the safe unit of parallel partitioning.
    """
    n = len(trace.hosts)
    parent = list(range(n))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for a, b in zip(trace.a, trace.b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra
    groups: Dict[int, List[int]] = {}
    for host in range(n):
        groups.setdefault(find(host), []).append(host)
    return sorted(groups.values())


def plan_shards(
    trace: ColumnarTrace, shards: int
) -> List[Tuple[List[int], int]]:
    """Pack trace components into ≤ ``shards`` balanced shards.

    Returns ``[(host_ids, encounter_count), ...]``; balancing greedily
    assigns the heaviest components (by encounter count) first.
    """
    components = trace_components(trace)
    if shards < 1:
        raise ValueError("shards must be >= 1")
    enc_per_host: Dict[int, int] = {}
    for a, b in zip(trace.a, trace.b):
        enc_per_host[a] = enc_per_host.get(a, 0) + 1
        enc_per_host[b] = enc_per_host.get(b, 0) + 1
    weighted = sorted(
        (
            (sum(enc_per_host.get(h, 0) for h in comp), comp)
            for comp in components
        ),
        key=lambda pair: (-pair[0], pair[1]),
    )
    n_shards = min(shards, len(components))
    bins: List[Tuple[List[int], int]] = [([], 0) for _ in range(n_shards)]
    for weight, comp in weighted:
        lightest = min(range(n_shards), key=lambda i: bins[i][1])
        hosts, total = bins[lightest]
        hosts.extend(comp)
        bins[lightest] = (hosts, total + weight)
    return [(sorted(hosts), total // 2) for hosts, total in bins if hosts]


def merge_metrics(parts: Iterable[MetricsCollector]) -> MetricsCollector:
    """Deterministically merge per-shard collectors (disjoint records)."""
    merged = MetricsCollector()
    for part in parts:
        for message_id, record in part.records.items():
            if message_id in merged.records:
                raise ValueError(
                    f"shards overlap on message {message_id}"
                )
            merged.records[message_id] = record
        merged.end_time = max(merged.end_time, part.end_time)
        for name in (
            "encounters",
            "dropped_encounters",
            "backoff_skips",
            "quarantine_skips",
            "resumed_pairs",
            "syncs",
            "interrupted_syncs",
            "transmissions",
            "matching_transmissions",
            "relayed_transmissions",
            "truncated_transmissions",
            "lost_transmissions",
            "redundant_transmissions",
            "quarantined_entries",
            "rejected_knowledge",
            "evictions",
            "crashes",
            "store_items_at_sync",
            "items_scanned",
            "index_skipped",
            "filter_cache_hits",
            "filter_cache_misses",
            "filter_cache_invalidations",
            "checksum_cache_hits",
            "checksum_cache_misses",
            "checksum_cache_invalidations",
            "metadata_bytes",
            "digest_syncs",
            "digest_suppressed",
            "fp_resends",
        ):
            setattr(merged, name, getattr(merged, name) + getattr(part, name))
        for kind, count in part.protocol_violations.items():
            merged.protocol_violations[kind] = (
                merged.protocol_violations.get(kind, 0) + count
            )
        for label, count in part.peer_health_transitions.items():
            merged.peer_health_transitions[label] = (
                merged.peer_health_transitions.get(label, 0) + count
            )
    return merged


def _shard_worker(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one shard inside a worker process (spawn-safe, module level)."""
    from multiprocessing import shared_memory

    # Workers are spawned by the pool, so they share the parent's
    # resource tracker: attaching here neither re-registers nor unlinks
    # the segment — the parent alone owns cleanup.
    shm = shared_memory.SharedMemory(name=payload["shm"])
    try:
        n_enc = payload["n_enc"]
        buf = shm.buf
        off_times, off_a, off_b, off_order, off_shard = payload["offsets"]
        times = buf[off_times : off_times + 8 * n_enc].cast("d")
        enc_a = buf[off_a : off_a + 4 * n_enc].cast("i")
        enc_b = buf[off_b : off_b + 4 * n_enc].cast("i")
        order = buf[off_order : off_order + n_enc]
        shard_of = buf[off_shard : off_shard + n_enc]
        shard_id = payload["shard_id"]
        global_hosts = payload["global_hosts"]
        host_ids = payload["host_ids"]
        local_of = {g: l for l, g in enumerate(host_ids)}
        hosts = tuple(global_hosts[g] for g in host_ids)

        l_times = array("d")
        l_a = array("i")
        l_b = array("i")
        l_order = array("b")
        for k in range(n_enc):
            if shard_of[k] != shard_id:
                continue
            l_times.append(times[k])
            l_a.append(local_of[enc_a[k]])
            l_b.append(local_of[enc_b[k]])
            l_order.append(order[k])
        del times, enc_a, enc_b, order, shard_of, buf
    finally:
        shm.close()

    injections = [Injection(*tup) for tup in payload["injections"]]
    relay_sets = {
        host: frozenset(addresses)
        for host, addresses in payload["relay_sets"].items()
    }
    faults_payload = payload.get("faults")
    world = ColumnarWorld(
        ColumnarTrace(hosts, l_times, l_a, l_b, array("d", bytes(8) * len(l_times))),
        injections,
        policy=payload["policy"],
        policy_parameters=payload["policy_parameters"],
        relay_sets=relay_sets,
        bandwidth_limit=payload["bandwidth_limit"],
        faults=(
            FaultConfig.from_dict(faults_payload)
            if faults_payload is not None
            else None
        ),
        fault_seed=payload.get("fault_seed", 0),
        seed=0,
        order_draws=l_order,
    )
    metrics = world.run(end_time=payload["end_time"])
    return {
        "metrics": metrics.to_dict(),
        "skipped": len(world.skipped_injections),
        "knowledge": None,
    }


def run_columnar_sharded(
    config: Any,
    trace: Optional[EncounterTrace] = None,
    model: Optional[Any] = None,
    extra_days: int = 0,
    shards: int = 2,
) -> Tuple[MetricsCollector, Dict[str, float]]:
    """Run ``config`` partitioned across worker processes.

    Shards are unions of encounter-graph components, the trace columns
    travel via shared memory, and the encounter-order coin flips are
    precomputed in global trace order so each shard consumes exactly
    the draws a global run would have given it.  Armed faults require
    ``FaultConfig(rng_streams="per-link")``: every fault decision then
    draws from a per-host-pair child stream, and since a pair never
    crosses a component (hence never a shard), each worker makes
    exactly the draws a global run would.  The default "shared" mode
    keeps one global injector stream, which cannot be split.
    """
    from concurrent.futures import ProcessPoolExecutor
    from multiprocessing import get_context, shared_memory

    reason = columnar_unsupported_reason(config)
    if reason is not None:
        raise ColumnarUnsupportedError(reason)
    if (
        config.faults is not None
        and config.faults.enabled
        and config.faults.rng_streams != "per-link"
    ):
        raise ColumnarUnsupportedError(
            "sharded columnar runs with faults require "
            'FaultConfig(rng_streams="per-link") — the default shared '
            "injector stream cannot be split across workers"
        )
    trace, injections, relay_sets = _build_inputs(config, trace, model)
    trace_summary = trace.summary()
    ctrace = ColumnarTrace.from_trace(trace)
    n_enc = len(ctrace)
    plan = plan_shards(ctrace, shards)
    if len(plan) <= 1:
        # One connected component: nothing to partition.
        world = ColumnarWorld(
            ctrace,
            injections,
            policy=config.policy,
            policy_parameters=config.policy_parameters,
            relay_sets=relay_sets,
            bandwidth_limit=config.bandwidth_limit,
            faults=config.faults,
            fault_seed=config.fault_seed,
            seed=config.encounter_order_seed,
        )
        return world.run(extra_days=extra_days), trace_summary

    # Precompute per-encounter order draws in global order.
    rng = random.Random(config.encounter_order_seed)
    order = bytearray(n_enc)
    for k in range(n_enc):
        if rng.random() < 0.5:
            order[k] = 1

    # Shard membership per encounter (every encounter stays inside one
    # component, hence one shard).
    shard_of_host: Dict[int, int] = {}
    for sid, (host_ids, _weight) in enumerate(plan):
        for h in host_ids:
            shard_of_host[h] = sid
    shard_of = bytearray(n_enc)
    for k in range(n_enc):
        shard_of[k] = shard_of_host[ctrace.a[k]]

    end_time = float((ctrace.last_day + 1 + extra_days) * SECONDS_PER_DAY)

    # Pack the shared columns: times | a | b | order | shard_of.
    times_b = ctrace.times.tobytes()
    a_b = ctrace.a.tobytes()
    b_b = ctrace.b.tobytes()
    offsets = []
    total = 0
    for blob in (times_b, a_b, b_b, bytes(order), bytes(shard_of)):
        offsets.append(total)
        total += len(blob)
    shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    try:
        cursor = 0
        for blob in (times_b, a_b, b_b, bytes(order), bytes(shard_of)):
            shm.buf[cursor : cursor + len(blob)] = blob
            cursor += len(blob)

        host_name_to_shard = {
            ctrace.hosts[h]: sid
            for sid, (host_ids, _weight) in enumerate(plan)
            for h in host_ids
        }
        shard_injections: List[List[Tuple[float, str, str, Any]]] = [
            [] for _ in plan
        ]
        skipped = 0
        for inj in injections:
            sid = host_name_to_shard.get(inj.source)
            if sid is None:
                skipped += 1
                continue
            shard_injections[sid].append(
                (inj.time, inj.source, inj.destination, inj.body)
            )
        payloads = []
        for sid, (host_ids, _weight) in enumerate(plan):
            payloads.append(
                {
                    "shm": shm.name,
                    "n_enc": n_enc,
                    "offsets": offsets,
                    "shard_id": sid,
                    "global_hosts": ctrace.hosts,
                    "host_ids": host_ids,
                    "injections": shard_injections[sid],
                    "relay_sets": {
                        ctrace.hosts[h]: sorted(
                            relay_sets.get(ctrace.hosts[h], frozenset())
                        )
                        for h in host_ids
                    },
                    "policy": config.policy,
                    "policy_parameters": dict(config.policy_parameters),
                    "bandwidth_limit": config.bandwidth_limit,
                    "faults": (
                        config.faults.to_dict()
                        if config.faults is not None and config.faults.enabled
                        else None
                    ),
                    "fault_seed": config.fault_seed,
                    "end_time": end_time,
                }
            )
        context = get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=len(payloads), mp_context=context
        ) as pool:
            results = list(pool.map(_shard_worker, payloads))
    finally:
        shm.close()
        shm.unlink()

    parts = [MetricsCollector.from_dict(r["metrics"]) for r in results]
    merged = merge_metrics(parts)
    merged.end_time = end_time
    return merged, trace_summary
