"""Measurement: everything the paper's evaluation section reports.

The collector tracks, per injected message: injection time, first delivery
time, and the number of live copies stored network-wide at the moment of
delivery and at the end of the experiment — the quantities behind
Figures 5–10. Sync-level counters (transmissions, truncations, evictions)
quantify the traffic/storage side of the trade-off.

Delay conventions follow the paper: delays are measured from injection to
*first* delivery; "delivered within T" fractions are over all injected
messages (undelivered counts against the fraction); mean delay is over
delivered messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.replication.ids import ItemId, ReplicaId
from repro.replication.sync import SyncStats

HOURS = 3600.0
DAYS = 86400.0


@dataclass
class MessageRecord:
    """Lifecycle of one injected message."""

    message_id: ItemId
    source: str
    destination: str
    injected_at: float
    injected_node: str
    delivered_at: Optional[float] = None
    delivered_node: Optional[str] = None
    copies_at_delivery: Optional[int] = None
    copies_at_end: Optional[int] = None

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None

    @property
    def delay(self) -> Optional[float]:
        """Injection-to-first-delivery delay in seconds (None if undelivered)."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; ``from_dict(to_dict())`` reconstructs exactly.

        The item id is kept structured (origin name + serial) rather than
        as its ``"origin#serial"`` string so reconstruction never has to
        parse a host name that could itself contain ``#``.
        """
        return {
            "message_id": {
                "origin": self.message_id.origin.name,
                "serial": self.message_id.serial,
            },
            "source": self.source,
            "destination": self.destination,
            "injected_at": self.injected_at,
            "injected_node": self.injected_node,
            "delivered_at": self.delivered_at,
            "delivered_node": self.delivered_node,
            "copies_at_delivery": self.copies_at_delivery,
            "copies_at_end": self.copies_at_end,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MessageRecord":
        payload = dict(data)
        raw_id = payload.pop("message_id")
        return cls(
            message_id=ItemId(ReplicaId(raw_id["origin"]), raw_id["serial"]),
            **payload,
        )


@dataclass
class MetricsCollector:
    """Accumulates per-message records and aggregate traffic counters."""

    records: Dict[ItemId, MessageRecord] = field(default_factory=dict)
    syncs: int = 0
    encounters: int = 0
    transmissions: int = 0
    matching_transmissions: int = 0
    relayed_transmissions: int = 0
    truncated_transmissions: int = 0
    evictions: int = 0
    # Fault-injection accounting (all zero in fault-free runs): encounters
    # the fault model dropped outright or deferred to a backoff window,
    # sessions interrupted mid-batch, pairs whose first complete encounter
    # after an interruption resumed them (an encounter/pair-level count,
    # not per session), node crash-restarts, and transmissions lost in
    # transit or delivered twice.
    dropped_encounters: int = 0
    backoff_skips: int = 0
    interrupted_syncs: int = 0
    resumed_pairs: int = 0
    crashes: int = 0
    lost_transmissions: int = 0
    redundant_transmissions: int = 0
    # Hardened-sync accounting (all zero in fault-free runs): entries the
    # integrity checks quarantined at apply time, sync requests whose
    # knowledge was rejected as fabricated, encounters skipped because a
    # participant had quarantined its peer, protocol violations by kind,
    # and peer-health state transitions by ``from->to`` label.
    quarantined_entries: int = 0
    rejected_knowledge: int = 0
    quarantine_skips: int = 0
    protocol_violations: Dict[str, int] = field(default_factory=dict)
    peer_health_transitions: Dict[str, int] = field(default_factory=dict)
    # Sync hot-path accounting (the version-index optimisation): how many
    # stored items the sources held when batches were built (what a full
    # scan would visit), how many the version index actually enumerated,
    # how many it skipped, and how the memoised peer-filter evaluations
    # fared. ``items_scanned / syncs`` is the figure ``repro bench sync``
    # reports as items-scanned-per-encounter.
    store_items_at_sync: int = 0
    items_scanned: int = 0
    index_skipped: int = 0
    filter_cache_hits: int = 0
    filter_cache_misses: int = 0
    filter_cache_invalidations: int = 0
    # Content-addressed integrity-cache accounting (zero on perfect
    # channels, which compute no checksums): how the per-replica checksum
    # caches fared across send-side stamping and receive-side verification.
    checksum_cache_hits: int = 0
    checksum_cache_misses: int = 0
    checksum_cache_invalidations: int = 0
    # Knowledge-digest accounting (all zero when the digest mode is off):
    # request-knowledge bytes on the wire (exact vector or digest frame,
    # whichever each session shipped), sessions opened with a digest,
    # items a digest suppressed, and re-sends that proved an earlier
    # suppression was a false positive.
    metadata_bytes: int = 0
    digest_syncs: int = 0
    digest_suppressed: int = 0
    fp_resends: int = 0
    end_time: float = 0.0

    # Memory accounting (deliberately *not* dataclass fields: to_dict()
    # iterates fields(), and run artifacts must stay byte-identical and
    # independent of what else the hosting process did — peak RSS is
    # process-wide and monotone, so stamping it automatically would
    # break sequential-run determinism).  Benches opt in by calling
    # record_memory() before reading summary().
    peak_rss_bytes = 0.0
    tracemalloc_peak_bytes = 0.0

    # Churn/lifecycle accounting — also non-field class attributes, for
    # the same reason as the memory stamps: churn-disabled run artifacts
    # must stay byte-identical to pre-churn ones, so these keys enter
    # neither to_dict() nor (unless churn_armed) summary().  A churning
    # run sets churn_armed and the counters via the record_churn_*
    # methods; reciprocity_scores is always *replaced* with a fresh dict
    # (assignment creates an instance attribute — mutating the class
    # attribute in place would leak state across collectors).
    churn_armed = False
    churn_arrivals = 0
    churn_leaves = 0
    churn_crashes = 0
    churn_rejoins = 0
    churn_amnesiac_rejoins = 0
    churn_handoffs = 0
    churn_skipped_encounters = 0
    churn_lost_injections = 0
    reciprocity_refusals = 0
    node_seconds_online = 0.0
    rejoin_recovery_seconds = 0.0
    rejoin_recoveries = 0
    lost_to_departure = 0
    reciprocity_scores = {}  # Mapping[str, float] once finalize_churn ran

    # -- recording ------------------------------------------------------------------

    def record_injection(
        self,
        message_id: ItemId,
        source: str,
        destination: str,
        time: float,
        node: str,
    ) -> None:
        self.records[message_id] = MessageRecord(
            message_id=message_id,
            source=source,
            destination=destination,
            injected_at=time,
            injected_node=node,
        )

    def record_delivery(
        self, message_id: ItemId, time: float, node: str, copies: int
    ) -> bool:
        """Record a first delivery. Returns False for unknown/repeat events."""
        record = self.records.get(message_id)
        if record is None or record.delivered:
            return False
        record.delivered_at = time
        record.delivered_node = node
        record.copies_at_delivery = copies
        return True

    def record_sync(self, stats: SyncStats) -> None:
        self.syncs += 1
        self.transmissions += stats.sent_total
        self.matching_transmissions += stats.sent_matching
        self.relayed_transmissions += stats.sent_relayed
        self.truncated_transmissions += stats.truncated
        self.lost_transmissions += stats.lost_in_transit
        self.redundant_transmissions += stats.redundant_received
        self.store_items_at_sync += stats.store_size
        self.items_scanned += stats.candidates
        self.index_skipped += stats.index_skipped
        self.filter_cache_hits += stats.filter_cache_hits
        self.filter_cache_misses += stats.filter_cache_misses
        self.filter_cache_invalidations += stats.filter_cache_invalidations
        self.checksum_cache_hits += stats.checksum_cache_hits
        self.checksum_cache_misses += stats.checksum_cache_misses
        self.checksum_cache_invalidations += stats.checksum_cache_invalidations
        self.quarantined_entries += stats.quarantined_entries
        self.rejected_knowledge += stats.rejected_knowledge
        self.metadata_bytes += stats.metadata_bytes
        if stats.digest_used:
            self.digest_syncs += 1
        self.digest_suppressed += stats.digest_suppressed
        self.fp_resends += stats.fp_resend
        for violation in stats.violations:
            self.record_violation(violation.kind)
        if stats.interrupted:
            self.interrupted_syncs += 1

    def record_encounter(self) -> None:
        self.encounters += 1

    def record_eviction(self) -> None:
        self.evictions += 1

    def record_dropped_encounter(self) -> None:
        self.dropped_encounters += 1

    def record_backoff_skip(self) -> None:
        self.backoff_skips += 1

    def record_resumed_pair(self) -> None:
        """One pair's first complete encounter after an interruption."""
        self.resumed_pairs += 1

    def record_crash(self) -> None:
        self.crashes += 1

    def record_quarantine_skip(self) -> None:
        """An encounter refused because a side had quarantined its peer."""
        self.quarantine_skips += 1

    def record_violation(self, kind: str) -> None:
        """One detected protocol violation, tallied by kind."""
        self.protocol_violations[kind] = self.protocol_violations.get(kind, 0) + 1

    def record_health_transition(self, label: str) -> None:
        """One peer-health state transition (``"from->to"`` label)."""
        self.peer_health_transitions[label] = (
            self.peer_health_transitions.get(label, 0) + 1
        )

    # -- churn recording (no-ops unless a churning engine drives them) --------------

    def arm_churn(self) -> None:
        """Mark this collector as belonging to a churning run.

        Arming makes ``summary()`` include the lifecycle block; it does
        not touch ``to_dict()``, so artifacts keep their schema.
        """
        self.churn_armed = True

    def record_churn_arrival(self) -> None:
        self.churn_arrivals += 1

    def record_churn_leave(self) -> None:
        self.churn_leaves += 1

    def record_churn_crash(self) -> None:
        self.churn_crashes += 1

    def record_churn_rejoin(self, amnesiac: bool = False) -> None:
        self.churn_rejoins += 1
        if amnesiac:
            self.churn_amnesiac_rejoins += 1

    def record_churn_handoff(self) -> None:
        """A leaver's final sync with its handoff partner actually ran."""
        self.churn_handoffs += 1

    def record_churn_skip(self) -> None:
        """An encounter skipped because a participant was offline."""
        self.churn_skipped_encounters += 1

    def record_churn_lost_injection(self) -> None:
        """An injection that fell on an offline node (message never born)."""
        self.churn_lost_injections += 1

    def record_reciprocity_refusal(self) -> None:
        """An encounter refused by the tit-for-tat reciprocity gate."""
        self.reciprocity_refusals += 1

    def record_rejoin_recovery(self, seconds: float) -> None:
        """A rejoined node completed its first post-rejoin encounter."""
        self.rejoin_recovery_seconds += seconds
        self.rejoin_recoveries += 1

    def finalize_churn(
        self,
        node_seconds_online: float,
        departed: frozenset,
        scores: Mapping[str, float],
    ) -> None:
        """Stamp end-of-run lifecycle aggregates onto the collector.

        ``lost_to_departure`` counts injected-but-undelivered messages
        whose destination node left for good — deliveries churn has
        taken off the table, as opposed to ones merely still in flight.
        """
        self.node_seconds_online = node_seconds_online
        self.lost_to_departure = sum(
            1
            for record in self.records.values()
            if not record.delivered and record.destination in departed
        )
        self.reciprocity_scores = dict(sorted(scores.items()))

    def record_memory(self) -> None:
        """Stamp current peak memory usage onto this collector (opt-in).

        Captures the process-wide peak RSS (``ru_maxrss``; kibibytes on
        Linux, bytes on macOS) and, when :mod:`tracemalloc` is tracing,
        the traced-allocation peak.  Neither value enters ``to_dict()``:
        they are measurement-host facts, not run results.
        """
        import resource
        import sys
        import tracemalloc

        maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        scale = 1 if sys.platform == "darwin" else 1024
        self.peak_rss_bytes = float(maxrss * scale)
        if tracemalloc.is_tracing():
            _current, peak = tracemalloc.get_traced_memory()
            self.tracemalloc_peak_bytes = float(peak)

    # -- aggregate views ----------------------------------------------------------------

    @property
    def injected(self) -> int:
        return len(self.records)

    @property
    def delivered(self) -> int:
        return sum(1 for record in self.records.values() if record.delivered)

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.injected if self.injected else 0.0

    def delays(self) -> List[float]:
        """Delays (seconds) of delivered messages, sorted ascending."""
        return sorted(
            record.delay  # type: ignore[misc]
            for record in self.records.values()
            if record.delay is not None
        )

    def mean_delay(self) -> Optional[float]:
        """Mean delivery delay in seconds, over delivered messages."""
        delays = self.delays()
        if not delays:
            return None
        return sum(delays) / len(delays)

    def mean_delay_hours(self) -> Optional[float]:
        mean = self.mean_delay()
        return None if mean is None else mean / HOURS

    def max_delay(self) -> Optional[float]:
        delays = self.delays()
        return delays[-1] if delays else None

    def fraction_delivered_within(self, seconds: float) -> float:
        """Fraction of *all injected* messages delivered within ``seconds``."""
        if not self.records:
            return 0.0
        on_time = sum(
            1
            for record in self.records.values()
            if record.delay is not None and record.delay <= seconds
        )
        return on_time / len(self.records)

    def delay_cdf(self, points: Sequence[float]) -> List[Tuple[float, float]]:
        """(delay_bound_seconds, fraction delivered within it) pairs.

        This is exactly the curve family of Figures 7, 9, and 10: the
        cumulative distribution of message delays over all injections.
        """
        return [(point, self.fraction_delivered_within(point)) for point in points]

    def mean_copies_at_delivery(self) -> Optional[float]:
        values = [
            record.copies_at_delivery
            for record in self.records.values()
            if record.copies_at_delivery is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def mean_copies_at_end(self) -> Optional[float]:
        values = [
            record.copies_at_end
            for record in self.records.values()
            if record.copies_at_end is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def injections_by_day(self) -> Dict[int, int]:
        """Day (0-based) → messages injected that day."""
        counts: Dict[int, int] = {}
        for record in self.records.values():
            day = int(record.injected_at // DAYS)
            counts[day] = counts.get(day, 0) + 1
        return counts

    def deliveries_by_day(self) -> Dict[int, int]:
        """Day (0-based) → messages first delivered that day."""
        counts: Dict[int, int] = {}
        for record in self.records.values():
            if record.delivered_at is None:
                continue
            day = int(record.delivered_at // DAYS)
            counts[day] = counts.get(day, 0) + 1
        return counts

    def backlog_by_day(self) -> Dict[int, int]:
        """Day → messages injected but not yet delivered at day end.

        The day-by-day view of convergence: the paper's Figure 7(b)
        plateau corresponds to this reaching (near) zero.
        """
        injected = self.injections_by_day()
        delivered = self.deliveries_by_day()
        days = sorted(set(injected) | set(delivered))
        backlog: Dict[int, int] = {}
        outstanding = 0
        for day in range(days[0], days[-1] + 1) if days else []:
            outstanding += injected.get(day, 0) - delivered.get(day, 0)
            backlog[day] = outstanding
        return backlog

    # -- serialization (the repro.api round-trip contract) ------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; ``from_dict(to_dict())`` reconstructs exactly.

        Records are emitted sorted by message id so the serialized form is
        deterministic regardless of delivery-driven insertion order — the
        property behind the sweep engine's byte-identical parallel/serial
        artifact guarantee.
        """
        data: Dict[str, Any] = {
            "records": [
                self.records[message_id].to_dict()
                for message_id in sorted(self.records)
            ],
        }
        for spec in fields(self):
            if spec.name == "records":
                continue
            value = getattr(self, spec.name)
            if isinstance(value, dict):
                # Tally dicts are emitted key-sorted so the serialized
                # form never depends on detection order.
                value = {key: value[key] for key in sorted(value)}
            data[spec.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsCollector":
        payload = dict(data)
        records = [
            MessageRecord.from_dict(raw) for raw in payload.pop("records")
        ]
        collector = cls(
            records={record.message_id: record for record in records},
            **payload,
        )
        return collector

    def summary(self) -> Dict[str, Any]:
        """Headline numbers for reports and experiment assertions.

        Churning runs (``churn_armed``) append a lifecycle block —
        availability, losses to departure, rejoin recovery latency, and
        the per-node ``reciprocity_scores`` map; churn-free summaries
        are unchanged.
        """
        mean_delay_hours = self.mean_delay_hours()
        max_delay = self.max_delay()
        summary: Dict[str, Any] = {
            "injected": float(self.injected),
            "delivered": float(self.delivered),
            "delivery_ratio": self.delivery_ratio,
            "mean_delay_hours": mean_delay_hours if mean_delay_hours is not None else float("nan"),
            "max_delay_days": (max_delay / DAYS) if max_delay is not None else float("nan"),
            "within_12h": self.fraction_delivered_within(12 * HOURS),
            "encounters": float(self.encounters),
            "syncs": float(self.syncs),
            "transmissions": float(self.transmissions),
            "relayed_transmissions": float(self.relayed_transmissions),
            "evictions": float(self.evictions),
            "dropped_encounters": float(self.dropped_encounters),
            "backoff_skips": float(self.backoff_skips),
            "interrupted_syncs": float(self.interrupted_syncs),
            "resumed_pairs": float(self.resumed_pairs),
            "crashes": float(self.crashes),
            "lost_transmissions": float(self.lost_transmissions),
            "redundant_transmissions": float(self.redundant_transmissions),
            "quarantined_entries": float(self.quarantined_entries),
            "rejected_knowledge": float(self.rejected_knowledge),
            "quarantine_skips": float(self.quarantine_skips),
            "protocol_violations": float(
                sum(self.protocol_violations.values())
            ),
            "peer_health_transitions": float(
                sum(self.peer_health_transitions.values())
            ),
            "store_items_at_sync": float(self.store_items_at_sync),
            "items_scanned": float(self.items_scanned),
            "index_skipped": float(self.index_skipped),
            "items_scanned_per_sync": (
                self.items_scanned / self.syncs if self.syncs else 0.0
            ),
            "filter_cache_hits": float(self.filter_cache_hits),
            "filter_cache_misses": float(self.filter_cache_misses),
            "filter_cache_invalidations": float(self.filter_cache_invalidations),
            "checksum_cache_hits": float(self.checksum_cache_hits),
            "checksum_cache_misses": float(self.checksum_cache_misses),
            "checksum_cache_invalidations": float(
                self.checksum_cache_invalidations
            ),
            "metadata_bytes": float(self.metadata_bytes),
            "digest_syncs": float(self.digest_syncs),
            "digest_suppressed": float(self.digest_suppressed),
            "fp_resends": float(self.fp_resends),
            "metadata_bytes_per_delivered": (
                self.metadata_bytes / self.delivered
                if self.delivered
                else float(self.metadata_bytes)
            ),
            "mean_copies_at_delivery": (
                self.mean_copies_at_delivery() or float("nan")
            ),
            "mean_copies_at_end": (self.mean_copies_at_end() or float("nan")),
            "peak_rss_bytes": float(self.peak_rss_bytes),
            "tracemalloc_peak_bytes": float(self.tracemalloc_peak_bytes),
        }
        if self.churn_armed:
            summary["churn_arrivals"] = float(self.churn_arrivals)
            summary["churn_leaves"] = float(self.churn_leaves)
            summary["churn_crashes"] = float(self.churn_crashes)
            summary["churn_rejoins"] = float(self.churn_rejoins)
            summary["churn_amnesiac_rejoins"] = float(
                self.churn_amnesiac_rejoins
            )
            summary["churn_handoffs"] = float(self.churn_handoffs)
            summary["churn_skipped_encounters"] = float(
                self.churn_skipped_encounters
            )
            summary["churn_lost_injections"] = float(
                self.churn_lost_injections
            )
            summary["reciprocity_refusals"] = float(self.reciprocity_refusals)
            summary["node_hours_online"] = self.node_seconds_online / HOURS
            summary["lost_to_departure"] = float(self.lost_to_departure)
            summary["mean_rejoin_recovery_hours"] = (
                self.rejoin_recovery_seconds / self.rejoin_recoveries / HOURS
                if self.rejoin_recoveries
                else float("nan")
            )
            summary["reciprocity_scores"] = dict(self.reciprocity_scores)
        return summary
