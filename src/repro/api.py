"""The supported public surface of :mod:`repro`, in one flat namespace.

``repro.api`` is a curated facade: everything re-exported here is covered
by the stability policy in ``docs/api.md`` — keyword-compatible across
minor releases, with at least one release of :class:`DeprecationWarning`
before any breaking change. Internal modules stay importable (this is
research code; poke at anything), but only the names below are *promised*.

Typical use::

    from repro.api import ExperimentConfig, RunStore, expand_grid, run_sweep

    grid = expand_grid(
        ExperimentConfig(scale=0.5),
        policies=["epidemic", "spray"],
        seeds=[0, 1, 2],
    )
    report = run_sweep(grid, store=RunStore("results/runs"), workers=4)

Groups:

* **Experiments** — :class:`ExperimentConfig`, :func:`run_experiment`,
  :class:`ExperimentResult`, :func:`configured_scale`.
* **Sweeps** — :func:`expand_grid`, :func:`run_sweep`,
  :class:`SweepEvent`, :class:`SweepReport`, :class:`RunOutcome`,
  :class:`RunStore`, :exc:`StoreError`, :func:`run_id_for`,
  :func:`config_digest`, :func:`sweep_id_for`.
* **Metrics** — :class:`MetricsCollector`, :class:`MessageRecord`.
* **Policies** — :func:`get_policy`, :func:`register_policy`,
  :func:`available_policies`, :func:`default_parameters`,
  :data:`PAPER_POLICY_ORDER`.
* **Faults** — :class:`FaultConfig`.
* **Churn** — :class:`ChurnConfig` arms the node-lifecycle model
  (arrivals, graceful leaves with handoff, crash/rejoin, free riders,
  reciprocity-gated admission); :class:`ChurnSchedule` /
  :class:`LifecycleEvent` / :func:`generate_churn_schedule` expose the
  derived schedule, :class:`FreeRiderPolicy` the selfish wrapper, and
  :func:`check_churn_parity` the emulator-vs-swarm gate under churn
  (see ``docs/churn.md``).
* **Integrity** — :class:`ProtocolViolation`, :class:`PeerHealthTracker`
  (the hardened-sync layer; see ``docs/protocol.md`` §7),
  :class:`ChecksumCache` (the content-addressed checksum cache every
  replica carries; see ``docs/performance.md``).
* **Knowledge digests** — :class:`DigestConfig` (arms the compact
  Bloom-digest mode of the sync protocol) and :class:`KnowledgeDigest`
  (the digest itself; see ``docs/protocol.md`` §8).
* **Sync sessions** — the transport-agnostic sync flow:
  :class:`SyncSession` and :class:`EncounterSession` run the paper's
  Figure 4 exchange (one direction, or a full two-sync encounter) over
  any :class:`Transport`, configured by :class:`SessionConfig`. The
  emulator, the benches, and the live network all drive these same
  objects; the old ``perform_sync``/``perform_encounter`` free functions
  remain as deprecated shims.
* **Live swarm** — :func:`run_swarm` / :class:`SwarmConfig` replay a
  trace against real replica processes over unix or TCP sockets
  (``repro serve`` / ``repro swarm``), and
  :func:`check_convergence_parity` asserts a live swarm reaches the
  emulator's exact per-node fixed point (see ``docs/deployment.md``).
* **Columnar engine** — select with ``ExperimentConfig(engine="columnar")``;
  :exc:`ColumnarUnsupportedError` and :func:`columnar_unsupported_reason`
  report configs outside the verified subset, :func:`run_columnar_sharded`
  partitions a run across worker processes, :func:`comparable_metrics`
  is the engine-equivalence view of a metrics dict, and
  :class:`MetroConfig` / :func:`generate_metro_trace` build the
  city-scale metro-DieselNet traces it is benchmarked on (see
  ``docs/performance.md`` §7).
"""

from __future__ import annotations

from repro.dtn.registry import (
    PAPER_POLICY_ORDER,
    available_policies,
    default_parameters,
    get_policy,
    register_policy,
)
from repro.emulation.columnar import (
    ColumnarUnsupportedError,
    columnar_unsupported_reason,
    comparable_metrics,
    run_columnar_sharded,
)
from repro.emulation.metrics import MessageRecord, MetricsCollector
from repro.experiments.config import ExperimentConfig, configured_scale
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.store import (
    RunStore,
    StoreError,
    config_digest,
    run_id_for,
    sweep_id_for,
)
from repro.experiments.sweep import (
    RunOutcome,
    SweepEvent,
    SweepReport,
    expand_grid,
    run_sweep,
)
from repro.churn import (
    ChurnConfig,
    ChurnSchedule,
    FreeRiderPolicy,
    LifecycleEvent,
    generate_churn_schedule,
)
from repro.experiments.parity import (
    ParityReport,
    check_churn_parity,
    check_convergence_parity,
    compare_fixed_points,
    replica_fixed_point,
)
from repro.faults.config import FaultConfig
from repro.net.swarm import SwarmConfig, SwarmReport, run_swarm
from repro.replication.digest import DigestConfig, KnowledgeDigest
from repro.replication.integrity import ChecksumCache, ProtocolViolation
from repro.replication.peer_health import PeerHealthTracker
from repro.replication.session import (
    EncounterSession,
    SessionConfig,
    SyncSession,
    Transport,
)
from repro.traces.dieselnet import MetroConfig, generate_metro_trace

__all__ = [
    "ChecksumCache",
    "ChurnConfig",
    "ChurnSchedule",
    "ColumnarUnsupportedError",
    "DigestConfig",
    "EncounterSession",
    "ExperimentConfig",
    "ExperimentResult",
    "FaultConfig",
    "FreeRiderPolicy",
    "KnowledgeDigest",
    "LifecycleEvent",
    "MessageRecord",
    "MetricsCollector",
    "MetroConfig",
    "PAPER_POLICY_ORDER",
    "ParityReport",
    "PeerHealthTracker",
    "ProtocolViolation",
    "RunOutcome",
    "RunStore",
    "SessionConfig",
    "StoreError",
    "SwarmConfig",
    "SwarmReport",
    "SweepEvent",
    "SweepReport",
    "SyncSession",
    "Transport",
    "available_policies",
    "check_churn_parity",
    "check_convergence_parity",
    "columnar_unsupported_reason",
    "comparable_metrics",
    "compare_fixed_points",
    "config_digest",
    "configured_scale",
    "default_parameters",
    "expand_grid",
    "generate_churn_schedule",
    "generate_metro_trace",
    "get_policy",
    "register_policy",
    "replica_fixed_point",
    "run_columnar_sharded",
    "run_experiment",
    "run_id_for",
    "run_swarm",
    "run_sweep",
    "sweep_id_for",
]
