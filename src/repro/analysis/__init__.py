"""Statistics and contact-graph analysis helpers."""

from .contacts import (
    TraceProfile,
    contact_counts,
    daily_degree,
    distinct_partners,
    encounter_concentration,
    inter_contact_summary,
    inter_contact_times,
    pair_coverage,
)
from .reachability import (
    delivery_oracle,
    earliest_delivery_time,
    foremost_arrival_times,
    reachable,
)
from .stats import empirical_cdf, histogram, mean, median, percentile

__all__ = [
    "TraceProfile",
    "contact_counts",
    "daily_degree",
    "delivery_oracle",
    "distinct_partners",
    "earliest_delivery_time",
    "empirical_cdf",
    "encounter_concentration",
    "foremost_arrival_times",
    "histogram",
    "inter_contact_summary",
    "inter_contact_times",
    "mean",
    "median",
    "pair_coverage",
    "reachable",
    "percentile",
]
