"""Temporal reachability over encounter traces.

A message can reach its destination only along a *time-respecting
journey*: a sequence of encounters with non-decreasing timestamps
starting at (or after) the injection. Epidemic flooding with unlimited
resources delivers along the *foremost* such journey, so:

* the set of deliverable messages equals the temporally reachable set;
* each message's minimum possible delay is its foremost-arrival time.

This module computes both, giving experiments an *oracle*: undelivered
messages can be classified as "undeliverable on this trace" vs "missed by
the policy", and any policy's delays can be compared against the optimum
(unconstrained Epidemic should match it exactly — asserted in the
integration tests).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.emulation.encounters import EncounterTrace


def foremost_arrival_times(
    trace: EncounterTrace, source: str, start_time: float
) -> Dict[str, float]:
    """Earliest time each host can hold data originating at ``source``.

    Standard single-source foremost-journey computation: sweep encounters
    in time order; when hosts ``a`` and ``b`` meet at ``t``, anyone who
    had the data strictly before-or-at ``t`` passes it to the other.
    ``source`` holds the data from ``start_time``. Returns only hosts the
    data can reach (always including the source itself).
    """
    arrival: Dict[str, float] = {source: start_time}
    for encounter in trace:
        if encounter.time < start_time:
            continue
        a_time = arrival.get(encounter.a)
        b_time = arrival.get(encounter.b)
        if a_time is not None and a_time <= encounter.time:
            if b_time is None or encounter.time < b_time:
                arrival[encounter.b] = encounter.time
        if b_time is not None and b_time <= encounter.time:
            if a_time is None or encounter.time < a_time:
                arrival[encounter.a] = encounter.time
    return arrival


def earliest_delivery_time(
    trace: EncounterTrace, source: str, destination: str, start_time: float
) -> Optional[float]:
    """The optimal (foremost) delivery time, or None if unreachable.

    This is the delay lower bound any routing policy is measured against.
    """
    if source == destination:
        return start_time
    return foremost_arrival_times(trace, source, start_time).get(destination)


def reachable(
    trace: EncounterTrace, source: str, destination: str, start_time: float
) -> bool:
    """True iff a time-respecting journey exists."""
    return earliest_delivery_time(trace, source, destination, start_time) is not None


def delivery_oracle(
    trace: EncounterTrace,
    injections,
) -> Dict[int, Optional[float]]:
    """Foremost delivery times for a whole injection schedule.

    ``injections`` is any sequence with ``time``/``source``/``destination``
    attributes (e.g. :class:`repro.emulation.network.Injection` whose
    addresses name hosts directly). Returns index → optimal delivery time
    (None = undeliverable on this trace).
    """
    results: Dict[int, Optional[float]] = {}
    for index, injection in enumerate(injections):
        results[index] = earliest_delivery_time(
            trace, injection.source, injection.destination, injection.time
        )
    return results
