"""Contact-graph analysis of encounter traces.

DTN routing performance is a function of the contact process, so any
serious evaluation starts by characterising the trace. This module
computes the standard descriptive statistics of opportunistic-contact
datasets — per-host contact counts and degrees, pairwise coverage,
inter-contact time distributions, and daily connectivity — both to
validate the synthetic DieselNet generator against its calibration
targets and to characterise real traces before running experiments on
them.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.emulation.encounters import EncounterTrace

from .stats import mean, percentile


def contact_counts(trace: EncounterTrace) -> Dict[str, int]:
    """Total encounters each host participates in."""
    counts: Counter = Counter()
    for encounter in trace:
        counts[encounter.a] += 1
        counts[encounter.b] += 1
    return dict(counts)


def distinct_partners(trace: EncounterTrace) -> Dict[str, int]:
    """Number of distinct hosts each host ever meets."""
    partners: Dict[str, set] = defaultdict(set)
    for encounter in trace:
        partners[encounter.a].add(encounter.b)
        partners[encounter.b].add(encounter.a)
    return {host: len(met) for host, met in partners.items()}


def pair_coverage(trace: EncounterTrace) -> float:
    """Fraction of unordered host pairs that meet at least once.

    Direct-delivery completeness is bounded by this number: a sender →
    recipient pair that never meets can only be served by relaying.
    """
    hosts = sorted(trace.hosts)
    if len(hosts) < 2:
        return 0.0
    possible = len(hosts) * (len(hosts) - 1) // 2
    met = len(set(trace.meeting_counts()))
    return met / possible


def encounter_concentration(trace: EncounterTrace, top_fraction: float = 0.1) -> float:
    """Share of all encounters carried by the top ``top_fraction`` of pairs.

    Real vehicular traces are highly concentrated (same-route buses meet
    constantly); a value near ``top_fraction`` would mean a uniform
    random graph instead.
    """
    counts = sorted(trace.meeting_counts().values(), reverse=True)
    if not counts:
        return 0.0
    top_n = max(1, int(len(counts) * top_fraction))
    return sum(counts[:top_n]) / sum(counts)


def inter_contact_times(trace: EncounterTrace) -> Dict[Tuple[str, str], List[float]]:
    """Per pair, the gaps (seconds) between consecutive meetings."""
    meetings: Dict[Tuple[str, str], List[float]] = defaultdict(list)
    for encounter in trace:
        meetings[encounter.pair].append(encounter.time)
    gaps: Dict[Tuple[str, str], List[float]] = {}
    for pair, times in meetings.items():
        if len(times) < 2:
            continue
        times.sort()
        gaps[pair] = [b - a for a, b in zip(times, times[1:])]
    return gaps


def inter_contact_summary(trace: EncounterTrace) -> Dict[str, float]:
    """Aggregate inter-contact time statistics (seconds)."""
    all_gaps: List[float] = []
    for gaps in inter_contact_times(trace).values():
        all_gaps.extend(gaps)
    all_gaps.sort()
    return {
        "pairs_with_repeats": float(len(inter_contact_times(trace))),
        "mean": mean(all_gaps),
        "median": percentile(all_gaps, 0.5),
        "p90": percentile(all_gaps, 0.9),
    }


def daily_degree(trace: EncounterTrace) -> Dict[int, float]:
    """Mean number of distinct partners per active host, per day."""
    result: Dict[int, float] = {}
    for day in trace.days:
        day_trace = trace.on_day(day)
        partners = distinct_partners(day_trace)
        if partners:
            result[day] = mean(list(map(float, partners.values())))
    return result


@dataclass(frozen=True)
class TraceProfile:
    """A one-stop descriptive profile of an encounter trace."""

    encounters: int
    hosts: int
    days: int
    pair_coverage: float
    concentration_top10pct: float
    mean_daily_degree: float
    median_inter_contact_hours: float

    @classmethod
    def of(cls, trace: EncounterTrace) -> "TraceProfile":
        summary = trace.summary()
        degrees = daily_degree(trace)
        gaps = inter_contact_summary(trace)
        median_gap = gaps["median"]
        return cls(
            encounters=int(summary["encounters"]),
            hosts=int(summary["hosts"]),
            days=int(summary["days"]),
            pair_coverage=pair_coverage(trace),
            concentration_top10pct=encounter_concentration(trace, 0.1),
            mean_daily_degree=mean(list(degrees.values())) if degrees else 0.0,
            median_inter_contact_hours=(
                median_gap / 3600.0 if median_gap == median_gap else float("nan")
            ),
        )

    def render(self) -> str:
        return "\n".join(
            [
                f"{'encounters':>28}: {self.encounters}",
                f"{'hosts':>28}: {self.hosts}",
                f"{'days':>28}: {self.days}",
                f"{'pair coverage':>28}: {self.pair_coverage:.1%}",
                f"{'top-10% pair concentration':>28}: {self.concentration_top10pct:.1%}",
                f"{'mean daily degree':>28}: {self.mean_daily_degree:.1f}",
                f"{'median inter-contact (h)':>28}: {self.median_inter_contact_hours:.2f}",
            ]
        )
