"""Small statistics helpers used by experiments and reports."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; NaN for an empty sequence."""
    if not values:
        return float("nan")
    return sum(values) / len(values)


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of pre-sorted data.

    ``fraction`` is in [0, 1]. NaN for empty data.
    """
    if not sorted_values:
        return float("nan")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return sorted_values[lower]
    weight = position - lower
    return sorted_values[lower] * (1 - weight) + sorted_values[upper] * weight


def median(values: Sequence[float]) -> float:
    return percentile(sorted(values), 0.5)


def empirical_cdf(
    sorted_values: Sequence[float], points: Sequence[float], total: int | None = None
) -> List[Tuple[float, float]]:
    """(x, F(x)) pairs of the empirical CDF evaluated at ``points``.

    ``total`` overrides the denominator — pass the number of *injected*
    messages to get the paper's delivery-CDF convention where undelivered
    messages weigh the curve down.
    """
    denominator = total if total is not None else len(sorted_values)
    if denominator <= 0:
        return [(point, 0.0) for point in points]
    result: List[Tuple[float, float]] = []
    index = 0
    for point in sorted(points):
        while index < len(sorted_values) and sorted_values[index] <= point:
            index += 1
        result.append((point, index / denominator))
    return result


def histogram(
    values: Sequence[float], edges: Sequence[float]
) -> List[Tuple[Tuple[float, float], int]]:
    """Counts of values in half-open bins ``[edges[i], edges[i+1])``."""
    if len(edges) < 2:
        raise ValueError("need at least two bin edges")
    bins = [((edges[i], edges[i + 1]), 0) for i in range(len(edges) - 1)]
    counts = [0] * (len(edges) - 1)
    for value in values:
        for i in range(len(edges) - 1):
            if edges[i] <= value < edges[i + 1]:
                counts[i] += 1
                break
    return [((edges[i], edges[i + 1]), counts[i]) for i in range(len(edges) - 1)]
