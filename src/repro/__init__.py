"""repro — a reproduction of "Peer-to-peer Data Replication Meets Delay
Tolerant Networking" (Gilbert, Ramasubramanian, Stuedi, Terry; ICDCS 2011).

The package layers, bottom to top:

* :mod:`repro.replication` — a Cimbiosys-style peer-to-peer *filtered*
  replication substrate: versioned items, content-based filters,
  version-vector knowledge, pairwise sync with eventual filter consistency
  and at-most-once delivery, and a pluggable routing-policy interface.
* :mod:`repro.dtn` — four DTN routing protocols implemented as replication
  policies: Epidemic, Spray and Wait, PROPHET, MaxProp (plus the
  direct-delivery baseline).
* :mod:`repro.messaging` — the DTN messaging application: messages are
  replicated items; filters deliver them.
* :mod:`repro.emulation` — deterministic trace-driven discrete-event
  emulation with bandwidth/storage constraints and metrics.
* :mod:`repro.traces` — DieselNet-like mobility and Enron-like e-mail
  workload generators, plus parsers for real data.
* :mod:`repro.experiments` — harnesses regenerating every table and figure
  of the paper's evaluation, plus the process-parallel sweep engine and
  its content-addressed run-artifact store.
* :mod:`repro.analysis` — statistics helpers.

The *supported* surface is :mod:`repro.api` — a curated, stability-policed
facade (see ``docs/api.md``). Everything else is importable but internal.
"""

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "api",
    "dtn",
    "emulation",
    "experiments",
    "messaging",
    "replication",
    "traces",
]
