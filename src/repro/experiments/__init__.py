"""Experiment harnesses reproducing the paper's evaluation (Section VI)."""

from .config import DEFAULT_SCALE, ExperimentConfig, configured_scale
from .figures import (
    CDF_DAYS,
    CDF_HOURS,
    FIGURE_5_K_VALUES,
    RESULT_CACHE,
    SharedScenarioInputs,
    figure_5,
    figure_6,
    figure_7,
    figure_8,
    figure_9,
    figure_10,
    multiaddress_sweep,
    policy_sweep,
)
from .report import (
    render_figure_8,
    render_series_table,
    render_summary_rows,
    render_table_1,
    render_table_2,
)
from .runner import ExperimentResult, run_experiment, run_scenario
from .scenario import Scenario, build_scenario, expected_user_meetings
from .tables import TABLE_I, TABLE_II, TABLE_II_PAPER_VALUES, PolicySummaryRow

__all__ = [
    "CDF_DAYS",
    "CDF_HOURS",
    "DEFAULT_SCALE",
    "ExperimentConfig",
    "ExperimentResult",
    "FIGURE_5_K_VALUES",
    "PolicySummaryRow",
    "RESULT_CACHE",
    "Scenario",
    "SharedScenarioInputs",
    "TABLE_I",
    "TABLE_II",
    "TABLE_II_PAPER_VALUES",
    "build_scenario",
    "configured_scale",
    "expected_user_meetings",
    "figure_10",
    "figure_5",
    "figure_6",
    "figure_7",
    "figure_8",
    "figure_9",
    "multiaddress_sweep",
    "policy_sweep",
    "render_figure_8",
    "render_series_table",
    "render_summary_rows",
    "render_table_1",
    "render_table_2",
    "run_experiment",
    "run_scenario",
]
