"""Experiment harnesses reproducing the paper's evaluation (Section VI).

Beyond the per-figure harnesses this package hosts the sweep machinery:
:mod:`~repro.experiments.sweep` (process-parallel grid execution),
:mod:`~repro.experiments.store` (content-addressed run artifacts +
manifests), and :mod:`~repro.experiments.bench_sweep` (the serial-vs-
parallel equivalence/speedup benchmark behind ``repro bench sweep``).
The supported subset of these names is re-exported by :mod:`repro.api`.
"""

from .config import DEFAULT_SCALE, ExperimentConfig, configured_scale
from .figures import (
    CDF_DAYS,
    CDF_HOURS,
    FIGURE_5_K_VALUES,
    RESULT_CACHE,
    SharedScenarioInputs,
    figure_5,
    figure_6,
    figure_7,
    figure_8,
    figure_9,
    figure_10,
    multiaddress_sweep,
    policy_sweep,
)
from .report import (
    render_figure_8,
    render_measured_table,
    render_series_table,
    render_store_summary,
    render_summary_rows,
    render_table_1,
    render_table_2,
)
from .runner import ExperimentResult, run_experiment, run_scenario
from .scenario import Scenario, build_scenario, expected_user_meetings
from .store import (
    RunStore,
    StoreError,
    config_digest,
    run_id_for,
    sweep_id_for,
)
from .sweep import (
    RunOutcome,
    SweepEvent,
    SweepReport,
    expand_grid,
    filter_by_label,
    run_sweep,
    seeded,
)
from .tables import (
    TABLE_I,
    TABLE_II,
    TABLE_II_PAPER_VALUES,
    PolicySummaryRow,
    measured_policy_table,
)

__all__ = [
    "CDF_DAYS",
    "CDF_HOURS",
    "DEFAULT_SCALE",
    "ExperimentConfig",
    "ExperimentResult",
    "FIGURE_5_K_VALUES",
    "PolicySummaryRow",
    "RESULT_CACHE",
    "RunOutcome",
    "RunStore",
    "Scenario",
    "SharedScenarioInputs",
    "StoreError",
    "SweepEvent",
    "SweepReport",
    "TABLE_I",
    "TABLE_II",
    "TABLE_II_PAPER_VALUES",
    "build_scenario",
    "config_digest",
    "configured_scale",
    "expand_grid",
    "expected_user_meetings",
    "figure_10",
    "figure_5",
    "figure_6",
    "figure_7",
    "figure_8",
    "figure_9",
    "filter_by_label",
    "measured_policy_table",
    "multiaddress_sweep",
    "policy_sweep",
    "render_figure_8",
    "render_measured_table",
    "render_series_table",
    "render_store_summary",
    "render_summary_rows",
    "render_table_1",
    "render_table_2",
    "run_experiment",
    "run_id_for",
    "run_scenario",
    "run_sweep",
    "seeded",
    "sweep_id_for",
]
