"""End-to-end benchmark of the encounter pipeline's integrity cache.

``repro bench encounter`` replays a seeded flooding schedule through the
*transport* path of :func:`~repro.replication.sync.perform_encounter` —
the path that stamps and verifies content checksums on every entry —
twice: once with the content-addressed checksum cache (the production
default) and once with ``use_cache=False``, which recomputes every
checksum exactly as the pipeline did before the cache existed.

The quantity measured is honest work, not cache bookkeeping: the
integrity module counts every actual serialise-and-hash computation
(:func:`~repro.replication.integrity.checksum_computations`), so the
reduction factor is "hashes the cache avoided", independent of how the
avoidance was achieved.

Equivalence is proven in-run, not assumed:

* **batch-level** — the channel folds every delivered entry (id, version,
  declared checksum, filter flag, priority) into a running SHA-256; the
  two runs must produce the same digest, i.e. byte-identical traffic;
* **final-state** — final per-replica knowledge and the delivery counters
  (transmissions, receipts, redundant receipts) must match.

The channel delivers in order and intact — corruption handling is the
adversarial suites' job — but deterministically *duplicates* every Nth
entry (no RNG, so both runs see the identical schedule), which exercises
the receive path's redundancy handling and the verified-triple cache.

The scenario reuses the ``repro bench sync`` generator: same flooding
shape, same seeds, so the two artifacts describe the same workload.
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import pathlib
import time
from dataclasses import asdict, dataclass, field
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.replication import integrity
from repro.replication.session import EncounterSession, SessionConfig
from repro.replication.sync import BatchEntry

from .bench import (
    SyncBenchConfig,
    _build_population,
    _draw_schedule,
    _knowledge_digest,
    _Schedule,
)


@dataclass(frozen=True)
class EncounterBenchConfig:
    """Shape of the synthetic workload (defaults: the recorded artifact)."""

    nodes: int = 50
    items: int = 5000
    encounters: int = 10000
    seed: int = 7
    max_items_per_encounter: Optional[int] = None
    #: Deterministically deliver every Nth entry twice (0 disables);
    #: exercises redundant receipts without consuming any randomness.
    duplicate_every: int = 7

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ValueError("bench needs at least 2 nodes")
        if self.items < 1 or self.encounters < 1:
            raise ValueError("bench needs at least 1 item and 1 encounter")
        if self.duplicate_every < 0:
            raise ValueError("duplicate_every must be >= 0")

    def _schedule_config(self) -> SyncBenchConfig:
        return SyncBenchConfig(
            nodes=self.nodes,
            items=self.items,
            encounters=self.encounters,
            seed=self.seed,
            max_items_per_encounter=self.max_items_per_encounter,
            verify_every=0,
        )


@dataclass
class _Delivery:
    """Duck-typed delivery outcome (see ``perform_sync``'s transport use)."""

    delivered: List[Any]
    truncated: bool = False
    lost: int = 0


class _DigestingChannel:
    """An intact, in-order channel that fingerprints everything it carries.

    Stamped entries pass through unchanged (so checksums are exercised
    end to end); every ``duplicate_every``-th entry is delivered twice in
    a row. The running SHA-256 covers exactly what the receiver sees —
    including each entry's declared checksum — so equal digests between
    two runs mean byte-identical batches.
    """

    def __init__(self, duplicate_every: int) -> None:
        self._duplicate_every = duplicate_every
        self._count = 0
        self._digest = hashlib.sha256()

    def deliver(self, batch: Sequence[Any]) -> _Delivery:
        delivered: List[Any] = []
        for entry in batch:
            delivered.append(entry)
            self._count += 1
            if self._duplicate_every and self._count % self._duplicate_every == 0:
                delivered.append(entry)
        for entry in delivered:
            self._fold(entry)
        return _Delivery(delivered=delivered)

    def _fold(self, entry: BatchEntry) -> None:
        record = (
            str(entry.item.item_id),
            str(entry.item.version),
            entry.checksum,
            entry.matched_filter,
            int(entry.priority.class_),
            entry.priority.cost,
        )
        self._digest.update(repr(record).encode("utf-8"))

    @property
    def entries_carried(self) -> int:
        return self._count

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


@dataclass
class _RunResult:
    checksum_computations: int = 0
    transmissions: int = 0
    received_total: int = 0
    redundant_received: int = 0
    delivered_entries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    wall_clock_s: float = 0.0
    batch_digest: str = ""
    knowledge_digest: Tuple = field(default_factory=tuple)

    def as_report(self, config: EncounterBenchConfig) -> dict:
        return {
            "checksum_computations": self.checksum_computations,
            "checksum_computations_per_encounter": (
                self.checksum_computations / config.encounters
            ),
            "transmissions": self.transmissions,
            "received_total": self.received_total,
            "redundant_received": self.redundant_received,
            "checksum_cache_hits": self.cache_hits,
            "checksum_cache_misses": self.cache_misses,
            "checksum_cache_invalidations": self.cache_invalidations,
            "wall_clock_s": round(self.wall_clock_s, 4),
            "wall_clock_s_per_1k_encounters": round(
                self.wall_clock_s * 1000.0 / config.encounters, 4
            ),
        }


def _run(
    config: EncounterBenchConfig, schedule: _Schedule, use_cache: bool
) -> _RunResult:
    endpoints = _build_population(config._schedule_config())
    channel = _DigestingChannel(config.duplicate_every)
    factory = lambda source_id, target_id: channel  # noqa: E731
    result = _RunResult()
    computations_before = integrity.checksum_computations()
    started = time.perf_counter()
    for index, (a, b) in enumerate(schedule.pairs):
        for author, destination in schedule.authored_before.get(index, ()):
            endpoints[author].replica.create_item(
                payload=f"m{index}",
                attributes={
                    "destination": f"bench-{destination:03d}",
                    "source": f"bench-{author:03d}",
                },
            )
        stats_pair = EncounterSession(
            first=endpoints[a],
            second=endpoints[b],
            now=float(index),
            config=SessionConfig(
                max_items=config.max_items_per_encounter,
                use_cache=use_cache,
            ),
            transport_factory=factory,
        ).run()
        for stats in stats_pair:
            result.transmissions += stats.sent_total
            result.received_total += stats.received_total
            result.redundant_received += stats.redundant_received
            result.cache_hits += stats.checksum_cache_hits
            result.cache_misses += stats.checksum_cache_misses
            result.cache_invalidations += stats.checksum_cache_invalidations
    result.wall_clock_s = time.perf_counter() - started
    result.checksum_computations = (
        integrity.checksum_computations() - computations_before
    )
    result.delivered_entries = channel.entries_carried
    result.batch_digest = channel.hexdigest()
    result.knowledge_digest = _knowledge_digest(endpoints)
    return result


def run_encounter_bench(
    config: EncounterBenchConfig = EncounterBenchConfig(),
    profile: Optional[Union[str, pathlib.Path]] = None,
) -> dict:
    """Run both modes over the same schedule and build the report dict.

    ``profile``, when given, re-runs the *cached* leg once more under
    :mod:`cProfile` and dumps the stats there — a separate pass, so the
    reported wall-clock numbers stay unperturbed by profiler overhead.
    """
    schedule = _draw_schedule(config._schedule_config())
    cached = _run(config, schedule, use_cache=True)
    uncached = _run(config, schedule, use_cache=False)
    reduction = (
        uncached.checksum_computations / cached.checksum_computations
        if cached.checksum_computations
        else float("inf")
    )
    speedup = (
        uncached.wall_clock_s / cached.wall_clock_s
        if cached.wall_clock_s
        else float("inf")
    )
    if profile is not None:
        target = pathlib.Path(profile)
        target.parent.mkdir(parents=True, exist_ok=True)
        profiler = cProfile.Profile()
        profiler.enable()
        _run(config, schedule, use_cache=True)
        profiler.disable()
        profiler.dump_stats(str(target))
    return {
        "benchmark": "encounter",
        "config": asdict(config),
        "cached": cached.as_report(config),
        "uncached": uncached.as_report(config),
        "reduction_factor_checksum_computations": round(reduction, 2),
        "speedup_wall_clock": round(speedup, 2),
        "equivalence": {
            "identical_batches": cached.batch_digest == uncached.batch_digest,
            "batch_digest": cached.batch_digest,
            "entries_carried_match": (
                cached.delivered_entries == uncached.delivered_entries
            ),
            "transmissions_match": (
                cached.transmissions == uncached.transmissions
            ),
            "received_match": (
                cached.received_total == uncached.received_total
                and cached.redundant_received == uncached.redundant_received
            ),
            "final_knowledge_match": (
                cached.knowledge_digest == uncached.knowledge_digest
            ),
        },
    }


def encounter_bench_equivalent(report: dict) -> bool:
    """True when every equivalence check in a report passed."""
    equivalence = report["equivalence"]
    return all(
        equivalence[key]
        for key in (
            "identical_batches",
            "entries_carried_match",
            "transmissions_match",
            "received_match",
            "final_knowledge_match",
        )
    )


def write_encounter_bench(
    report: dict, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Persist a :func:`run_encounter_bench` report as ``BENCH_encounter.json``."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target
