"""Metadata benchmark: knowledge bytes on the wire, digest vs exact.

``repro bench metadata`` measures the tentpole claim of the knowledge-
digest mode (``docs/protocol.md`` §8) from two angles and records both in
``BENCH_metadata.json``:

* **Emulation workloads** (reduced fig 5–10 shapes): each workload runs
  three times over identical scenarios — digest off, digest negotiated,
  and digest forced — and reports metadata bytes per delivered message
  next to the FP re-send counters. The paper's version vectors are
  already compact in these scenarios, so the *negotiated* run falls back
  to exact knowledge whenever the vector wins; the *forced* run
  deliberately pays the digest everywhere, which is what exercises the
  false-positive suppression/re-send machinery end to end.
* **Fragmented-knowledge series**: the regime the digest exists for. A
  target that knows every other counter of an author's range cannot
  prefix-compress its vector — the exact encoding lists each counter —
  while the Bloom digest stays at ~1.44·log2(1/p) bits per version. The
  series sweeps the version count and reports the wire-size reduction;
  the CLI gate (``--min-reduction``) applies to the largest point.

Reduction is an artifact, not a claim: the JSON carries the exact-mode
byte counts each digest number was measured against.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Union

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import build_scenario
from repro.replication.codec import knowledge_wire_size
from repro.replication.digest import DigestConfig, KnowledgeDigest
from repro.replication.ids import ReplicaId, Version
from repro.replication.versions import VersionVector

#: Salt for the fragmented series — fixed so the artifact is reproducible.
_SERIES_SALT = 0x9E3779B97F4A7C15


@dataclass(frozen=True)
class MetadataBenchConfig:
    """Shape of the benchmark (defaults: the recorded artifact)."""

    scale: float = 0.3
    fp_rate: float = 0.05
    #: Largest point of the fragmented-knowledge series; the series itself
    #: sweeps {items/10, items/5, items/2, items} known versions.
    items: int = 5000
    #: FP budget for the fragmented series (coarser than the emulation
    #: default: with tens of thousands of versions per digest, 0.1 is the
    #: sweet spot between wire bytes and one-contact suppressions).
    series_fp_rate: float = 0.1
    seed: int = 42

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        if self.items < 10:
            raise ValueError("bench needs at least 10 items")


def _workloads(config: MetadataBenchConfig) -> Dict[str, ExperimentConfig]:
    """Reduced stand-ins for the paper's figure scenarios."""
    base = ExperimentConfig(
        scale=config.scale,
        trace_seed=config.seed,
        digest_fp_rate=config.fp_rate,
    )
    flood = base.with_policy("epidemic")
    return {
        "fig5_random_filters": base.with_filters("random", 2),
        "fig6_selected_filters": base.with_filters("selected", 2),
        "fig7_epidemic": flood,
        "fig8_direct": base,
        "fig9_bandwidth": flood.with_constraints(bandwidth_limit=5),
        "fig10_storage": flood.with_constraints(storage_limit=30),
    }


def _run_mode(
    config: ExperimentConfig, digest: Optional[DigestConfig]
) -> Dict[str, float]:
    """One emulation run; ``digest`` overrides the scenario's negotiated
    setting (None = digest off, force=True = digest on every request)."""
    scenario = build_scenario(config)
    scenario.emulator.digest = digest
    metrics = run_scenario(scenario).metrics
    summary = metrics.summary()
    return {
        "delivered": summary["delivered"],
        "delivery_ratio": round(summary["delivery_ratio"], 4),
        "transmissions": summary["transmissions"],
        "metadata_bytes": summary["metadata_bytes"],
        "metadata_bytes_per_delivered": round(
            summary["metadata_bytes_per_delivered"], 2
        ),
        "digest_syncs": summary["digest_syncs"],
        "digest_suppressed": summary["digest_suppressed"],
        "fp_resends": summary["fp_resends"],
    }


def _fragmented_vector(author: ReplicaId, versions: int) -> VersionVector:
    """A vector that knows every *other* counter in the author's range.

    The worst case for the exact encoding: prefix compression captures
    only counter 1, and every further version is an extra the codec must
    list individually.
    """
    vector = VersionVector.empty()
    for index in range(versions):
        vector.add(Version(author, 2 * index + 1))
    return vector


def _series_point(versions: int, fp_rate: float) -> Dict[str, float]:
    author = ReplicaId("bench-author")
    vector = _fragmented_vector(author, versions)
    digest = KnowledgeDigest.build(vector, fp_rate, _SERIES_SALT)
    exact = knowledge_wire_size(vector)
    compact = digest.wire_size()
    return {
        "versions": versions,
        "exact_bytes": exact,
        "digest_bytes": compact,
        "reduction_factor": round(exact / compact, 2),
    }


def run_metadata_bench(
    config: MetadataBenchConfig = MetadataBenchConfig(),
) -> dict:
    """Run every workload in all three modes and build the report dict."""
    workloads = {}
    for name, experiment in _workloads(config).items():
        negotiated = DigestConfig(fp_rate=config.fp_rate)
        forced = DigestConfig(fp_rate=config.fp_rate, force=True)
        workloads[name] = {
            "exact": _run_mode(experiment, None),
            "digest_negotiated": _run_mode(experiment, negotiated),
            "digest_forced": _run_mode(experiment, forced),
        }

    counts = sorted(
        {
            max(1, config.items // 10),
            max(1, config.items // 5),
            max(1, config.items // 2),
            config.items,
        }
    )
    series = [_series_point(count, config.series_fp_rate) for count in counts]
    return {
        "benchmark": "metadata",
        "config": asdict(config),
        "workloads": workloads,
        "fragmented_knowledge": {
            "fp_rate": config.series_fp_rate,
            "points": series,
        },
        "reduction_factor_at_largest_point": series[-1]["reduction_factor"],
    }


def write_metadata_bench(
    report: dict, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Persist a :func:`run_metadata_bench` report as ``BENCH_metadata.json``."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target
