"""Experiment execution: config in, measured result out."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.emulation.encounters import EncounterTrace
from repro.emulation.metrics import HOURS, MetricsCollector
from repro.traces.enron import EmailWorkloadModel

from .config import ExperimentConfig
from .scenario import Scenario, build_scenario


@dataclass
class ExperimentResult:
    """The outcome of one emulation run."""

    config: ExperimentConfig
    metrics: MetricsCollector
    trace_summary: Dict[str, float]

    @property
    def label(self) -> str:
        return self.config.label()

    def delay_cdf_hours(
        self, hour_points: Sequence[float]
    ) -> List[Tuple[float, float]]:
        """(hours, fraction delivered) pairs — the Figure 7/9/10 curves."""
        return [
            (hours, fraction)
            for (seconds, fraction), hours in zip(
                self.metrics.delay_cdf([h * HOURS for h in hour_points]),
                hour_points,
            )
        ]

    def summary(self) -> Dict[str, float]:
        return self.metrics.summary()

    # -- serialization (the repro.api round-trip contract) ------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; ``from_dict(to_dict())`` reconstructs exactly.

        This is the payload the sweep engine ships from worker processes
        to the parent and the body of every run artifact in the store.
        """
        return {
            "config": self.config.to_dict(),
            "metrics": self.metrics.to_dict(),
            "trace_summary": dict(self.trace_summary),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        return cls(
            config=ExperimentConfig.from_dict(data["config"]),
            metrics=MetricsCollector.from_dict(data["metrics"]),
            trace_summary=dict(data["trace_summary"]),
        )


def run_experiment(
    config: ExperimentConfig,
    trace: Optional[EncounterTrace] = None,
    model: Optional[EmailWorkloadModel] = None,
    extra_days: int = 0,
) -> ExperimentResult:
    """Build the scenario for ``config``, run it, and collect metrics.

    ``config.engine`` selects the emulation core: ``"object"`` (default)
    builds the full per-node object scenario; ``"columnar"`` runs the
    flat-array core (:mod:`repro.emulation.columnar`), which raises
    :class:`~repro.emulation.columnar.ColumnarUnsupportedError` for
    configurations outside its verified subset.
    """
    if config.engine == "columnar":
        from repro.emulation.columnar import run_columnar

        metrics, trace_summary = run_columnar(
            config, trace=trace, model=model, extra_days=extra_days
        )
        return ExperimentResult(
            config=config, metrics=metrics, trace_summary=trace_summary
        )
    scenario = build_scenario(config, trace=trace, model=model)
    return run_scenario(scenario, extra_days=extra_days)


def run_scenario(scenario: Scenario, extra_days: int = 0) -> ExperimentResult:
    """Run a pre-built scenario (lets callers inspect or tweak it first)."""
    metrics = scenario.emulator.run(extra_days=extra_days)
    return ExperimentResult(
        config=scenario.config,
        metrics=metrics,
        trace_summary=scenario.trace.summary(),
    )
