"""Micro-benchmark of the sync hot path: version index vs. full scan.

``repro bench sync`` replays a synthetic encounter schedule twice over the
same seeded scenario — once with the version-indexed batch builder (the
default production path) and once with the original full-store scan
(``use_index=False``) — and records both costs in ``BENCH_sync.json``.
The speedup is an artifact, not a claim: the JSON carries the baseline
numbers it was measured against, plus the result of an in-run equivalence
check proving the two paths selected identical batches.

The scenario is deliberately substrate-shaped rather than trace-shaped:
``nodes`` replicas under an Epidemic policy, ``items`` messages authored
at random hosts and interleaved with ``encounters`` random pairwise
encounters. Every cost the index attacks shows up here — repeat meetings
between converged peers (index skips the whole store), partially caught-up
peers (index walks only the missing tail), and repeated peer-filter
evaluations (served by the match cache).
"""

from __future__ import annotations

import json
import pathlib
import random
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.dtn.epidemic import EpidemicPolicy
from repro.replication.filters import MultiAddressFilter
from repro.replication.ids import ReplicaId
from repro.replication.replica import Replica
from repro.replication.session import EncounterSession, SessionConfig
from repro.replication.sync import SyncEndpoint


@dataclass(frozen=True)
class SyncBenchConfig:
    """Shape of the synthetic workload (defaults: the recorded artifact)."""

    nodes: int = 50
    items: int = 5000
    encounters: int = 10000
    seed: int = 7
    max_items_per_encounter: Optional[int] = None
    #: Check index/scan enumeration equivalence every Nth encounter during
    #: the indexed run (0 disables the check).
    verify_every: int = 50

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ValueError("bench needs at least 2 nodes")
        if self.items < 1 or self.encounters < 1:
            raise ValueError("bench needs at least 1 item and 1 encounter")


@dataclass
class _Schedule:
    """The pre-drawn event tape both runs replay identically."""

    #: encounter index → items authored just before it: (author, destination).
    authored_before: Dict[int, List[Tuple[int, int]]]
    #: the encounters themselves, as (first node, second node) indexes.
    pairs: List[Tuple[int, int]]


def _draw_schedule(config: SyncBenchConfig) -> _Schedule:
    rng = random.Random(config.seed)
    pairs = []
    for _ in range(config.encounters):
        a = rng.randrange(config.nodes)
        b = rng.randrange(config.nodes - 1)
        if b >= a:
            b += 1
        pairs.append((a, b))
    # Author the items across the first 80% of the schedule so the tail of
    # the run exercises converged, nothing-new encounters too.
    authored_before: Dict[int, List[Tuple[int, int]]] = {}
    horizon = max(1, int(config.encounters * 0.8))
    for _ in range(config.items):
        slot = rng.randrange(horizon)
        author = rng.randrange(config.nodes)
        destination = rng.randrange(config.nodes - 1)
        if destination >= author:
            destination += 1
        authored_before.setdefault(slot, []).append((author, destination))
    return _Schedule(authored_before=authored_before, pairs=pairs)


def _build_population(config: SyncBenchConfig) -> List[SyncEndpoint]:
    endpoints = []
    for index in range(config.nodes):
        name = f"bench-{index:03d}"
        replica = Replica(ReplicaId(name), MultiAddressFilter(own_address=name))
        policy = EpidemicPolicy().bind(replica)
        endpoints.append(SyncEndpoint(replica, policy))
    return endpoints


@dataclass
class _RunResult:
    items_scanned: int = 0
    store_items_seen: int = 0
    transmissions: int = 0
    index_skipped: int = 0
    filter_cache_hits: int = 0
    filter_cache_misses: int = 0
    filter_cache_invalidations: int = 0
    wall_clock_s: float = 0.0
    equivalence_checks: int = 0
    knowledge_digest: Tuple = field(default_factory=tuple)

    def as_report(self, config: SyncBenchConfig) -> dict:
        """The JSON block for one run; ``items_scanned`` is index
        enumerations for the indexed run, store visits for the scan run."""
        return {
            "items_scanned": self.items_scanned,
            "items_scanned_per_encounter": self.items_scanned / config.encounters,
            "store_items_seen": self.store_items_seen,
            "transmissions": self.transmissions,
            "index_skipped": self.index_skipped,
            "filter_cache_hits": self.filter_cache_hits,
            "filter_cache_misses": self.filter_cache_misses,
            "filter_cache_invalidations": self.filter_cache_invalidations,
            "wall_clock_s": round(self.wall_clock_s, 4),
            "wall_clock_s_per_1k_encounters": round(
                self.wall_clock_s * 1000.0 / config.encounters, 4
            ),
        }


def _knowledge_digest(endpoints: List[SyncEndpoint]) -> Tuple:
    """A comparable fingerprint of every replica's final knowledge."""
    digest = []
    for endpoint in endpoints:
        knowledge = endpoint.replica.knowledge
        digest.append(
            tuple(
                (replica.name, knowledge.known_counter_prefix(replica),
                 tuple(sorted(knowledge.extra_counters(replica))))
                for replica in knowledge.replicas()
            )
        )
    return tuple(digest)


def _run(
    config: SyncBenchConfig, schedule: _Schedule, use_index: bool
) -> _RunResult:
    endpoints = _build_population(config)
    result = _RunResult()
    equivalence_checks = 0
    started = time.perf_counter()
    for index, (a, b) in enumerate(schedule.pairs):
        for author, destination in schedule.authored_before.get(index, ()):
            endpoints[author].replica.create_item(
                payload=f"m{index}",
                attributes={
                    "destination": f"bench-{destination:03d}",
                    "source": f"bench-{author:03d}",
                },
            )
        first, second = endpoints[a], endpoints[b]
        if use_index and config.verify_every and index % config.verify_every == 0:
            # Pure-query equivalence probe: the index enumeration must equal
            # the reference scan, same items in the same order, both ways.
            for source, target in ((first, second), (second, first)):
                knowledge = target.replica.knowledge
                indexed = source.replica.items_unknown_to(knowledge)
                scanned = source.replica.items_unknown_to_scan(knowledge)
                if indexed != scanned:
                    raise AssertionError(
                        f"index/scan divergence at encounter {index}: "
                        f"{indexed!r} != {scanned!r}"
                    )
                equivalence_checks += 1
        stats_pair = EncounterSession(
            first=first,
            second=second,
            now=float(index),
            config=SessionConfig(
                max_items=config.max_items_per_encounter,
                use_index=use_index,
            ),
        ).run()
        for stats in stats_pair:
            # The full scan visits every stored item; the index visits only
            # the unknown candidates it enumerated.
            result.items_scanned += stats.candidates if use_index else stats.store_size
            result.store_items_seen += stats.store_size
            result.transmissions += stats.sent_total
            result.index_skipped += stats.index_skipped
            result.filter_cache_hits += stats.filter_cache_hits
            result.filter_cache_misses += stats.filter_cache_misses
            result.filter_cache_invalidations += stats.filter_cache_invalidations
    result.wall_clock_s = time.perf_counter() - started
    result.equivalence_checks = equivalence_checks
    result.knowledge_digest = _knowledge_digest(endpoints)
    return result


def run_sync_bench(config: SyncBenchConfig = SyncBenchConfig()) -> dict:
    """Run both modes over the same schedule and build the report dict."""
    schedule = _draw_schedule(config)
    indexed = _run(config, schedule, use_index=True)
    baseline = _run(config, schedule, use_index=False)
    reduction = (
        baseline.items_scanned / indexed.items_scanned
        if indexed.items_scanned
        else float("inf")
    )
    speedup = (
        baseline.wall_clock_s / indexed.wall_clock_s
        if indexed.wall_clock_s
        else float("inf")
    )
    return {
        "benchmark": "sync",
        "config": asdict(config),
        "indexed": indexed.as_report(config),
        "baseline_full_scan": baseline.as_report(config),
        "reduction_factor_items_scanned": round(reduction, 2),
        "speedup_wall_clock": round(speedup, 2),
        "equivalence": {
            "sampled_enumerations_checked": indexed.equivalence_checks,
            "identical_batches": True,  # a divergence raises inside the run
            "transmissions_match": indexed.transmissions == baseline.transmissions,
            "final_knowledge_match": (
                indexed.knowledge_digest == baseline.knowledge_digest
            ),
        },
    }


def write_sync_bench(
    report: dict, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Persist a :func:`run_sync_bench` report as ``BENCH_sync.json``."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target
