"""Text rendering of figure/table data in paper-style rows."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from .tables import TABLE_I, TABLE_II


def render_series_table(
    title: str,
    x_label: str,
    series: Mapping[str, Sequence[Tuple[float, float]]],
    value_format: str = "{:8.2f}",
) -> str:
    """Render {series name: [(x, y), ...]} as an aligned text table."""
    lines = [title]
    names = list(series)
    xs: List[float] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    xs.sort()
    header = f"{x_label:>12} | " + " | ".join(f"{name:>12}" for name in names)
    lines.append(header)
    lines.append("-" * len(header))
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    for x in xs:
        cells = []
        for name in names:
            y = lookup[name].get(x)
            cells.append(
                f"{'—':>12}" if y is None else f"{value_format.format(y):>12}"
            )
        x_text = f"{x:g}"
        lines.append(f"{x_text:>12} | " + " | ".join(cells))
    return "\n".join(lines)


def render_figure_8(copies: Mapping[str, Mapping[str, float]]) -> str:
    """Render the Figure 8 bar data as rows."""
    lines = [
        "Figure 8: average copies of each message stored in the network",
        f"{'policy':>12} | {'at delivery':>12} | {'at end':>12}",
        "-" * 44,
    ]
    for policy, values in copies.items():
        lines.append(
            f"{policy:>12} | {values['at_delivery']:>12.2f} | "
            f"{values['at_end']:>12.2f}"
        )
    return "\n".join(lines)


def render_cdf_plot(
    title: str,
    x_label: str,
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    y_max: float = 100.0,
) -> str:
    """An ASCII rendition of a CDF family, one row per (series, x) point.

    Each row draws a bar proportional to the y value, giving a quick
    terminal read of the figures without a plotting stack.
    """
    lines = [title]
    for name, points in series.items():
        lines.append(f"  {name}")
        for x, y in points:
            filled = int(round((min(max(y, 0.0), y_max) / y_max) * width))
            bar = "█" * filled + "·" * (width - filled)
            lines.append(f"    {x_label}={x:>6g} |{bar}| {y:6.1f}")
    return "\n".join(lines)


def render_table_1() -> str:
    """Table I, as printed in the paper."""
    lines = ["Table I: summary of policies for DTN routing protocols", ""]
    for row in TABLE_I:
        lines.append(f"{row.protocol}:")
        lines.append(f"  routing state         : {row.routing_state}")
        lines.append(f"  added to sync request : {row.added_to_sync_request or '—'}")
        lines.append(f"  source forwarding     : {row.source_forwarding_policy}")
    return "\n".join(lines)


def render_table_2() -> str:
    """Table II, as printed in the paper."""
    lines = ["Table II: DTN protocol parameters", ""]
    for policy, parameters in TABLE_II.items():
        rendered = ", ".join(f"{k}={v}" for k, v in parameters.items())
        lines.append(f"  {policy:>10}: {rendered}")
    return "\n".join(lines)


def render_summary_rows(summaries: Mapping[str, Mapping[str, float]]) -> str:
    """Side-by-side headline metrics for a set of runs."""
    keys = [
        "delivery_ratio",
        "mean_delay_hours",
        "max_delay_days",
        "within_12h",
        "transmissions",
        "mean_copies_at_delivery",
        "mean_copies_at_end",
    ]
    lines = [f"{'metric':>24} | " + " | ".join(f"{name:>11}" for name in summaries)]
    lines.append("-" * len(lines[0]))
    for key in keys:
        cells = []
        for summary in summaries.values():
            value = summary.get(key, float("nan"))
            cells.append(f"{value:>11.2f}")
        lines.append(f"{key:>24} | " + " | ".join(cells))
    return "\n".join(lines)
