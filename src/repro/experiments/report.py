"""Text rendering of figure/table data in paper-style rows.

Renderers take either structured data from the figure harnesses or a
:class:`~repro.experiments.store.RunStore` — reports over a completed
sweep are built from the JSON artifacts on disk, not from live metric
objects, so they can be regenerated at any time without re-running a
single emulation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .tables import TABLE_I, TABLE_II, measured_policy_table

#: Version of the JSON summary documents emitted by ``repro run --json``,
#: ``repro serve`` (status replies), and ``repro swarm``. Bump when a
#: consumer-visible key changes meaning or disappears; adding keys is
#: backward-compatible and needs no bump.
SUMMARY_SCHEMA_VERSION = 1


def run_summary_document(
    *,
    kind: str,
    label: str,
    scale: float,
    summary: Mapping[str, Any],
    fault_seed: Optional[int] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The one shared, versioned summary document every entry point emits.

    ``kind`` says which entry point produced it (``"run"``, ``"serve"``,
    ``"swarm"``); the core keys (``schema``, ``kind``, ``label``,
    ``scale``, ``fault_seed``, ``summary``) are stable and identical
    across all of them, so a consumer parsing ``document["summary"]``
    works on any of the three. ``extra`` merges additional top-level
    keys but cannot shadow the core ones.
    """
    document: Dict[str, Any] = {
        "schema": SUMMARY_SCHEMA_VERSION,
        "kind": kind,
        "label": label,
        "scale": scale,
        "fault_seed": fault_seed,
        "summary": dict(summary),
    }
    if extra:
        for key, value in extra.items():
            if key in document:
                raise ValueError(
                    f"extra key {key!r} would shadow a core summary key"
                )
            document[key] = value
    return document


def render_series_table(
    title: str,
    x_label: str,
    series: Mapping[str, Sequence[Tuple[float, float]]],
    value_format: str = "{:8.2f}",
) -> str:
    """Render {series name: [(x, y), ...]} as an aligned text table."""
    lines = [title]
    names = list(series)
    xs: List[float] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    xs.sort()
    header = f"{x_label:>12} | " + " | ".join(f"{name:>12}" for name in names)
    lines.append(header)
    lines.append("-" * len(header))
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    for x in xs:
        cells = []
        for name in names:
            y = lookup[name].get(x)
            cells.append(
                f"{'—':>12}" if y is None else f"{value_format.format(y):>12}"
            )
        x_text = f"{x:g}"
        lines.append(f"{x_text:>12} | " + " | ".join(cells))
    return "\n".join(lines)


def render_figure_8(copies: Mapping[str, Mapping[str, float]]) -> str:
    """Render the Figure 8 bar data as rows."""
    lines = [
        "Figure 8: average copies of each message stored in the network",
        f"{'policy':>12} | {'at delivery':>12} | {'at end':>12}",
        "-" * 44,
    ]
    for policy, values in copies.items():
        lines.append(
            f"{policy:>12} | {values['at_delivery']:>12.2f} | "
            f"{values['at_end']:>12.2f}"
        )
    return "\n".join(lines)


def render_cdf_plot(
    title: str,
    x_label: str,
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    y_max: float = 100.0,
) -> str:
    """An ASCII rendition of a CDF family, one row per (series, x) point.

    Each row draws a bar proportional to the y value, giving a quick
    terminal read of the figures without a plotting stack.
    """
    lines = [title]
    for name, points in series.items():
        lines.append(f"  {name}")
        for x, y in points:
            filled = int(round((min(max(y, 0.0), y_max) / y_max) * width))
            bar = "█" * filled + "·" * (width - filled)
            lines.append(f"    {x_label}={x:>6g} |{bar}| {y:6.1f}")
    return "\n".join(lines)


def render_table_1() -> str:
    """Table I, as printed in the paper."""
    lines = ["Table I: summary of policies for DTN routing protocols", ""]
    for row in TABLE_I:
        lines.append(f"{row.protocol}:")
        lines.append(f"  routing state         : {row.routing_state}")
        lines.append(f"  added to sync request : {row.added_to_sync_request or '—'}")
        lines.append(f"  source forwarding     : {row.source_forwarding_policy}")
    return "\n".join(lines)


def render_table_2() -> str:
    """Table II, as printed in the paper."""
    lines = ["Table II: DTN protocol parameters", ""]
    for policy, parameters in TABLE_II.items():
        rendered = ", ".join(f"{k}={v}" for k, v in parameters.items())
        lines.append(f"  {policy:>10}: {rendered}")
    return "\n".join(lines)


def render_store_summary(store, label_filter: Optional[str] = None) -> str:
    """Headline metrics for every run artifact in a store, side by side.

    Reads the content-addressed artifacts (see ``docs/sweeps.md``), so a
    finished — or interrupted — sweep can be summarized without holding
    any live experiment state.
    """
    summaries: Dict[str, Mapping[str, float]] = {}
    for run_id in store.list_run_ids():
        artifact = store.load_artifact(run_id)
        label = artifact["label"]
        if label_filter and label_filter.lower() not in label.lower():
            continue
        name = label if label not in summaries else run_id
        summaries[name] = store.load_result(run_id).summary()
    if not summaries:
        return "(no run artifacts)"
    return render_summary_rows(summaries)


def render_measured_table(store) -> str:
    """Per-policy measured means over every stored replicate.

    The artifact-store counterpart of Table II: what the runs *measured*,
    aggregated per policy across seeds and constraint settings.
    """
    rows = measured_policy_table(store)
    if not rows:
        return "(no run artifacts)"
    header = (
        f"{'policy':>12} | {'runs':>5} | {'delivery':>9} | "
        f"{'mean delay (h)':>14} | {'transmissions':>13}"
    )
    lines = [
        "Measured per-policy means (over stored run artifacts)",
        header,
        "-" * len(header),
    ]
    for policy, row in rows.items():
        lines.append(
            f"{policy:>12} | {row['runs']:>5.0f} | "
            f"{row['delivery_ratio']:>9.2f} | "
            f"{row['mean_delay_hours']:>14.2f} | "
            f"{row['transmissions']:>13.0f}"
        )
    return "\n".join(lines)


def render_summary_rows(summaries: Mapping[str, Mapping[str, float]]) -> str:
    """Side-by-side headline metrics for a set of runs."""
    keys = [
        "delivery_ratio",
        "mean_delay_hours",
        "max_delay_days",
        "within_12h",
        "transmissions",
        "mean_copies_at_delivery",
        "mean_copies_at_end",
    ]
    lines = [f"{'metric':>24} | " + " | ".join(f"{name:>11}" for name in summaries)]
    lines.append("-" * len(lines[0]))
    for key in keys:
        cells = []
        for summary in summaries.values():
            value = summary.get(key, float("nan"))
            cells.append(f"{value:>11.2f}")
        lines.append(f"{key:>24} | " + " | ".join(cells))
    return "\n".join(lines)
