"""Benchmark of the sweep engine: parallel workers vs the serial runner.

``repro bench sweep`` executes the same config grid twice into two
throwaway stores — once serially (``workers=1``, the old one-run-per-call
behaviour) and once through the multiprocessing pool — then:

* asserts every per-run ``result`` block (config, metrics, trace summary)
  is **byte-identical** between the two, proving process parallelism never
  perturbs the seeded emulations;
* records both wall clocks and the speedup into ``BENCH_sweep.json``.

The artifact carries ``cpu_count`` so the speedup is interpretable: on a
single-core container the pool cannot beat the serial runner no matter how
many workers it gets, and the honest number to expect there is ~1.0x (or
slightly below, for the spawn overhead). On an N-core machine the expected
speedup approaches ``min(workers, N)`` for grids whose runs dominate the
pool start-up cost.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import List, Optional, Union

from .config import ExperimentConfig
from .store import RunStore, canonical_json
from .sweep import SweepReport, expand_grid, run_sweep

#: Default grid axes: four policies × two seeds = 8 runs.
DEFAULT_POLICIES = ("epidemic", "spray", "prophet", "maxprop")
DEFAULT_SEEDS = (0, 1)


@dataclass(frozen=True)
class SweepBenchConfig:
    """Shape of the benchmark grid."""

    scale: float = 0.5
    workers: int = 4
    policies: tuple = DEFAULT_POLICIES
    seeds: tuple = DEFAULT_SEEDS

    def __post_init__(self) -> None:
        if self.workers < 2:
            raise ValueError("bench sweep needs workers >= 2")
        if len(self.policies) * len(self.seeds) < 2:
            raise ValueError("bench sweep needs a grid of at least 2 runs")

    def grid(self) -> List[ExperimentConfig]:
        base = ExperimentConfig(scale=self.scale)
        return expand_grid(
            base, policies=list(self.policies), seeds=list(self.seeds)
        )


def _per_run_rows(report: SweepReport) -> List[dict]:
    return [
        {
            "run_id": outcome.run_id,
            "label": outcome.label,
            "wall_clock_s": round(outcome.wall_clock_s, 4),
        }
        for outcome in report.outcomes
    ]


def run_sweep_bench(config: SweepBenchConfig = SweepBenchConfig()) -> dict:
    """Run the grid serially then in parallel and build the report dict."""
    grid = config.grid()
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as scratch:
        serial_store = RunStore(pathlib.Path(scratch) / "serial")
        parallel_store = RunStore(pathlib.Path(scratch) / "parallel")
        serial = run_sweep(grid, store=serial_store, workers=1, resume=False)
        parallel = run_sweep(
            grid, store=parallel_store, workers=config.workers, resume=False
        )
        mismatched: List[str] = []
        for run_id in serial_store.list_run_ids():
            serial_result = serial_store.load_artifact(run_id)["result"]
            parallel_result = parallel_store.load_artifact(run_id)["result"]
            if canonical_json(serial_result) != canonical_json(parallel_result):
                mismatched.append(run_id)
    speedup = (
        serial.wall_clock_s / parallel.wall_clock_s
        if parallel.wall_clock_s
        else float("inf")
    )
    return {
        "benchmark": "sweep",
        "config": {
            "scale": config.scale,
            "workers": config.workers,
            "policies": list(config.policies),
            "seeds": list(config.seeds),
            "runs": len(grid),
        },
        "cpu_count": os.cpu_count(),
        "serial": {
            "wall_clock_s": round(serial.wall_clock_s, 4),
            "completed": serial.completed,
            "failed": serial.failed,
            "per_run": _per_run_rows(serial),
        },
        "parallel": {
            "wall_clock_s": round(parallel.wall_clock_s, 4),
            "completed": parallel.completed,
            "failed": parallel.failed,
            "per_run": _per_run_rows(parallel),
        },
        "speedup_wall_clock": round(speedup, 2),
        "equivalence": {
            "runs_compared": len(grid),
            "byte_identical_results": not mismatched,
            "mismatched_run_ids": mismatched,
        },
    }


def write_sweep_bench(
    report: dict, path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Persist a :func:`run_sweep_bench` report as ``BENCH_sweep.json``."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target
