"""Scale benchmark: the columnar core vs the object engine, at city scale.

``repro bench scale`` records two things into ``BENCH_scale.json``:

* **Matched comparison** — the object engine and the columnar core run
  the *same* ~50-bus metro scenario; the artifact reports wall clock
  per encounter for both, the speedup, and (gate on by default) whether
  the two runs were equivalent under the columnar contract: identical
  message records and metric totals except the three counters the flat
  core deliberately leaves at zero (``filter_cache_*``,
  ``checksum_cache_*``, ``metadata_bytes``).
* **Scale curve** — a nodes × encounters ladder of columnar-only runs
  over metro-DieselNet traces (:class:`~repro.traces.dieselnet.
  MetroConfig`), each executed in a fresh worker process so its peak
  RSS is the run's own footprint, not the bench harness's history.
  Rows report trace/build/run wall clock, µs per encounter, and peak
  RSS from :meth:`MetricsCollector.record_memory`.  Points with
  ``shards > 1`` exercise :func:`~repro.emulation.columnar.
  run_columnar_sharded` (their trace uses ``interchange_rate=0`` so the
  route components are partitionable).

The ``full`` preset's top point is ≥50k buses / ≥1M encounters — the
city-scale target from the roadmap.  ``smoke`` stays under 2k buses for
CI; ``tiny`` exists for the test suite.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.emulation.columnar import (
    build_world,
    columnar_unsupported_reason,
    comparable_metrics,
    run_columnar_sharded,
)
from repro.traces.dieselnet import MetroConfig, generate_metro_trace

from .config import ExperimentConfig
from .runner import run_experiment

__all__ = [
    "PRESETS",
    "ScaleBenchConfig",
    "ScalePoint",
    "run_scale_bench",
    "write_scale_bench",
]


@dataclass(frozen=True)
class ScalePoint:
    """One rung of the scale ladder (a metro trace + workload shape)."""

    n_buses: int
    n_routes: int
    days: int
    messages: int = 500
    users: int = 200
    shards: int = 1
    interchange_rate: float = 4.0


#: Named ladders. ``smoke`` must stay ≤2k buses (the CI scale-smoke job);
#: ``full``'s top point carries the ≥50k-node / ≥1M-encounter claim.
PRESETS: Dict[str, Tuple[ScalePoint, ...]] = {
    "tiny": (ScalePoint(60, 3, 2, messages=40, users=30),),
    "smoke": (
        ScalePoint(500, 10, 3, messages=200, users=100),
        ScalePoint(2000, 40, 3, messages=300, users=150),
    ),
    "full": (
        ScalePoint(1000, 20, 6),
        ScalePoint(5000, 100, 6),
        ScalePoint(20000, 400, 6, shards=4, interchange_rate=0.0),
        ScalePoint(50000, 1000, 6, messages=2000, users=1000),
    ),
}


@dataclass(frozen=True)
class ScaleBenchConfig:
    """Shape of the benchmark (defaults: the recorded artifact)."""

    preset: str = "full"
    policy: str = "epidemic"
    seed: int = 42
    min_speedup: float = 5.0
    equivalence: bool = True
    #: Drop curve points above this many buses (CI trims the ladder).
    max_nodes: Optional[int] = None
    #: Run curve points in-process instead of one worker process per
    #: point.  Faster for tests; per-point RSS then reflects the whole
    #: bench process and is reported as such.
    in_process: bool = False
    comparison_buses: int = 50
    comparison_days: int = 10

    def __post_init__(self) -> None:
        if self.preset not in PRESETS:
            raise ValueError(
                f"unknown preset {self.preset!r}; available: "
                f"{', '.join(sorted(PRESETS))}"
            )
        if self.min_speedup <= 0:
            raise ValueError("min_speedup must be > 0")
        try:
            reason = columnar_unsupported_reason(
                ExperimentConfig(policy=self.policy, engine="columnar")
            )
        except KeyError as exc:
            raise ValueError(str(exc)) from exc
        if reason is not None:
            raise ValueError(reason)

    def points(self) -> List[ScalePoint]:
        ladder = list(PRESETS[self.preset])
        if self.max_nodes is not None:
            ladder = [p for p in ladder if p.n_buses <= self.max_nodes]
        return ladder


def _experiment_config(
    policy: str, seed: int, users: int, messages: int, engine: str
) -> ExperimentConfig:
    return ExperimentConfig(
        policy=policy,
        engine=engine,
        n_users=users,
        target_messages=messages,
        trace_seed=seed,
    )


def _run_comparison(config: ScaleBenchConfig) -> Dict[str, Any]:
    """Object vs columnar on one matched mid-size metro scenario."""
    trace = generate_metro_trace(
        MetroConfig(
            seed=config.seed,
            n_buses=config.comparison_buses,
            n_routes=max(2, config.comparison_buses // 12),
            days=config.comparison_days,
        )
    )
    users = max(6, config.comparison_buses)
    messages = max(10, config.comparison_buses * 3)

    object_config = _experiment_config(
        config.policy, config.seed, users, messages, "object"
    )
    started = time.perf_counter()
    object_result = run_experiment(object_config, trace=trace)
    object_wall = time.perf_counter() - started

    columnar_config = _experiment_config(
        config.policy, config.seed, users, messages, "columnar"
    )
    started = time.perf_counter()
    columnar_result = run_experiment(columnar_config, trace=trace)
    columnar_wall = time.perf_counter() - started

    encounters = len(trace)
    equivalent: Optional[bool] = None
    mismatched: List[str] = []
    if config.equivalence:
        object_dict = comparable_metrics(object_result.metrics)
        columnar_dict = comparable_metrics(columnar_result.metrics)
        equivalent = object_dict == columnar_dict
        if not equivalent:
            mismatched = sorted(
                key
                for key in object_dict
                if object_dict[key] != columnar_dict.get(key)
            )
    speedup = object_wall / columnar_wall if columnar_wall else float("inf")
    return {
        "n_buses": config.comparison_buses,
        "days": config.comparison_days,
        "encounters": encounters,
        "policy": config.policy,
        "object": {
            "wall_clock_s": round(object_wall, 4),
            "us_per_encounter": round(1e6 * object_wall / encounters, 2),
        },
        "columnar": {
            "wall_clock_s": round(columnar_wall, 4),
            "us_per_encounter": round(1e6 * columnar_wall / encounters, 2),
        },
        "speedup_wall_clock": round(speedup, 2),
        "equivalence_checked": config.equivalence,
        "equivalent": equivalent,
        "mismatched_keys": mismatched,
    }


def _curve_point(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Measure one ladder rung (runs inside a worker process)."""
    point = ScalePoint(**payload["point"])
    seed = payload["seed"]
    policy = payload["policy"]

    started = time.perf_counter()
    trace = generate_metro_trace(
        MetroConfig(
            seed=seed,
            n_buses=point.n_buses,
            n_routes=point.n_routes,
            days=point.days,
            interchange_rate=point.interchange_rate,
        )
    )
    trace_wall = time.perf_counter() - started
    encounters = len(trace)

    config = _experiment_config(
        policy, seed, point.users, point.messages, "columnar"
    )
    if point.shards > 1:
        # The sharded runner builds its own inputs; its wall clock is
        # therefore build + run (flagged in the row).
        started = time.perf_counter()
        metrics, _summary = run_columnar_sharded(
            config, trace=trace, shards=point.shards
        )
        run_wall = time.perf_counter() - started
        build_wall = 0.0
        run_includes_build = True
    else:
        started = time.perf_counter()
        world, _trace = build_world(config, trace=trace)
        build_wall = time.perf_counter() - started
        started = time.perf_counter()
        metrics = world.run()
        run_wall = time.perf_counter() - started
        run_includes_build = False

    metrics.record_memory()
    summary = metrics.summary()
    return {
        **asdict(point),
        "encounters": encounters,
        "injected": int(summary["injected"]),
        "delivered": int(summary["delivered"]),
        "delivery_ratio": round(summary["delivery_ratio"], 4),
        "trace_wall_clock_s": round(trace_wall, 4),
        "build_wall_clock_s": round(build_wall, 4),
        "run_wall_clock_s": round(run_wall, 4),
        "run_includes_build": run_includes_build,
        "us_per_encounter": round(1e6 * run_wall / max(1, encounters), 3),
        "peak_rss_mb": round(summary["peak_rss_bytes"] / (1024 * 1024), 1),
        "tracemalloc_peak_mb": round(
            summary["tracemalloc_peak_bytes"] / (1024 * 1024), 1
        ),
    }


def run_scale_bench(
    config: ScaleBenchConfig = ScaleBenchConfig(),
) -> Dict[str, Any]:
    """Run the matched comparison plus the scale curve; build the report."""
    comparison = _run_comparison(config)
    curve: List[Dict[str, Any]] = []
    points = config.points()
    payloads = [
        {"point": asdict(point), "seed": config.seed, "policy": config.policy}
        for point in points
    ]
    if config.in_process:
        curve = [_curve_point(payload) for payload in payloads]
    else:
        # One worker process per rung: each row's peak RSS is that run's
        # own footprint rather than the bench harness's high-water mark.
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import get_context

        context = get_context("spawn")
        for payload in payloads:
            with ProcessPoolExecutor(
                max_workers=1, mp_context=context
            ) as pool:
                curve.append(pool.submit(_curve_point, payload).result())
    return {
        "benchmark": "scale",
        "preset": config.preset,
        "policy": config.policy,
        "seed": config.seed,
        "cpu_count": os.cpu_count(),
        "per_point_processes": not config.in_process,
        "comparison": comparison,
        "min_speedup": config.min_speedup,
        "speedup_ok": comparison["speedup_wall_clock"] >= config.min_speedup,
        "curve": curve,
        "max_nodes": max((row["n_buses"] for row in curve), default=0),
        "max_encounters": max((row["encounters"] for row in curve), default=0),
    }


def write_scale_bench(
    report: Dict[str, Any], path: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Persist a :func:`run_scale_bench` report as ``BENCH_scale.json``."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target
