"""Content-addressed artifact store for experiment runs.

Every completed run is persisted as one JSON file under a store root
(``results/runs/`` by convention). Runs are addressed by the digest of
their *config*: the config fully determines the run (everything is
seeded), so the digest names the result before it exists. That is what
makes sweeps resumable — a run whose artifact is already on disk and
validates does not need to be executed again — and what lets the figure
and report harnesses read results back instead of holding live
:class:`~repro.emulation.metrics.MetricsCollector` objects.

Layout::

    results/runs/
        epidemic-3f9c2ab41d07e6b2.json     one artifact per run
        spray-91be77a30c44d1f5.json
        manifest-5a3e1c9b0d12.json         one manifest per sweep

An artifact is an envelope around ``ExperimentResult.to_dict()``::

    {
      "schema": 1,
      "run_id": "epidemic-3f9c2ab41d07e6b2",
      "config_digest": "3f9c2ab41d07e6b2",
      "label": "epidemic",
      "wall_clock_s": 1.73,
      "result": {"config": ..., "metrics": ..., "trace_summary": ...}
    }

Validation recomputes the digest from the embedded config, so a tampered
or half-written artifact (writes are atomic: temp file + ``os.replace``)
is detected rather than silently reused.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .config import ExperimentConfig
from .runner import ExperimentResult

#: Version of the artifact envelope; bump on incompatible layout changes.
RUN_SCHEMA_VERSION = 1

#: Conventional store root, relative to the repository/working directory.
DEFAULT_STORE_ROOT = pathlib.Path("results") / "runs"

_DIGEST_LENGTH = 16
_SWEEP_DIGEST_LENGTH = 12
_SAFE_POLICY = re.compile(r"[^a-z0-9_-]+")


class StoreError(RuntimeError):
    """An artifact is missing, unreadable, or fails content validation."""


def canonical_json(data: Any) -> str:
    """Deterministic JSON used for digests and artifact bodies."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def config_digest(config: ExperimentConfig) -> str:
    """Hex digest of the canonical serialized config (the content address)."""
    payload = canonical_json(config.to_dict()).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:_DIGEST_LENGTH]


def run_id_for(config: ExperimentConfig) -> str:
    """``<policy>-<digest>`` — readable prefix, content-addressed suffix."""
    policy = _SAFE_POLICY.sub("-", config.policy.lower()) or "run"
    return f"{policy}-{config_digest(config)}"


class RunStore:
    """One directory of run artifacts plus sweep manifests.

    The store is append-mostly and safe to share between sweeps: artifacts
    are keyed purely by config content, so two sweeps whose grids overlap
    share the overlapping runs.
    """

    def __init__(self, root: Union[str, pathlib.Path] = DEFAULT_STORE_ROOT):
        self.root = pathlib.Path(root)

    # -- paths ----------------------------------------------------------------------

    def path_for(self, run_id: str) -> pathlib.Path:
        return self.root / f"{run_id}.json"

    def failure_path_for(self, run_id: str) -> pathlib.Path:
        """Sidecar recording that a run *failed* (timed out, crashed, or
        raised) — distinct from a run that simply never executed."""
        return self.root / f"{run_id}.failed.json"

    def manifest_path(self, sweep_id: str) -> pathlib.Path:
        return self.root / f"manifest-{sweep_id}.json"

    # -- queries --------------------------------------------------------------------

    def has(self, config: ExperimentConfig) -> bool:
        """True when a *valid* artifact for ``config`` is on disk."""
        run_id = run_id_for(config)
        if not self.path_for(run_id).exists():
            return False
        try:
            self.load_artifact(run_id)
        except StoreError:
            return False
        return True

    def list_run_ids(self) -> List[str]:
        """Run ids of every artifact file in the store, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.root.glob("*.json")
            if not path.name.startswith("manifest-")
            and not path.name.endswith(".failed.json")
        )

    # -- reading --------------------------------------------------------------------

    def load_artifact(self, run_id: str) -> Dict[str, Any]:
        """Read and validate one artifact envelope.

        Raises :class:`StoreError` if the file is missing, is not valid
        JSON, declares an unknown schema, or if the digest recomputed from
        the embedded config does not match the run id (content-address
        check).
        """
        path = self.path_for(run_id)
        try:
            raw = path.read_text()
        except OSError as exc:
            raise StoreError(f"missing run artifact {path}: {exc}") from exc
        try:
            artifact = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt run artifact {path}: {exc}") from exc
        if artifact.get("schema") != RUN_SCHEMA_VERSION:
            raise StoreError(
                f"run artifact {path} has schema "
                f"{artifact.get('schema')!r}, expected {RUN_SCHEMA_VERSION}"
            )
        try:
            config = ExperimentConfig.from_dict(artifact["result"]["config"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(
                f"run artifact {path} has an unreadable config: {exc}"
            ) from exc
        expected = run_id_for(config)
        if expected != run_id or artifact.get("run_id") != run_id:
            raise StoreError(
                f"run artifact {path} fails content validation: config "
                f"digests to {expected!r}, file claims {artifact.get('run_id')!r}"
            )
        return artifact

    def load_result(
        self, key: Union[str, ExperimentConfig]
    ) -> ExperimentResult:
        """Load the :class:`ExperimentResult` for a run id or config."""
        run_id = key if isinstance(key, str) else run_id_for(key)
        artifact = self.load_artifact(run_id)
        return ExperimentResult.from_dict(artifact["result"])

    # -- writing --------------------------------------------------------------------

    def save_result(
        self, result: ExperimentResult, wall_clock_s: Optional[float] = None
    ) -> pathlib.Path:
        """Persist one run atomically; returns the artifact path."""
        run_id = run_id_for(result.config)
        artifact = {
            "schema": RUN_SCHEMA_VERSION,
            "run_id": run_id,
            "config_digest": config_digest(result.config),
            "label": result.config.label(),
            "wall_clock_s": wall_clock_s,
            "result": result.to_dict(),
        }
        path = self._write_atomic(self.path_for(run_id), artifact)
        # A successful run supersedes any stale failure record.
        self.clear_failure(run_id)
        return path

    # -- failure sidecars -----------------------------------------------------------

    def record_failure(
        self,
        run_id: str,
        label: str,
        error: str,
        wall_clock_s: Optional[float] = None,
    ) -> pathlib.Path:
        """Persist a failure sidecar for a run with no artifact.

        A timed-out or crashed worker leaves no result to store; the
        sidecar records *that it failed and why*, so a later
        :meth:`validate_manifest` distinguishes "failed" from "never ran",
        while :meth:`has` still reports the run as absent (resume retries
        it)."""
        payload = {
            "schema": RUN_SCHEMA_VERSION,
            "run_id": run_id,
            "label": label,
            "status": "failed",
            "error": error,
            "wall_clock_s": wall_clock_s,
        }
        return self._write_atomic(self.failure_path_for(run_id), payload)

    def load_failure(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The failure sidecar for ``run_id``, or None if there is none."""
        path = self.failure_path_for(run_id)
        try:
            return json.loads(path.read_text())
        except OSError:
            return None
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt failure sidecar {path}: {exc}") from exc

    def clear_failure(self, run_id: str) -> None:
        try:
            self.failure_path_for(run_id).unlink()
        except OSError:
            pass

    def _write_atomic(
        self, path: pathlib.Path, payload: Dict[str, Any]
    ) -> pathlib.Path:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(canonical_json(payload) + "\n")
        os.replace(tmp, path)
        return path

    # -- manifests ------------------------------------------------------------------

    def write_manifest(
        self, configs: Sequence[ExperimentConfig], workers: int
    ) -> pathlib.Path:
        """Record a sweep's full grid before any run executes.

        The manifest is itself content-addressed by the sorted run ids, so
        re-launching the same grid (the resume path) overwrites the same
        manifest file instead of accumulating duplicates.
        """
        runs = sorted(
            (
                {
                    "run_id": run_id_for(config),
                    "config_digest": config_digest(config),
                    "label": config.label(),
                }
                for config in configs
            ),
            key=lambda entry: entry["run_id"],
        )
        manifest = {
            "schema": RUN_SCHEMA_VERSION,
            "sweep_id": sweep_id_for(entry["run_id"] for entry in runs),
            "workers": workers,
            "runs": runs,
        }
        return self._write_atomic(
            self.manifest_path(manifest["sweep_id"]), manifest
        )

    def load_manifest(self, sweep_id: str) -> Dict[str, Any]:
        path = self.manifest_path(sweep_id)
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"unreadable sweep manifest {path}: {exc}") from exc

    def validate_manifest(self, sweep_id: str) -> Dict[str, str]:
        """Per-run status of a sweep: ``run_id → ok|missing|failed|invalid``.

        ``failed`` means no artifact exists but a failure sidecar does —
        the run executed and died (timeout, crash, exception) rather than
        never having been attempted.
        """
        manifest = self.load_manifest(sweep_id)
        statuses: Dict[str, str] = {}
        for entry in manifest["runs"]:
            run_id = entry["run_id"]
            if not self.path_for(run_id).exists():
                statuses[run_id] = (
                    "failed"
                    if self.failure_path_for(run_id).exists()
                    else "missing"
                )
                continue
            try:
                artifact = self.load_artifact(run_id)
            except StoreError:
                statuses[run_id] = "invalid"
                continue
            matches = artifact["config_digest"] == entry["config_digest"]
            statuses[run_id] = "ok" if matches else "invalid"
        return statuses


def sweep_id_for(run_ids: Iterable[str]) -> str:
    """Digest naming a sweep: the hash of its sorted run ids."""
    payload = canonical_json(sorted(run_ids)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:_SWEEP_DIGEST_LENGTH]
