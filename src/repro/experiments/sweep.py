"""Process-parallel experiment sweeps over config grids.

The paper's evaluation is a grid — {policy × bandwidth cap × storage cap ×
seed} over the same DieselNet×Enron scenario — and every cell is an
independent, fully seeded emulation. This module turns that independence
into throughput:

* :func:`expand_grid` expands a base config and axis values into the list
  of :class:`~repro.experiments.config.ExperimentConfig` cells;
* :func:`run_sweep` fans the cells out to ``spawn`` worker processes,
  one process per run, under a parent-side watchdog (``timeout_s``)
  that kills overdue workers and records hard-crashed ones. Workers
  never receive live replicas or emulators — only ``config.to_dict()``
  payloads — and rebuild the scenario on their side, so the engine is
  safe under every multiprocessing start method and never pays pickling
  costs proportional to simulation state;
* each completed run is written (atomically, by the parent, which is the
  store's single writer) into a content-addressed
  :class:`~repro.experiments.store.RunStore` together with a sweep
  manifest, so an interrupted sweep resumes by skipping runs whose
  artifacts already exist and validate;
* per-run lifecycle and sync-counter telemetry stream back to the parent
  as runs start and finish — a progress callback sees every event.

Because every run is deterministic from its config, a parallel sweep's
artifacts are byte-identical to a serial sweep's (``repro bench sweep``
asserts exactly that, and records the wall-clock speedup).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from queue import Empty
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .config import ExperimentConfig
from .runner import ExperimentResult, run_experiment
from .store import RunStore, run_id_for, sweep_id_for

#: Summary counters streamed back to the parent as each run finishes.
TELEMETRY_KEYS: Tuple[str, ...] = (
    "injected",
    "delivered",
    "delivery_ratio",
    "syncs",
    "encounters",
    "transmissions",
    "quarantined_entries",
    "rejected_knowledge",
    "protocol_violations",
)

#: Progress callback: receives one :class:`SweepEvent` per lifecycle step.
ProgressCallback = Callable[["SweepEvent"], None]


@dataclass(frozen=True)
class SweepEvent:
    """One lifecycle event of one run inside a sweep.

    ``kind`` is ``"reused"`` (a valid artifact already existed),
    ``"started"``, ``"finished"``, or ``"failed"``. ``completed`` counts
    runs that have reached a terminal state so far, out of ``total``.
    Events for parallel runs may be delivered from a helper thread;
    callbacks should be cheap and thread-safe (printing is fine).
    """

    kind: str
    run_id: str
    label: str
    completed: int
    total: int
    telemetry: Optional[Dict[str, float]] = None
    error: Optional[str] = None


@dataclass(frozen=True)
class RunOutcome:
    """Terminal state of one grid cell after a sweep."""

    run_id: str
    label: str
    status: str  # "completed" | "reused" | "failed"
    wall_clock_s: float
    summary: Optional[Dict[str, float]] = None
    error: Optional[str] = None


@dataclass
class SweepReport:
    """What :func:`run_sweep` returns: the sweep identity plus outcomes."""

    sweep_id: str
    store_root: str
    workers: int
    wall_clock_s: float
    outcomes: List[RunOutcome] = field(default_factory=list)

    def _count(self, status: str) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == status)

    @property
    def completed(self) -> int:
        return self._count("completed")

    @property
    def reused(self) -> int:
        return self._count("reused")

    @property
    def failed(self) -> int:
        return self._count("failed")


def seeded(config: ExperimentConfig, seed: int) -> ExperimentConfig:
    """The ``seed``-th replicate of ``config``.

    Offsets every determinism knob by ``seed`` so replicates draw
    independent traces, assignments, workloads, encounter orders, and
    fault schedules while staying fully reproducible. ``seed=0`` is
    ``config`` itself.
    """
    if seed == 0:
        return config
    return replace(
        config,
        trace_seed=config.trace_seed + seed,
        assignment_seed=config.assignment_seed + seed,
        workload_seed=config.workload_seed + seed,
        encounter_order_seed=config.encounter_order_seed + seed,
        email_seed=config.email_seed + seed,
        fault_seed=config.fault_seed + seed,
    )


def expand_grid(
    base: ExperimentConfig,
    policies: Sequence[str] = (),
    bandwidth_limits: Sequence[Optional[int]] = (),
    storage_limits: Sequence[Optional[int]] = (),
    seeds: Sequence[int] = (),
) -> List[ExperimentConfig]:
    """Expand axis values into the full config grid.

    Empty axes keep the base config's value, so
    ``expand_grid(base, policies=["epidemic", "spray"], seeds=[0, 1])`` is
    a 2×2 grid. Duplicate cells (identical configs) are dropped — they
    would content-address to the same artifact anyway.
    """
    cells: List[ExperimentConfig] = []
    seen = set()
    for policy in policies or (base.policy,):
        for bandwidth in bandwidth_limits or (base.bandwidth_limit,):
            for storage in storage_limits or (base.storage_limit,):
                for seed in seeds or (0,):
                    config = seeded(
                        replace(
                            base,
                            policy=policy,
                            bandwidth_limit=bandwidth,
                            storage_limit=storage,
                        ),
                        seed,
                    )
                    run_id = run_id_for(config)
                    if run_id in seen:
                        continue
                    seen.add(run_id)
                    cells.append(config)
    return cells


def filter_by_label(
    configs: Iterable[ExperimentConfig], needle: str
) -> List[ExperimentConfig]:
    """Keep configs whose label contains ``needle`` (case-insensitive)."""
    lowered = needle.lower()
    return [
        config for config in configs if lowered in config.label().lower()
    ]


# -- worker side ----------------------------------------------------------------------
#
# Everything below the parent hands to workers must be importable at
# module top level: ``spawn`` workers re-import this module and receive
# only picklable payloads (config dicts), never live simulation state.


def _execute(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell from its serialized config; never raises.

    Returns ``{"run_id", "wall_clock_s", "result"}`` on success or
    ``{"run_id", "wall_clock_s", "error"}`` with a formatted traceback on
    failure, so one broken cell fails its artifact, not the sweep.
    """
    run_id = payload["run_id"]
    started = time.perf_counter()
    try:
        config = ExperimentConfig.from_dict(payload["config"])
        result = run_experiment(config, extra_days=payload["extra_days"])
        summary = result.summary()
        telemetry = {key: summary[key] for key in TELEMETRY_KEYS}
        return {
            "run_id": run_id,
            "wall_clock_s": time.perf_counter() - started,
            "result": result.to_dict(),
            "telemetry": telemetry,
        }
    except Exception:
        return {
            "run_id": run_id,
            "wall_clock_s": time.perf_counter() - started,
            "error": traceback.format_exc(),
        }


def _worker_entry(payload: Dict[str, Any], queue: Any) -> None:
    """Process target: run one cell and ship its outcome back on the queue."""
    queue.put(_execute(payload))


# -- parent side ----------------------------------------------------------------------


def run_sweep(
    configs: Sequence[ExperimentConfig],
    store: Optional[RunStore] = None,
    workers: int = 1,
    resume: bool = True,
    progress: Optional[ProgressCallback] = None,
    extra_days: int = 0,
    timeout_s: Optional[float] = None,
) -> SweepReport:
    """Run every config, parallel across processes, into the store.

    * ``workers <= 1`` runs serially in-process (identical artifacts —
      runs are deterministic from their configs).
    * ``resume=True`` (default) skips configs whose artifacts already
      exist in the store and validate; ``False`` re-runs and overwrites.
    * ``progress`` receives a :class:`SweepEvent` per lifecycle step.
    * ``timeout_s`` arms the watchdog: each run gets that much wall
      clock, after which its worker process is killed and the run is
      recorded as a ``failed`` outcome with a failure sidecar in the
      store (a later resume of the same grid retries it). Setting a
      timeout forces the process path even for ``workers=1`` — a hung
      run can only be killed from outside its process.

    The sweep manifest is written before any run starts, so a killed
    sweep leaves behind both the plan and the completed artifacts —
    everything resume needs.
    """
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError("timeout_s must be positive")
    store = store if store is not None else RunStore()
    run_ids = [run_id_for(config) for config in configs]
    if len(set(run_ids)) != len(run_ids):
        raise ValueError("sweep grid contains duplicate configs")
    report = SweepReport(
        sweep_id=sweep_id_for(run_ids),
        store_root=str(store.root),
        workers=workers,
        wall_clock_s=0.0,
    )
    started = time.perf_counter()
    store.write_manifest(configs, workers=workers)

    total = len(configs)
    terminal = 0

    def emit(kind: str, run_id: str, label: str, **extra: Any) -> None:
        if progress is not None:
            progress(
                SweepEvent(
                    kind=kind,
                    run_id=run_id,
                    label=label,
                    completed=terminal,
                    total=total,
                    **extra,
                )
            )

    pending: List[Dict[str, Any]] = []
    for config, run_id in zip(configs, run_ids):
        if resume and store.has(config):
            terminal += 1
            summary = store.load_result(run_id).summary()
            report.outcomes.append(
                RunOutcome(
                    run_id=run_id,
                    label=config.label(),
                    status="reused",
                    wall_clock_s=0.0,
                    summary=summary,
                )
            )
            emit("reused", run_id, config.label())
        else:
            pending.append(
                {
                    "run_id": run_id,
                    "label": config.label(),
                    "config": config.to_dict(),
                    "extra_days": extra_days,
                }
            )

    def settle(payload: Dict[str, Any], outcome_raw: Dict[str, Any]) -> None:
        """Parent-side completion: write the artifact, record the outcome."""
        nonlocal terminal
        terminal += 1
        run_id = payload["run_id"]
        label = payload["label"]
        if "error" in outcome_raw:
            store.record_failure(
                run_id,
                label,
                outcome_raw["error"],
                wall_clock_s=outcome_raw["wall_clock_s"],
            )
            report.outcomes.append(
                RunOutcome(
                    run_id=run_id,
                    label=label,
                    status="failed",
                    wall_clock_s=outcome_raw["wall_clock_s"],
                    error=outcome_raw["error"],
                )
            )
            emit("failed", run_id, label, error=outcome_raw["error"])
            return
        result = ExperimentResult.from_dict(outcome_raw["result"])
        store.save_result(result, wall_clock_s=outcome_raw["wall_clock_s"])
        report.outcomes.append(
            RunOutcome(
                run_id=run_id,
                label=label,
                status="completed",
                wall_clock_s=outcome_raw["wall_clock_s"],
                summary=result.summary(),
            )
        )
        emit(
            "finished", run_id, label, telemetry=outcome_raw["telemetry"]
        )

    if timeout_s is None and (len(pending) <= 1 or workers <= 1):
        for payload in pending:
            emit("started", payload["run_id"], payload["label"])
            settle(payload, _execute(payload))
    elif pending:
        _run_parallel(
            pending,
            max(1, min(workers, len(pending))),
            emit,
            settle,
            timeout_s=timeout_s,
        )

    # Outcomes in grid order, matching ``configs`` — parallel completion
    # order is nondeterministic and should not leak into the report.
    order = {run_id: index for index, run_id in enumerate(run_ids)}
    report.outcomes.sort(key=lambda outcome: order[outcome.run_id])
    report.wall_clock_s = time.perf_counter() - started
    return report


#: Grace period after a worker process dies before declaring it crashed —
#: its result may still be in flight through the queue's feeder pipe.
_CRASH_GRACE_S = 1.0

#: Parent poll interval: how often the watchdog wakes to check deadlines
#: and dead workers while no results are arriving.
_POLL_INTERVAL_S = 0.05


def _run_parallel(
    pending: List[Dict[str, Any]],
    workers: int,
    emit: Callable[..., None],
    settle: Callable[[Dict[str, Any], Dict[str, Any]], None],
    timeout_s: Optional[float] = None,
    worker: Callable[[Dict[str, Any], Any], None] = _worker_entry,
) -> None:
    """Fan ``pending`` out process-per-run with a watchdog loop.

    ``spawn`` (not ``fork``) keeps workers honest: they prove the runs
    are reconstructible from serialized configs alone, and it sidesteps
    fork-safety hazards entirely. One process per run (rather than a
    long-lived pool) is what makes the watchdog sound — killing a hung or
    overdue run is ``terminate()`` on its own process, with no shared
    worker state to poison.

    A worker that exceeds ``timeout_s`` is terminated and settled as a
    failure; a worker that dies without reporting (hard crash, OOM kill)
    is detected by the liveness check and settled the same way after a
    short grace period for in-flight queue data. ``worker`` is the
    process target, parameterised for tests that need a misbehaving one.
    """
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    waiting = deque(pending)
    live: Dict[str, Dict[str, Any]] = {}

    def reap(run_id: str, outcome_raw: Dict[str, Any]) -> None:
        # A late result can race a watchdog verdict; first settle wins.
        entry = live.pop(run_id, None)
        if entry is None:
            return
        entry["proc"].join(timeout=5.0)
        settle(entry["payload"], outcome_raw)

    try:
        while waiting or live:
            while waiting and len(live) < workers:
                payload = waiting.popleft()
                proc = ctx.Process(target=worker, args=(payload, queue))
                proc.daemon = True
                proc.start()
                now = time.monotonic()
                live[payload["run_id"]] = {
                    "proc": proc,
                    "payload": payload,
                    "deadline": (
                        now + timeout_s if timeout_s is not None else None
                    ),
                    "started": now,
                    "dead_since": None,
                }
                emit("started", payload["run_id"], payload["label"])
            try:
                outcome_raw = queue.get(timeout=_POLL_INTERVAL_S)
            except Empty:
                outcome_raw = None
            if outcome_raw is not None:
                reap(outcome_raw["run_id"], outcome_raw)
                continue
            now = time.monotonic()
            for run_id in list(live):
                entry = live[run_id]
                proc = entry["proc"]
                if entry["deadline"] is not None and now >= entry["deadline"]:
                    proc.terminate()
                    reap(
                        run_id,
                        {
                            "run_id": run_id,
                            "wall_clock_s": now - entry["started"],
                            "error": (
                                f"timed out after {timeout_s}s "
                                "(watchdog killed the worker)"
                            ),
                        },
                    )
                elif not proc.is_alive():
                    if entry["dead_since"] is None:
                        entry["dead_since"] = now
                    elif now - entry["dead_since"] >= _CRASH_GRACE_S:
                        reap(
                            run_id,
                            {
                                "run_id": run_id,
                                "wall_clock_s": now - entry["started"],
                                "error": (
                                    "worker crashed with exit code "
                                    f"{proc.exitcode} before reporting "
                                    "a result"
                                ),
                            },
                        )
    finally:
        for entry in live.values():
            entry["proc"].terminate()
        queue.close()
        queue.cancel_join_thread()
