"""Canonical scenario construction: config → ready-to-run emulator.

Builds the paper's experimental scenario from an
:class:`~repro.experiments.config.ExperimentConfig`:

1. generate (or accept) the DieselNet-like encounter trace;
2. generate the Enron-like communication model and the daily user→bus
   assignments;
3. build the injection schedule (490 messages over the first 8 days);
4. create one emulated node per bus, with the configured routing policy,
   filter strategy, and storage constraint;
5. wire everything into an :class:`~repro.emulation.network.Emulator`.

Two addressing modes are supported (``config.addressing``):

* **bus** (the paper's model, default): a message between two users is
  authored at the sender's bus-of-the-day and *addressed to the
  recipient's bus-of-the-day*; bus filters are static. The Figure 5/6
  filter strategies operate on bus addresses — ``selected`` picks "the k
  other hosts that a given host will encounter most in the trace",
  verbatim from the paper.
* **user**: messages are addressed to user addresses; the daily
  assignment schedule is applied to node filters, so relayed mail is
  delivered the moment its recipient boards a bus already carrying it.
  This exercises the substrate's dynamic-filter machinery; the ``selected``
  strategy then ranks *users* by expected meetings.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.churn import ChurnSchedule, FreeRiderPolicy, generate_churn_schedule
from repro.dtn.policy import DTNPolicy
from repro.dtn.registry import get_policy
from repro.emulation.encounters import EncounterTrace
from repro.emulation.network import Emulator, Injection
from repro.emulation.node import EmulatedNode
from repro.replication.digest import DigestConfig
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.traces.enron import EmailWorkloadModel, generate_enron_model
from repro.traces.mapping import AssignmentSchedule, assign_users_daily
from repro.traces.workload import WorkloadConfig, build_injection_schedule

from .config import ExperimentConfig


@dataclass
class Scenario:
    """Everything needed to run (and re-run) one experiment."""

    config: ExperimentConfig
    trace: EncounterTrace
    model: EmailWorkloadModel
    assignments: AssignmentSchedule
    injections: List[Injection]
    nodes: Dict[str, EmulatedNode]
    emulator: Emulator
    #: Lifecycle schedule when churn is armed, else None. Generated here
    #: (not inside the emulator) so the swarm's node servers — which each
    #: rebuild the scenario from the shared config — agree on the exact
    #: same arrivals/crashes/rejoins as the orchestrator.
    churn_schedule: Optional[ChurnSchedule] = None


def expected_user_meetings(
    trace: EncounterTrace, assignments: AssignmentSchedule, host: str
) -> Dict[str, int]:
    """For each user, how often ``host`` meets the bus carrying that user.

    The ``selected`` filter strategy's oracle in *user* addressing mode:
    encounters between ``host`` and the user's daily bus, summed over the
    trace.
    """
    totals: Counter = Counter()
    for day, day_assignments in assignments.items():
        day_counts: Counter = Counter()
        for encounter in trace.on_day(day):
            if encounter.a == host:
                day_counts[encounter.b] += 1
            elif encounter.b == host:
                day_counts[encounter.a] += 1
        if not day_counts:
            continue
        for bus, users in day_assignments.items():
            meetings = day_counts.get(bus, 0)
            if meetings:
                for user in users:
                    totals[user] += meetings
    return dict(totals)


def _bus_relay_addresses(
    host: str,
    config: ExperimentConfig,
    trace: EncounterTrace,
    rng: random.Random,
) -> frozenset:
    """Figure 5/6 relay sets in bus addressing mode."""
    others = sorted(trace.hosts - {host})
    k = min(config.filter_k, len(others))
    if config.filter_strategy == "random":
        return frozenset(rng.sample(others, k))
    # "selected": the k hosts this host meets most across the whole trace.
    counts = trace.meeting_counts_for(host)
    ranked = sorted(others, key=lambda bus: (-counts.get(bus, 0), bus))
    return frozenset(ranked[:k])


def _user_relay_addresses(
    host: str,
    config: ExperimentConfig,
    trace: EncounterTrace,
    assignments: AssignmentSchedule,
    all_users: Sequence[str],
    rng: random.Random,
) -> frozenset:
    """Figure 5/6 relay sets in user addressing mode."""
    k = min(config.filter_k, len(all_users))
    if config.filter_strategy == "random":
        return frozenset(rng.sample(list(all_users), k))
    meetings = expected_user_meetings(trace, assignments, host)
    ranked = sorted(all_users, key=lambda user: (-meetings.get(user, 0), user))
    return frozenset(ranked[:k])


def _policy_factory(config: ExperimentConfig, free_rider: bool):
    """A zero-argument builder for one node's routing policy.

    Used both to construct the node's initial policy and — stored on the
    node — to rebuild a pristine instance after an amnesiac restart.
    Free riders get their configured policy wrapped in a
    :class:`~repro.churn.FreeRiderPolicy`, so the selfish behaviour
    survives restarts too (it is who the node *is*, not soft state).
    """

    def build() -> DTNPolicy:
        policy = get_policy(config.policy, **config.policy_parameters)
        if free_rider:
            churn = config.churn
            assert churn is not None  # free riders only exist with churn armed
            policy = FreeRiderPolicy(
                policy,
                mode=churn.free_rider_mode,
                budget=churn.free_rider_budget,
            )
        return policy

    return build


def build_scenario(
    config: ExperimentConfig,
    trace: Optional[EncounterTrace] = None,
    model: Optional[EmailWorkloadModel] = None,
) -> Scenario:
    """Construct the full scenario for ``config``.

    A pre-built ``trace`` (e.g. parsed from real DieselNet data) and/or
    e-mail ``model`` (e.g. the real Enron pair list) may be supplied;
    otherwise the synthetic generators are used at the config's scale.
    """
    if trace is None:
        trace = generate_dieselnet_trace(
            DieselNetConfig(seed=config.trace_seed, scale=config.scale)
        )
    if model is None:
        model = generate_enron_model(
            n_users=config.effective_users, seed=config.email_seed
        )
    users = list(model.users)
    assignments = assign_users_daily(trace, users, seed=config.assignment_seed)
    injections = build_injection_schedule(
        model,
        assignments,
        WorkloadConfig(
            target_total=config.effective_messages,
            injection_days=config.injection_days,
            seed=config.workload_seed,
            addressing=config.addressing,
        ),
    )

    churn = (
        config.churn
        if config.churn is not None and config.churn.enabled
        else None
    )
    churn_schedule = (
        generate_churn_schedule(churn, trace) if churn is not None else None
    )
    free_riders = (
        churn_schedule.free_riders if churn_schedule is not None else frozenset()
    )

    filter_rng = random.Random(config.filter_seed)
    nodes: Dict[str, EmulatedNode] = {}
    for host in sorted(trace.hosts):
        if config.filter_strategy == "self" or config.filter_k == 0:
            relay: frozenset = frozenset()
        elif config.addressing == "bus":
            relay = _bus_relay_addresses(host, config, trace, filter_rng)
        else:
            relay = _user_relay_addresses(
                host, config, trace, assignments, users, filter_rng
            )
        # The registry (via the factory) is the single supported
        # construction path — direct policy-class instantiation here
        # would skip the Table II defaults.
        factory = _policy_factory(config, host in free_riders)
        nodes[host] = EmulatedNode(
            name=host,
            policy=factory(),
            relay_capacity=config.storage_limit,
            relay_eviction=config.eviction_strategy,
            static_relay_addresses=relay,
            delete_on_receipt=config.delete_on_receipt,
            policy_factory=factory,
        )

    emulator = Emulator(
        trace=trace,
        nodes=nodes,
        injections=injections,
        # In bus mode filters are static; the assignment schedule only
        # shaped the workload, so the emulator has no reassignment events.
        assignments=assignments if config.addressing == "user" else None,
        bandwidth_limit=config.bandwidth_limit,
        seed=config.encounter_order_seed,
        faults=config.faults,
        fault_seed=config.fault_seed,
        digest=(
            DigestConfig(fp_rate=config.digest_fp_rate)
            if config.knowledge_digest
            else None
        ),
        churn=churn,
        churn_schedule=churn_schedule,
    )
    return Scenario(
        config=config,
        trace=trace,
        model=model,
        assignments=assignments,
        injections=injections,
        nodes=nodes,
        emulator=emulator,
        churn_schedule=churn_schedule,
    )
