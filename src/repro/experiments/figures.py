"""Per-figure reproduction harnesses.

Each ``figure_N`` function runs the emulations behind one figure of the
paper's evaluation section and returns structured series data; the
``benchmarks/`` suite calls these and prints paper-style rows (see
:mod:`repro.experiments.report` for the renderer).

Runs are cached per (config, trace-identity) inside the process: Figures 7
and 8 share one policy sweep, and Figures 5 and 6 share one multi-address
sweep, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dtn.registry import PAPER_POLICY_ORDER
from repro.emulation.encounters import EncounterTrace
from repro.emulation.metrics import HOURS
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.traces.enron import EmailWorkloadModel, generate_enron_model

from .config import ExperimentConfig
from .runner import ExperimentResult, run_experiment

#: k values on the x-axis of Figures 5 and 6 ("Self" is k = 0).
FIGURE_5_K_VALUES: Tuple[int, ...] = (0, 1, 2, 4, 8, 16)

#: Hour points for the Figure 7(a)/9/10 CDFs.
CDF_HOURS: Tuple[float, ...] = tuple(float(h) for h in range(0, 13))

#: Day points for the Figure 7(b) CDF.
CDF_DAYS: Tuple[float, ...] = tuple(float(d) for d in range(1, 11))


@dataclass
class SharedScenarioInputs:
    """Trace and e-mail model shared across a figure's runs.

    The paper runs every configuration against the same trace and message
    workload; sharing these across runs both matches that and avoids
    regenerating them.
    """

    scale: float
    trace: EncounterTrace
    model: EmailWorkloadModel

    @classmethod
    def at_scale(cls, scale: float, trace_seed: int = 42, email_seed: int = 7
                 ) -> "SharedScenarioInputs":
        base = ExperimentConfig(scale=scale, trace_seed=trace_seed)
        trace = generate_dieselnet_trace(
            DieselNetConfig(seed=trace_seed, scale=scale)
        )
        model = generate_enron_model(
            n_users=base.effective_users, seed=email_seed
        )
        return cls(scale=scale, trace=trace, model=model)


class _ResultCache:
    """Process-wide memo of experiment runs keyed by config identity.

    With a :class:`~repro.experiments.store.RunStore` attached (the
    ``repro figure --results-dir`` path, and how figures share runs with
    ``repro sweep``), the cache reads completed runs back from their JSON
    artifacts instead of holding only live objects, and persists fresh
    runs as artifacts. A stored run is only reused when its trace summary
    matches the inputs' trace — configs don't describe externally supplied
    traces, so the summary check keeps a custom-trace session from
    aliasing a synthetic-trace artifact.
    """

    def __init__(self) -> None:
        self._results: Dict[Tuple, ExperimentResult] = {}
        self._store = None

    def attach_store(self, store) -> None:
        """Back the cache with an artifact store (None detaches)."""
        self._store = store

    def _from_store(
        self, config: ExperimentConfig, inputs: SharedScenarioInputs
    ) -> Optional[ExperimentResult]:
        if self._store is None or not self._store.has(config):
            return None
        result = self._store.load_result(config)
        if result.trace_summary != inputs.trace.summary():
            return None
        return result

    def run(
        self, config: ExperimentConfig, inputs: SharedScenarioInputs
    ) -> ExperimentResult:
        key = (
            id(inputs.trace),
            config.scale,
            config.policy,
            tuple(sorted(config.policy_parameters.items())),
            config.filter_strategy,
            config.filter_k,
            config.bandwidth_limit,
            config.storage_limit,
        )
        if key not in self._results:
            stored = self._from_store(config, inputs)
            if stored is not None:
                self._results[key] = stored
            else:
                self._results[key] = run_experiment(
                    config, trace=inputs.trace, model=inputs.model
                )
                if self._store is not None:
                    self._store.save_result(self._results[key])
        return self._results[key]

    def clear(self) -> None:
        self._results.clear()


RESULT_CACHE = _ResultCache()


# -- Figures 5 & 6: multi-address filters -------------------------------------------


def multiaddress_sweep(
    inputs: SharedScenarioInputs,
    k_values: Sequence[int] = FIGURE_5_K_VALUES,
    strategies: Sequence[str] = ("random", "selected"),
) -> Dict[Tuple[str, int], ExperimentResult]:
    """Run the unmodified-Cimbiosys multi-address experiments.

    Returns results keyed by (strategy, k); k = 0 is the shared "Self"
    baseline, stored under both strategies for convenient plotting.
    """
    results: Dict[Tuple[str, int], ExperimentResult] = {}
    base = ExperimentConfig(scale=inputs.scale, policy="cimbiosys")
    self_result = RESULT_CACHE.run(base, inputs)
    for strategy in strategies:
        results[(strategy, 0)] = self_result
        for k in k_values:
            if k == 0:
                continue
            config = base.with_filters(strategy, k)
            results[(strategy, k)] = RESULT_CACHE.run(config, inputs)
    return results


def figure_5(
    inputs: SharedScenarioInputs,
    k_values: Sequence[int] = FIGURE_5_K_VALUES,
) -> Dict[str, List[Tuple[int, float]]]:
    """Mean message delay (hours) vs addresses-in-filter, per strategy."""
    sweep = multiaddress_sweep(inputs, k_values)
    series: Dict[str, List[Tuple[int, float]]] = {}
    for strategy in ("random", "selected"):
        points = []
        for k in k_values:
            result = sweep[(strategy, k)]
            mean_hours = result.metrics.mean_delay_hours()
            points.append((k, mean_hours if mean_hours is not None else float("nan")))
        series[strategy] = points
    return series


def figure_6(
    inputs: SharedScenarioInputs,
    k_values: Sequence[int] = FIGURE_5_K_VALUES,
    deadline_hours: float = 12.0,
) -> Dict[str, List[Tuple[int, float]]]:
    """% messages delivered within ``deadline_hours`` vs addresses-in-filter."""
    sweep = multiaddress_sweep(inputs, k_values)
    series: Dict[str, List[Tuple[int, float]]] = {}
    for strategy in ("random", "selected"):
        points = []
        for k in k_values:
            result = sweep[(strategy, k)]
            fraction = result.metrics.fraction_delivered_within(
                deadline_hours * HOURS
            )
            points.append((k, 100.0 * fraction))
        series[strategy] = points
    return series


# -- Figures 7–10: DTN routing policies -----------------------------------------------


def policy_sweep(
    inputs: SharedScenarioInputs,
    policies: Sequence[str] = PAPER_POLICY_ORDER,
    bandwidth_limit: Optional[int] = None,
    storage_limit: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """Run each routing policy over the shared scenario."""
    results: Dict[str, ExperimentResult] = {}
    for policy in policies:
        config = ExperimentConfig(scale=inputs.scale, policy=policy).with_constraints(
            bandwidth_limit=bandwidth_limit, storage_limit=storage_limit
        )
        results[policy] = RESULT_CACHE.run(config, inputs)
    return results


def figure_7(
    inputs: SharedScenarioInputs,
    policies: Sequence[str] = PAPER_POLICY_ORDER,
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Delay CDFs, unconstrained: (a) 0–12 hours, (b) 1–10 days."""
    sweep = policy_sweep(inputs, policies)
    curves: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for policy, result in sweep.items():
        curves[policy] = {
            "hours": [
                (hours, 100.0 * fraction)
                for hours, fraction in result.delay_cdf_hours(CDF_HOURS)
            ],
            "days": [
                (days, 100.0 * fraction)
                for days, fraction in result.delay_cdf_hours(
                    [d * 24.0 for d in CDF_DAYS]
                )
            ],
        }
        # Re-label the day curve's x values back to days.
        curves[policy]["days"] = [
            (day, value)
            for day, (_, value) in zip(CDF_DAYS, curves[policy]["days"])
        ]
    return curves


def figure_8(
    inputs: SharedScenarioInputs,
    policies: Sequence[str] = PAPER_POLICY_ORDER,
) -> Dict[str, Dict[str, float]]:
    """Average stored copies per message, at delivery time and at the end."""
    sweep = policy_sweep(inputs, policies)
    return {
        policy: {
            "at_delivery": result.metrics.mean_copies_at_delivery() or float("nan"),
            "at_end": result.metrics.mean_copies_at_end() or float("nan"),
        }
        for policy, result in sweep.items()
    }


def figure_9(
    inputs: SharedScenarioInputs,
    policies: Sequence[str] = PAPER_POLICY_ORDER,
    bandwidth_limit: int = 1,
) -> Dict[str, List[Tuple[float, float]]]:
    """Delay CDF (0–12 h) with the bandwidth cap (1 message per encounter)."""
    sweep = policy_sweep(inputs, policies, bandwidth_limit=bandwidth_limit)
    return {
        policy: [
            (hours, 100.0 * fraction)
            for hours, fraction in result.delay_cdf_hours(CDF_HOURS)
        ]
        for policy, result in sweep.items()
    }


def figure_10(
    inputs: SharedScenarioInputs,
    policies: Sequence[str] = PAPER_POLICY_ORDER,
    storage_limit: int = 2,
) -> Dict[str, List[Tuple[float, float]]]:
    """Delay CDF (0–12 h) with the storage cap (2 relayed messages per node)."""
    sweep = policy_sweep(inputs, policies, storage_limit=storage_limit)
    return {
        policy: [
            (hours, 100.0 * fraction)
            for hours, fraction in result.delay_cdf_hours(CDF_HOURS)
        ]
        for policy, result in sweep.items()
    }
