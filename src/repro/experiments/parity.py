"""Convergence parity: the emulator and a live swarm must agree.

The live transport (:mod:`repro.net`) is only trustworthy if a trace
replayed against real processes reaches exactly the replication fixed
point the discrete-event emulator computes — same per-node holdings, same
per-node knowledge. This module defines that fixed point and the
comparison:

* :func:`replica_fixed_point` — a canonical, JSON-safe digest of one
  replica's converged state: its knowledge vector plus the content of all
  three stores (in-filter, outbox, relay), each item in its canonical
  wire encoding, order-independent;
* :func:`emulator_fixed_points` — run a config through
  :func:`~repro.experiments.runner.run_experiment`'s machinery and
  snapshot every node;
* :func:`compare_fixed_points` / :class:`ParityReport` — the per-node
  diff, with enough detail to debug a divergence;
* :func:`check_convergence_parity` — the full harness: same config
  through the emulator and through a live unix-socket swarm, compared.

The fixed point deliberately covers *replicated* state only. Caches,
suppression ledgers, and metrics counters are implementation detail and
may legitimately differ (the live path, for instance, stamps checksums
where the emulator's perfect channel does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from repro.emulation.network import Emulator
from repro.replication.persistence import replica_to_state
from repro.replication.replica import Replica

from .config import ExperimentConfig
from .scenario import build_scenario
from .store import canonical_json

#: The replicated-state keys of a replica snapshot that define the fixed
#: point; everything else in the snapshot (counters, capacities) is
#: configuration or bookkeeping.
_STORE_KEYS = ("in_filter", "outbox", "relay")


def replica_fixed_point(replica: Replica) -> Dict[str, Any]:
    """The canonical converged-state digest of one replica.

    Store contents are canonically encoded and *sorted*, so two replicas
    holding the same items in different arrival orders compare equal —
    the fixed point is about what converged, not the path taken.
    """
    state = replica_to_state(replica)
    return {
        "knowledge": state["knowledge"],
        "stores": {
            key: sorted(canonical_json(item) for item in state[key])
            for key in _STORE_KEYS
        },
    }


def emulator_fixed_points(
    config: ExperimentConfig, extra_days: int = 0
) -> Dict[str, Dict[str, Any]]:
    """Run ``config`` through the discrete-event emulator; snapshot nodes."""
    scenario = build_scenario(config)
    scenario.emulator.run(extra_days=extra_days)
    return {
        name: replica_fixed_point(node.replica)
        for name, node in sorted(scenario.nodes.items())
    }


def snapshot_emulator(emulator: Emulator) -> Dict[str, Dict[str, Any]]:
    """Fixed points of an already-run emulator's nodes."""
    return {
        name: replica_fixed_point(node.replica)
        for name, node in sorted(emulator.nodes.items())
    }


@dataclass
class ParityReport:
    """The outcome of one emulator-vs-swarm comparison."""

    equal: bool
    mismatched_nodes: List[str] = field(default_factory=list)
    detail: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "equal": self.equal,
            "mismatched_nodes": list(self.mismatched_nodes),
            "detail": dict(self.detail),
        }


def _describe_difference(
    expected: Mapping[str, Any], actual: Mapping[str, Any]
) -> str:
    if expected.get("knowledge") != actual.get("knowledge"):
        return (
            f"knowledge differs: emulator {expected.get('knowledge')!r} "
            f"vs swarm {actual.get('knowledge')!r}"
        )
    for key in _STORE_KEYS:
        left = expected.get("stores", {}).get(key, [])
        right = actual.get("stores", {}).get(key, [])
        if left != right:
            missing = sorted(set(left) - set(right))
            extra = sorted(set(right) - set(left))
            return (
                f"{key} store differs: {len(missing)} item(s) only in "
                f"emulator, {len(extra)} only in swarm"
            )
    return "structures differ"


def compare_fixed_points(
    emulator_points: Mapping[str, Mapping[str, Any]],
    swarm_points: Mapping[str, Mapping[str, Any]],
) -> ParityReport:
    """Diff two per-node fixed-point maps."""
    report = ParityReport(equal=True)
    for name in sorted(set(emulator_points) | set(swarm_points)):
        expected = emulator_points.get(name)
        actual = swarm_points.get(name)
        if expected is None or actual is None:
            report.equal = False
            report.mismatched_nodes.append(name)
            side = "emulator" if expected is None else "swarm"
            report.detail[name] = f"node missing from {side} run"
            continue
        if expected != actual:
            report.equal = False
            report.mismatched_nodes.append(name)
            report.detail[name] = _describe_difference(expected, actual)
    return report


def check_convergence_parity(
    config: ExperimentConfig,
    extra_days: int = 0,
    transport: str = "unix",
) -> ParityReport:
    """Run ``config`` through both worlds and compare the fixed points.

    Spawns a real swarm (one OS process per trace host, unix sockets by
    default), replays the same schedule the emulator executes, and
    asserts node-for-node state equality.
    """
    # Imported lazily: repro.net imports this module for the fixed-point
    # definition, and the experiments layer must stay importable without
    # the net layer loaded.
    from repro.net.swarm import SwarmConfig, run_swarm

    emulator_points = emulator_fixed_points(config, extra_days=extra_days)
    report = run_swarm(
        SwarmConfig(
            experiment=config, transport=transport, extra_days=extra_days
        )
    )
    return compare_fixed_points(emulator_points, report.fixed_points)


def check_churn_parity(
    config: ExperimentConfig,
    extra_days: int = 0,
    transport: str = "unix",
) -> ParityReport:
    """Convergence parity for a *churning* scenario.

    Beyond :func:`check_convergence_parity`, this asserts the scenario
    actually exercises the lifecycle machinery before comparing: churn
    must be armed, and the derived schedule must contain at least one
    crash-restart that rejoins from its checkpoint AND at least one
    amnesiac rejoin — otherwise the gate would pass vacuously on a
    schedule that never kills a process.
    """
    if config.churn is None or not config.churn.enabled:
        raise ValueError("check_churn_parity needs an armed ChurnConfig")
    scenario = build_scenario(config)
    schedule = scenario.churn_schedule
    assert schedule is not None
    if not schedule.has_checkpoint_rejoin:
        raise ValueError(
            "churn schedule has no checkpoint rejoin; raise crash_fraction "
            "or lower amnesia_probability so the gate exercises one"
        )
    if not schedule.has_amnesiac_rejoin:
        raise ValueError(
            "churn schedule has no amnesiac rejoin; raise crash_fraction "
            "or amnesia_probability so the gate exercises one"
        )
    return check_convergence_parity(
        config, extra_days=extra_days, transport=transport
    )
