"""Experiment configuration.

One :class:`ExperimentConfig` fully determines one emulation run: the
mobility trace (synthetic DieselNet parameters or an externally supplied
trace), the e-mail workload, the routing policy and its parameters, the
filter-population strategy (for the Figure 5/6 multi-address experiments),
and the resource constraints (Figures 9/10). Everything is seeded, so a
config is a complete, reproducible description of a run.

``scale`` shrinks the scenario uniformly (fewer days/buses/messages) so
tests and default benchmark runs finish quickly; ``scale=1.0`` is the
paper's full scenario. The environment variable ``REPRO_SCALE`` overrides
the default scale used by the figure harnesses.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional

from repro._compat import keyword_only_dataclass
from repro.churn.config import ChurnConfig
from repro.faults import FaultConfig

#: Default scale used by the figure benchmarks; override with REPRO_SCALE.
DEFAULT_SCALE = 0.5


def configured_scale() -> float:
    """The scale requested via the ``REPRO_SCALE`` env var (default 0.5)."""
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return DEFAULT_SCALE
    value = float(raw)
    if not 0.0 < value <= 1.0:
        raise ValueError("REPRO_SCALE must be in (0, 1]")
    return value


@keyword_only_dataclass
@dataclass(frozen=True)
class ExperimentConfig:
    """Full description of one emulation run.

    Construct with keyword arguments only (positional form is deprecated
    and warns). Configs round-trip through :meth:`to_dict` /
    :meth:`from_dict`, which is what lets sweep workers rebuild scenarios
    from serialized configs and lets the artifact store content-address
    runs by config digest.
    """

    # Scenario shape (scaled by ``scale``; 1.0 = the paper's numbers).
    scale: float = 1.0
    trace_seed: int = 42
    n_users: int = 100
    target_messages: int = 490
    injection_days: int = 8

    # Routing.
    policy: str = "cimbiosys"
    policy_parameters: Dict[str, Any] = field(default_factory=dict)

    # How messages are addressed: "bus" = to the node hosting the
    # recipient on the injection day (the paper's model, static filters);
    # "user" = to the recipient's own address, with filters tracking the
    # daily user→bus assignment (dynamic-filter extension mode).
    addressing: str = "bus"

    # Figure 5/6 filter strategy: "self", "random", or "selected", with k
    # extra relay addresses per host.
    filter_strategy: str = "self"
    filter_k: int = 0
    filter_seed: int = 17

    # Figure 9/10 constraints. ``eviction_strategy`` picks the relay
    # buffer's victim-selection rule when storage_limit binds: "fifo"
    # (the paper's Figure 10 choice), "random", or "oldest-created".
    bandwidth_limit: Optional[int] = None
    storage_limit: Optional[int] = None
    eviction_strategy: str = "fifo"

    # Section IV-A cleanup flow: "after a message is received and
    # processed, the destination node can simply delete the item, causing
    # it to be discarded by forwarding nodes". The paper's experiments
    # never delete (Fig. 8's worst case); enable to study the effect.
    delete_on_receipt: bool = False

    # Fault injection (repro.faults): None = perfect network, identical
    # to a config predating the fault subsystem. A disabled FaultConfig
    # (all probabilities zero) is also bit-for-bit equivalent to None.
    faults: Optional[FaultConfig] = None

    # Node churn (repro.churn): None = the fixed population of the
    # paper's evaluation, identical to a config predating the churn
    # subsystem. A disabled ChurnConfig (all fractions zero) is also
    # bit-for-bit equivalent to None.
    churn: Optional[ChurnConfig] = None

    # Knowledge-digest mode (docs/protocol.md §8): when armed, targets
    # summarise their knowledge as a Bloom digest whenever it beats the
    # exact vector on the wire. ``digest_fp_rate`` is the per-probe false
    # positive budget; a false positive suppresses an item for one
    # contact and it is re-offered later under a fresh salt.
    knowledge_digest: bool = False
    digest_fp_rate: float = 0.05

    # Emulation engine: "object" is the executable spec
    # (repro.emulation.network); "columnar" is the flat-array core for
    # city-scale runs (repro.emulation.columnar), equivalent on its
    # supported subset and loudly rejecting anything else.
    engine: str = "object"

    # Determinism knobs.
    assignment_seed: int = 5
    workload_seed: int = 99
    encounter_order_seed: int = 11
    email_seed: int = 7
    fault_seed: int = 23

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        if self.addressing not in ("bus", "user"):
            raise ValueError("addressing must be 'bus' or 'user'")
        if self.filter_strategy not in ("self", "random", "selected"):
            raise ValueError(
                "filter_strategy must be 'self', 'random', or 'selected'"
            )
        if self.filter_strategy == "self" and self.filter_k != 0:
            raise ValueError("filter_k must be 0 with the 'self' strategy")
        if self.filter_k < 0:
            raise ValueError("filter_k must be >= 0")
        if self.bandwidth_limit is not None and self.bandwidth_limit < 0:
            raise ValueError("bandwidth_limit must be >= 0 or None")
        if self.eviction_strategy not in ("fifo", "random", "oldest-created"):
            raise ValueError(
                "eviction_strategy must be 'fifo', 'random', or 'oldest-created'"
            )
        if self.storage_limit is not None and self.storage_limit < 0:
            raise ValueError("storage_limit must be >= 0 or None")
        if not 0.0 < self.digest_fp_rate < 0.5:
            raise ValueError("digest_fp_rate must be in (0, 0.5)")
        if self.engine not in ("object", "columnar"):
            raise ValueError("engine must be 'object' or 'columnar'")

    @property
    def effective_users(self) -> int:
        return max(6, int(round(self.n_users * self.scale)))

    @property
    def effective_messages(self) -> int:
        return max(10, int(round(self.target_messages * self.scale)))

    def with_policy(self, policy: str, **parameters: Any) -> "ExperimentConfig":
        return replace(self, policy=policy, policy_parameters=dict(parameters))

    def with_filters(self, strategy: str, k: int) -> "ExperimentConfig":
        return replace(self, filter_strategy=strategy, filter_k=k)

    def with_constraints(
        self,
        bandwidth_limit: Optional[int] = None,
        storage_limit: Optional[int] = None,
    ) -> "ExperimentConfig":
        return replace(
            self, bandwidth_limit=bandwidth_limit, storage_limit=storage_limit
        )

    def with_faults(self, **knobs: Any) -> "ExperimentConfig":
        """Arm the fault subsystem (knobs are FaultConfig fields)."""
        return replace(self, faults=FaultConfig(**knobs))

    def with_churn(self, **knobs: Any) -> "ExperimentConfig":
        """Arm the churn subsystem (knobs are ChurnConfig fields)."""
        return replace(self, churn=ChurnConfig(**knobs))

    def label(self) -> str:
        """A short human-readable tag for reports."""
        parts = [self.policy]
        if self.filter_strategy != "self":
            parts.append(f"{self.filter_strategy}+{self.filter_k}")
        if self.bandwidth_limit is not None:
            parts.append(f"bw={self.bandwidth_limit}")
        if self.storage_limit is not None:
            parts.append(f"store={self.storage_limit}")
        if self.faults is not None and self.faults.enabled:
            parts.append("faults")
        if self.churn is not None and self.churn.enabled:
            parts.append("churn")
        if self.knowledge_digest:
            parts.append(f"digest@{self.digest_fp_rate:g}")
        if self.engine != "object":
            parts.append(self.engine)
        if self.trace_seed != 42:
            parts.append(f"seed={self.trace_seed}")
        return " ".join(parts)

    # -- serialization (the repro.api round-trip contract) ------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; ``from_dict(to_dict())`` reconstructs exactly.

        ``policy_parameters`` values must themselves be JSON-safe (they
        always are for the registered policies — Table II knobs are ints
        and floats). ``faults`` nests a :meth:`FaultConfig.to_dict` block
        or ``None``. ``churn`` nests a :meth:`ChurnConfig.to_dict` block
        when set and is *omitted entirely* when None — unlike ``faults``
        (whose None predates the content-addressed store), an
        always-present key would silently change the config digest, and
        therefore the run id, of every previously recorded artifact.
        """
        data: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "policy_parameters":
                value = dict(value)
            elif spec.name == "faults":
                value = value.to_dict() if value is not None else None
            elif spec.name == "churn":
                if value is None:
                    continue
                value = value.to_dict()
            data[spec.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentConfig":
        """Rebuild a config serialized by :meth:`to_dict`.

        Unknown keys raise :class:`TypeError` naming the offending field,
        so configs from a newer schema fail loudly.
        """
        payload = dict(data)
        faults = payload.get("faults")
        if isinstance(faults, Mapping):
            payload["faults"] = FaultConfig.from_dict(faults)
        churn = payload.get("churn")
        if isinstance(churn, Mapping):
            payload["churn"] = ChurnConfig.from_dict(churn)
        return cls(**payload)
