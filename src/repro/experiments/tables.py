"""The paper's tables as data.

* **Table I** — the qualitative summary of the four DTN routing policies:
  what routing state each host keeps, what the target adds to sync
  requests, and the source's forwarding rule. Kept as structured data so
  tests can assert that each implemented policy actually exhibits the
  behaviour its row describes.
* **Table II** — the protocol parameters used in the evaluation, re-exported
  from the policy registry (which is the single source of truth — the
  registry instantiates policies with exactly these values).
* **Measured tables** — :func:`measured_policy_table` aggregates stored
  run artifacts per policy, the data behind
  :func:`repro.experiments.report.render_measured_table`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dtn.registry import TABLE_II_PARAMETERS


@dataclass(frozen=True)
class PolicySummaryRow:
    """One row of Table I."""

    protocol: str
    routing_state: str
    added_to_sync_request: str
    source_forwarding_policy: str


TABLE_I: Tuple[PolicySummaryRow, ...] = (
    PolicySummaryRow(
        protocol="Epidemic",
        routing_state="TTL per message",
        added_to_sync_request="",
        source_forwarding_policy="When TTL > 0",
    ),
    PolicySummaryRow(
        protocol="Spray&Wait",
        routing_state="# copies per message",
        added_to_sync_request="",
        source_forwarding_policy="When # copies >= 2",
    ),
    PolicySummaryRow(
        protocol="PROPHET",
        routing_state="Vector of delivery predictabilities: P[d] for each dest d",
        added_to_sync_request="Target's P vector",
        source_forwarding_policy=(
            "Messages addressed to dest when target's P[dest] > source's"
        ),
    ),
    PolicySummaryRow(
        protocol="MaxProp",
        routing_state="Estimated meeting probabilities for all pairs",
        added_to_sync_request="Target's meeting probabilities",
        source_forwarding_policy=(
            "All messages, ordered by priority (modified Dijkstra calculation)"
        ),
    ),
)

#: Table II verbatim (name → parameter dict), sourced from the registry.
TABLE_II: Dict[str, Dict[str, object]] = {
    name: dict(parameters) for name, parameters in TABLE_II_PARAMETERS.items()
}

#: The values as printed in the paper, for cross-checking the registry.
TABLE_II_PAPER_VALUES: Dict[str, Dict[str, object]] = {
    "epidemic": {"initial_ttl": 10},
    "spray": {"initial_copies": 8},
    "prophet": {"p_init": 0.75, "beta": 0.25, "gamma": 0.98},
    "maxprop": {"hop_threshold": 3},
}

#: Metrics aggregated by :func:`measured_policy_table`.
MEASURED_METRICS: Tuple[str, ...] = (
    "delivery_ratio",
    "mean_delay_hours",
    "within_12h",
    "transmissions",
)


def measured_policy_table(store) -> Dict[str, Dict[str, float]]:
    """Per-policy metric means over every artifact in a run store.

    Reads completed runs back from their JSON artifacts (not live metric
    objects) and averages :data:`MEASURED_METRICS` per policy, across
    seeds and constraint settings; NaN metrics (e.g. mean delay with zero
    deliveries) are skipped per-metric. Returns
    ``{policy: {"runs": n, metric: mean, ...}}`` with policies sorted.
    """
    accumulated: Dict[str, Dict[str, list]] = {}
    counts: Dict[str, int] = {}
    for run_id in store.list_run_ids():
        result = store.load_result(run_id)
        policy = result.config.policy
        counts[policy] = counts.get(policy, 0) + 1
        summary = result.summary()
        bucket = accumulated.setdefault(policy, {})
        for metric in MEASURED_METRICS:
            value = summary[metric]
            if not math.isnan(value):
                bucket.setdefault(metric, []).append(value)
    table: Dict[str, Dict[str, float]] = {}
    for policy in sorted(counts):
        row: Dict[str, float] = {"runs": float(counts[policy])}
        for metric in MEASURED_METRICS:
            values = accumulated[policy].get(metric, [])
            row[metric] = (
                sum(values) / len(values) if values else float("nan")
            )
        table[policy] = row
    return table
