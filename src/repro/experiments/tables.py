"""The paper's tables as data.

* **Table I** — the qualitative summary of the four DTN routing policies:
  what routing state each host keeps, what the target adds to sync
  requests, and the source's forwarding rule. Kept as structured data so
  tests can assert that each implemented policy actually exhibits the
  behaviour its row describes.
* **Table II** — the protocol parameters used in the evaluation, re-exported
  from the policy registry (which is the single source of truth — the
  registry instantiates policies with exactly these values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dtn.registry import TABLE_II_PARAMETERS


@dataclass(frozen=True)
class PolicySummaryRow:
    """One row of Table I."""

    protocol: str
    routing_state: str
    added_to_sync_request: str
    source_forwarding_policy: str


TABLE_I: Tuple[PolicySummaryRow, ...] = (
    PolicySummaryRow(
        protocol="Epidemic",
        routing_state="TTL per message",
        added_to_sync_request="",
        source_forwarding_policy="When TTL > 0",
    ),
    PolicySummaryRow(
        protocol="Spray&Wait",
        routing_state="# copies per message",
        added_to_sync_request="",
        source_forwarding_policy="When # copies >= 2",
    ),
    PolicySummaryRow(
        protocol="PROPHET",
        routing_state="Vector of delivery predictabilities: P[d] for each dest d",
        added_to_sync_request="Target's P vector",
        source_forwarding_policy=(
            "Messages addressed to dest when target's P[dest] > source's"
        ),
    ),
    PolicySummaryRow(
        protocol="MaxProp",
        routing_state="Estimated meeting probabilities for all pairs",
        added_to_sync_request="Target's meeting probabilities",
        source_forwarding_policy=(
            "All messages, ordered by priority (modified Dijkstra calculation)"
        ),
    ),
)

#: Table II verbatim (name → parameter dict), sourced from the registry.
TABLE_II: Dict[str, Dict[str, object]] = {
    name: dict(parameters) for name, parameters in TABLE_II_PARAMETERS.items()
}

#: The values as printed in the paper, for cross-checking the registry.
TABLE_II_PAPER_VALUES: Dict[str, Dict[str, object]] = {
    "epidemic": {"initial_ttl": 10},
    "spray": {"initial_copies": 8},
    "prophet": {"p_init": 0.75, "beta": 0.25, "gamma": 0.98},
    "maxprop": {"hop_threshold": 3},
}
