"""Node churn as a first-class scenario.

Real DTN deployments live with nodes that join late, leave for good,
crash without warning, and sometimes free-ride. This package models all
four as a seeded, declarative layer over the emulation and live-swarm
engines:

* :class:`ChurnConfig` — the frozen, validated knob set, carried on
  :class:`~repro.experiments.config.ExperimentConfig` (``churn=``);
* :func:`generate_churn_schedule` — a deterministic
  :class:`ChurnSchedule` of :class:`LifecycleEvent`\\ s derived from
  ``(config, trace)`` alone, so every process computes the same plan;
* :class:`LifecycleTracker` — run-time availability + recovery
  bookkeeping shared by the emulator and the swarm orchestrator;
* :class:`ReciprocityLedger` — per-node trust trackers and the
  population-wide generosity scores;
* :class:`FreeRiderPolicy` — selfish serving behaviours layered over
  any honest routing policy.

See ``docs/churn.md`` for the model and its live-mode semantics.
"""

from .config import FREE_RIDER_MODES, ChurnConfig
from .freeride import FreeRiderPolicy
from .lifecycle import LifecycleTracker
from .schedule import (
    ARRIVE,
    CRASH,
    EVENT_KINDS,
    LEAVE,
    REJOIN,
    ChurnSchedule,
    LifecycleEvent,
    generate_churn_schedule,
)
from .trust import ReciprocityLedger

__all__ = [
    "ARRIVE",
    "CRASH",
    "EVENT_KINDS",
    "FREE_RIDER_MODES",
    "LEAVE",
    "REJOIN",
    "ChurnConfig",
    "ChurnSchedule",
    "FreeRiderPolicy",
    "LifecycleEvent",
    "LifecycleTracker",
    "ReciprocityLedger",
    "generate_churn_schedule",
]
