"""Trust and reciprocity scoring over the whole population.

:class:`ReciprocityLedger` is the run-level view of the per-replica
trust machinery in :mod:`repro.replication.peer_health`: every node gets
its own :class:`~repro.replication.peer_health.PeerHealthTracker` armed
with the config's reciprocity knobs, encounters are admitted only when
*both* sides consider the other reciprocal (tit-for-tat), and a global
given/taken tally per node yields the population-wide reciprocity
scores that land in ``MetricsCollector.summary()`` — the signal that
separates free-riders from honest peers.

Like the lifecycle tracker, one ledger implementation drives both the
emulator and the swarm orchestrator, fed the same per-sync ``sent``
totals in the same order, so both worlds gate and score identically.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.replication.peer_health import PeerHealthTracker


class ReciprocityLedger:
    """Per-node trust trackers plus the global generosity tally."""

    def __init__(
        self,
        nodes: Iterable[str],
        threshold: float = 0.0,
        min_taken: int = 25,
    ) -> None:
        self.threshold = threshold
        self.trackers: Dict[str, PeerHealthTracker] = {
            name: PeerHealthTracker(
                reciprocity_threshold=threshold,
                reciprocity_min_taken=min_taken,
            )
            for name in sorted(nodes)
        }
        self._given: Dict[str, int] = {name: 0 for name in self.trackers}
        self._taken: Dict[str, int] = {name: 0 for name in self.trackers}

    # -- encounter admission --------------------------------------------------------

    def admit(self, a: str, b: str) -> bool:
        """Would both sides agree to sync? (Symmetric, side-effect free.)

        Both views are evaluated without short-circuiting so the call
        pattern stays identical regardless of which side would refuse —
        the same discipline ``Emulator._peers_willing`` applies to the
        health trackers.
        """
        a_willing = self.trackers[a].reciprocal(b)
        b_willing = self.trackers[b].reciprocal(a)
        return a_willing and b_willing

    # -- accounting -----------------------------------------------------------------

    def observe_sync(self, source: str, target: str, sent: int) -> None:
        """Fold one directed sync's delivered item count into the ledger."""
        self.trackers[source].record_exchange(target, given=sent)
        self.trackers[target].record_exchange(source, taken=sent)
        self._given[source] += sent
        self._taken[target] += sent

    def scores(self) -> Dict[str, float]:
        """Population-wide reciprocity score per node.

        Items the node contributed over items it consumed, add-one
        smoothed — honest peers hover around 1.0, receive-only
        free-riders decay toward zero as they keep taking.
        """
        return {
            name: (self._given[name] + 1) / (self._taken[name] + 1)
            for name in self.trackers
        }
