"""Selfish peer behaviours: policies that take but under-give.

A :class:`FreeRiderPolicy` wraps an honest routing policy and delegates
everything except :meth:`~repro.replication.routing.RoutingPolicy.source_budget`
— the one hook through which a source caps what it serves. Wrapping (as
opposed to a standalone policy) means a free-rider *routes* exactly like
its honest configuration and stays otherwise protocol-conformant; only
its generosity changes, which is precisely what a reciprocity score
should catch and a protocol validator should not.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Optional

from repro.dtn.policy import AddressProvider, DTNPolicy
from repro.replication.filters import Filter
from repro.replication.items import Item
from repro.replication.replica import Replica
from repro.replication.routing import Priority, SyncContext

from .config import FREE_RIDER_MODES


class FreeRiderPolicy(DTNPolicy):
    """An honest policy's routing with a selfish serving budget.

    ``mode="receive-only"`` serves nothing at all; ``mode="budget-lie"``
    serves at most ``budget`` items per sync regardless of the session's
    real bandwidth cap.
    """

    name = "free-rider"

    def __init__(
        self, inner: DTNPolicy, mode: str = "receive-only", budget: int = 1
    ) -> None:
        super().__init__()
        if mode not in FREE_RIDER_MODES:
            raise ValueError(
                f"mode must be one of {FREE_RIDER_MODES}, got {mode!r}"
            )
        if budget < 0:
            raise ValueError("budget must be >= 0")
        self.inner = inner
        self.mode = mode
        self.budget = budget

    # -- the selfish part -----------------------------------------------------------

    def source_budget(self, max_items: Optional[int]) -> Optional[int]:
        if self.mode == "receive-only":
            return 0
        if max_items is None:
            return self.budget
        return min(max_items, self.budget)

    # -- everything else delegates to the honest inner policy -----------------------

    def bind(
        self, replica: Replica, addresses: Optional[AddressProvider] = None
    ) -> "FreeRiderPolicy":
        super().bind(replica, addresses)
        self.inner.bind(replica, addresses)
        return self

    def generate_req(self, context: SyncContext) -> Any:
        return self.inner.generate_req(context)

    def process_req(self, routing_state: Any, context: SyncContext) -> None:
        self.inner.process_req(routing_state, context)

    def to_send(
        self, item: Item, target_filter: Filter, context: SyncContext
    ) -> Optional[Priority]:
        return self.inner.to_send(item, target_filter, context)

    def on_encounter_start(self, context: SyncContext) -> None:
        self.inner.on_encounter_start(context)

    def on_items_sent(self, items: list, context: SyncContext) -> None:
        self.inner.on_items_sent(items, context)

    def prepare_outgoing(self, item: Item, context: SyncContext) -> Item:
        return self.inner.prepare_outgoing(item, context)

    def local_addresses(self) -> FrozenSet[str]:
        return self.inner.local_addresses()

    def persistent_state(self) -> dict:
        return self.inner.persistent_state()

    def restore_state(self, state: dict) -> None:
        self.inner.restore_state(state)
