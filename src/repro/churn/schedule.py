"""Seeded generation of a run's node-lifecycle schedule.

The schedule is derived from ``(ChurnConfig, EncounterTrace)`` alone, by
a dedicated :class:`random.Random` — arming churn never perturbs the
base experiment's draws, and every process that can see the config and
the trace (the emulator, the swarm orchestrator, each ``repro serve``
replica) derives the *identical* schedule independently. That shared
derivation is what makes emulator-vs-swarm churn parity possible.

Role assignment is a single seeded shuffle of the host list followed by
disjoint prefix slices (arrivals, then leavers, then crashers, then
free-riders), so no node ever holds two roles. Event times are placed
in windows chosen to keep the scenarios meaningful: arrivals land early
enough to participate, leaves late enough to have accumulated state
worth handing off, and crash/rejoin windows always close before the
trace span ends — both execution modes therefore replay the complete
schedule regardless of any convergence ``extra_days`` tail.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.emulation.encounters import SECONDS_PER_DAY, EncounterTrace

from .config import ChurnConfig

#: Lifecycle event kinds, in the order ties at one timestamp resolve.
ARRIVE = "arrive"
CRASH = "crash"
LEAVE = "leave"
REJOIN = "rejoin"

EVENT_KINDS = (ARRIVE, CRASH, LEAVE, REJOIN)


@dataclass(frozen=True)
class LifecycleEvent:
    """One scheduled change to a node's availability.

    ``partner`` is set only on graceful leaves with a handoff: the
    best-connected online peer that receives the leaver's final sync.
    ``amnesiac`` is set only on rejoins: True means the node lost its
    persisted state and restarts empty (keeping only its identity).
    """

    time: float
    kind: str
    node: str
    partner: Optional[str] = None
    amnesiac: bool = False


@dataclass(frozen=True)
class ChurnSchedule:
    """The complete, immutable lifecycle plan for one run."""

    events: Tuple[LifecycleEvent, ...]
    free_riders: Tuple[str, ...]
    initially_offline: frozenset

    @property
    def has_checkpoint_rejoin(self) -> bool:
        """At least one crashed node rejoins with its persisted state."""
        return any(
            event.kind == REJOIN and not event.amnesiac
            for event in self.events
        )

    @property
    def has_amnesiac_rejoin(self) -> bool:
        """At least one crashed node rejoins having lost its state."""
        return any(
            event.kind == REJOIN and event.amnesiac for event in self.events
        )

    def events_for(self, node: str) -> Tuple[LifecycleEvent, ...]:
        return tuple(event for event in self.events if event.node == node)


def _offline_windows(
    events: List[LifecycleEvent], span: float
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-node [start, end) intervals during which the node is offline."""
    windows: Dict[str, List[Tuple[float, float]]] = {}
    open_at: Dict[str, float] = {}
    for event in sorted(events, key=lambda e: (e.time, e.kind, e.node)):
        if event.kind == ARRIVE:
            windows.setdefault(event.node, []).append((0.0, event.time))
        elif event.kind in (LEAVE, CRASH):
            open_at[event.node] = event.time
        elif event.kind == REJOIN:
            start = open_at.pop(event.node, event.time)
            windows.setdefault(event.node, []).append((start, event.time))
    for node, start in open_at.items():
        windows.setdefault(node, []).append((start, span))
    return windows


def generate_churn_schedule(
    config: ChurnConfig, trace: EncounterTrace
) -> ChurnSchedule:
    """Derive the lifecycle schedule for ``trace`` under ``config``.

    Deterministic in ``(config, trace)``: the role shuffle and every
    time draw come from ``random.Random(config.seed)``, consumed in a
    fixed order (roles, then arrivals, then leaves, then crashes —
    each role's nodes in shuffle order).
    """
    hosts = sorted(trace.hosts)
    n = len(hosts)
    last_day = max((encounter.day for encounter in trace), default=0)
    span = float((last_day + 1) * SECONDS_PER_DAY)
    rng = random.Random(config.seed)

    shuffled = list(hosts)
    rng.shuffle(shuffled)
    n_arrive = int(n * config.arrival_fraction)
    n_leave = int(n * config.departure_fraction)
    n_crash = int(n * config.crash_fraction)
    n_free = int(n * config.free_rider_fraction)
    cursor = 0
    arrivals = shuffled[cursor : cursor + n_arrive]
    cursor += n_arrive
    leavers = shuffled[cursor : cursor + n_leave]
    cursor += n_leave
    crashers = shuffled[cursor : cursor + n_crash]
    cursor += n_crash
    free_riders = shuffled[cursor : cursor + n_free]

    events: List[LifecycleEvent] = []
    for node in arrivals:
        events.append(
            LifecycleEvent(
                time=rng.uniform(0.10, 0.50) * span, kind=ARRIVE, node=node
            )
        )
    leave_times: Dict[str, float] = {}
    for node in leavers:
        leave_times[node] = rng.uniform(0.55, 0.90) * span
    for node in crashers:
        crash_time = rng.uniform(0.15, 0.60) * span
        offline = (
            rng.uniform(config.min_offline_days, config.max_offline_days)
            * SECONDS_PER_DAY
        )
        # Clamp the rejoin inside the trace span so both execution modes
        # (the emulator's run-until horizon and the swarm's replay of
        # every step) process the full schedule.
        rejoin_time = min(crash_time + offline, span - 1.0)
        amnesiac = rng.random() < config.amnesia_probability
        events.append(LifecycleEvent(time=crash_time, kind=CRASH, node=node))
        events.append(
            LifecycleEvent(
                time=rejoin_time, kind=REJOIN, node=node, amnesiac=amnesiac
            )
        )

    # Handoff partners: the peer the leaver met most often in the trace,
    # restricted to peers that are online at the leave time (departed
    # and mid-crash peers can't take a final sync; unarrived peers
    # aren't there yet). Ties break alphabetically.
    meetings: Dict[str, Dict[str, int]] = {}
    for encounter in trace:
        meetings.setdefault(encounter.a, {}).setdefault(encounter.b, 0)
        meetings[encounter.a][encounter.b] += 1
        meetings.setdefault(encounter.b, {}).setdefault(encounter.a, 0)
        meetings[encounter.b][encounter.a] += 1

    provisional = list(events) + [
        LifecycleEvent(time=time, kind=LEAVE, node=node)
        for node, time in leave_times.items()
    ]
    windows = _offline_windows(provisional, span)

    def online_at(name: str, when: float) -> bool:
        return not any(
            start <= when < end for start, end in windows.get(name, ())
        )

    for node in leavers:
        when = leave_times[node]
        partner: Optional[str] = None
        if config.handoff:
            candidates = sorted(
                meetings.get(node, {}).items(),
                key=lambda pair: (-pair[1], pair[0]),
            )
            for peer, _count in candidates:
                if peer != node and online_at(peer, when):
                    partner = peer
                    break
        events.append(
            LifecycleEvent(time=when, kind=LEAVE, node=node, partner=partner)
        )

    events.sort(key=lambda event: (event.time, event.kind, event.node))
    return ChurnSchedule(
        events=tuple(events),
        free_riders=tuple(sorted(free_riders)),
        initially_offline=frozenset(arrivals),
    )
