"""Run-time tracking of node availability under a churn schedule.

One :class:`LifecycleTracker` instance drives both execution modes: the
emulator applies each :class:`~repro.churn.schedule.LifecycleEvent` as a
discrete event, the swarm orchestrator applies the same events as replay
steps — the tracker answers "is this node online right now?" for both,
and accrues the availability and recovery metrics either way. Keeping
the bookkeeping here (rather than duplicated in the two engines) is
what keeps the two worlds' churn metrics identical by construction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.emulation.metrics import MetricsCollector

from .schedule import ARRIVE, CRASH, LEAVE, REJOIN, ChurnSchedule, LifecycleEvent


class LifecycleTracker:
    """Availability state machine for every node in a churning run."""

    def __init__(self, nodes: Iterable[str], schedule: ChurnSchedule) -> None:
        self._online: Dict[str, bool] = {
            name: name not in schedule.initially_offline for name in nodes
        }
        #: When each currently-online node came up (for node-seconds).
        self._online_since: Dict[str, float] = {
            name: 0.0 for name, up in self._online.items() if up
        }
        #: Rejoined nodes that have not yet completed a post-rejoin
        #: encounter; value is the rejoin time (for recovery latency).
        self._awaiting_recovery: Dict[str, float] = {}
        self._departed: Set[str] = set()
        self._node_seconds = 0.0

    # -- queries --------------------------------------------------------------------

    def online(self, name: str) -> bool:
        """Is ``name`` up right now? Unknown names count as online."""
        return self._online.get(name, True)

    @property
    def departed(self) -> frozenset:
        """Nodes gone for good (graceful leavers)."""
        return frozenset(self._departed)

    # -- state changes --------------------------------------------------------------

    def apply(
        self, event: LifecycleEvent, now: float, metrics: MetricsCollector
    ) -> None:
        """Fold one lifecycle event into availability state and metrics."""
        name = event.node
        if event.kind == ARRIVE:
            if not self._online.get(name, False):
                self._online[name] = True
                self._online_since[name] = now
            metrics.record_churn_arrival()
        elif event.kind == LEAVE:
            self._go_offline(name, now)
            self._departed.add(name)
            metrics.record_churn_leave()
        elif event.kind == CRASH:
            self._go_offline(name, now)
            metrics.record_churn_crash()
        elif event.kind == REJOIN:
            if not self._online.get(name, False):
                self._online[name] = True
                self._online_since[name] = now
            self._awaiting_recovery[name] = now
            metrics.record_churn_rejoin(amnesiac=event.amnesiac)
        else:
            raise ValueError(f"unknown lifecycle event kind {event.kind!r}")

    def note_encounter(
        self, a: str, b: str, now: float, metrics: MetricsCollector
    ) -> None:
        """Record that an encounter between ``a`` and ``b`` completed.

        A rejoined node's first completed encounter marks its recovery —
        the latency from rejoin to that contact is the rejoin recovery
        time stamped into the metrics.
        """
        for name in (a, b):
            rejoined_at = self._awaiting_recovery.pop(name, None)
            if rejoined_at is not None:
                metrics.record_rejoin_recovery(now - rejoined_at)

    def finalize(self, end_time: float) -> float:
        """Close out availability accounting; returns total node-seconds."""
        for name, since in sorted(self._online_since.items()):
            if self._online.get(name, False):
                self._node_seconds += max(0.0, end_time - since)
        self._online_since = {
            name: end_time
            for name, up in self._online.items()
            if up
        }
        return self._node_seconds

    def _go_offline(self, name: str, now: float) -> None:
        if self._online.get(name, False):
            self._online[name] = False
            since = self._online_since.pop(name, 0.0)
            self._node_seconds += max(0.0, now - since)
