"""Configuration for the churn subsystem.

A :class:`ChurnConfig` declaratively describes the population dynamics
of a run: what fraction of nodes arrive late, leave gracefully (with a
final-sync handoff), crash and later rejoin (with or without their
persisted state), or free-ride, plus the trust knobs that gate
encounters on reciprocity. Like :class:`~repro.faults.config.FaultConfig`
it is frozen and fully validated at construction — a config plus its
seed is a complete, reproducible description of every lifecycle event
the run will see, in the emulator and in a live swarm alike.

All fractions default to ``0.0``: a default-constructed config is
*disabled* and a run given one behaves bit-for-bit like a run given no
churn config at all.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping

from repro._compat import keyword_only_dataclass

#: How a free-riding node under-serves its peers.
#:
#: * ``receive-only`` — the classic leech: accepts every item offered
#:   but never sends one back (its source budget is always zero).
#: * ``budget-lie`` — subtler: advertises cooperation but caps every
#:   batch it serves at ``free_rider_budget`` items, regardless of the
#:   session's real bandwidth budget.
FREE_RIDER_MODES = ("receive-only", "budget-lie")


@keyword_only_dataclass
@dataclass(frozen=True)
class ChurnConfig:
    """Knobs for node lifecycle dynamics and trust/reciprocity scoring.

    Lifecycle roles (assigned to *disjoint* node subsets by a seeded
    shuffle, so one node never both leaves and crashes):

    * ``arrival_fraction`` — nodes absent at the start that join partway
      through the run (no state; a genuinely new participant).
    * ``departure_fraction`` — nodes that leave gracefully: a final
      *handoff* sync with their best-connected online peer (when
      ``handoff`` is True), then gone for the rest of the run.
    * ``crash_fraction`` — nodes that die without warning mid-run and
      rejoin after an offline window of ``min_offline_days`` to
      ``max_offline_days``. With probability ``amnesia_probability``
      the rejoin is *amnesiac* — local state was lost and the node
      restarts empty; otherwise it restores its persisted checkpoint
      (:mod:`repro.replication.persistence`).
    * ``free_rider_fraction`` — nodes present the whole run but selfish
      (see :data:`FREE_RIDER_MODES`).

    Trust: when ``reciprocity_threshold`` is positive, every node
    scores its peers by items-received over items-given (add-one
    smoothed, see
    :meth:`~repro.replication.peer_health.PeerHealthTracker.reciprocity`)
    and refuses encounters with peers scoring below the threshold —
    after a grace window of ``reciprocity_min_taken`` items, so
    strangers are not refused before any history exists.
    """

    seed: int = 0
    arrival_fraction: float = 0.0
    departure_fraction: float = 0.0
    crash_fraction: float = 0.0
    amnesia_probability: float = 0.5
    min_offline_days: float = 0.25
    max_offline_days: float = 1.0
    handoff: bool = True
    free_rider_fraction: float = 0.0
    free_rider_mode: str = "receive-only"
    free_rider_budget: int = 1
    reciprocity_threshold: float = 0.0
    reciprocity_min_taken: int = 25

    def __post_init__(self) -> None:
        for name in (
            "arrival_fraction",
            "departure_fraction",
            "crash_fraction",
            "free_rider_fraction",
            "amnesia_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        role_total = (
            self.arrival_fraction
            + self.departure_fraction
            + self.crash_fraction
            + self.free_rider_fraction
        )
        if role_total > 1.0:
            raise ValueError(
                "lifecycle roles are disjoint: arrival + departure + crash "
                f"+ free-rider fractions must sum to <= 1, got {role_total}"
            )
        if self.min_offline_days < 0:
            raise ValueError("min_offline_days must be >= 0")
        if self.max_offline_days < self.min_offline_days:
            raise ValueError("max_offline_days must be >= min_offline_days")
        if self.free_rider_mode not in FREE_RIDER_MODES:
            raise ValueError(
                f"free_rider_mode must be one of {FREE_RIDER_MODES}, "
                f"got {self.free_rider_mode!r}"
            )
        if self.free_rider_budget < 0:
            raise ValueError("free_rider_budget must be >= 0")
        if self.reciprocity_threshold < 0.0:
            raise ValueError("reciprocity_threshold must be >= 0")
        if self.reciprocity_min_taken < 0:
            raise ValueError("reciprocity_min_taken must be >= 0")

    @property
    def enabled(self) -> bool:
        """True when the config can actually change a run's behaviour."""
        return (
            self.arrival_fraction > 0.0
            or self.departure_fraction > 0.0
            or self.crash_fraction > 0.0
            or self.free_rider_fraction > 0.0
            or self.reciprocity_threshold > 0.0
        )

    # -- serialization (the repro.api round-trip contract) ------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; ``from_dict(to_dict())`` reconstructs exactly."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChurnConfig":
        """Rebuild a config serialized by :meth:`to_dict`.

        Unknown keys raise :class:`TypeError` naming the offending field
        (via the keyword-only constructor), so a stale artifact fails
        loudly instead of silently dropping a knob.
        """
        return cls(**dict(data))
