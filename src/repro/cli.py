"""Command-line interface: run experiments and regenerate figures.

Usage (installed as ``python -m repro``):

    python -m repro trace [--scale S] [--seed N] [--export PATH]
    python -m repro run --policy epidemic [--scale S]
                        [--bandwidth-limit N] [--storage-limit N]
                        [--filter-strategy random|selected --filter-k K]
                        [--digest] [--digest-fp-rate P]
                        [--fault-drop P] [--fault-truncation P]
                        [--fault-duplication P] [--fault-crash P]
                        [--fault-corruption P] [--fault-replay P]
                        [--fault-fabrication P] [--fault-malformed P]
                        [--fault-seed N] [--fault-rng-streams MODE]
                        [--churn-arrivals F] [--churn-departures F]
                        [--churn-crashes F] [--churn-amnesia P]
                        [--churn-free-riders F] [--reciprocity-threshold R]
                        [--churn-seed N] [--json PATH]
    python -m repro serve --node NAME --listen ADDR --config PATH
                          [--state-dir DIR] [--read-timeout S] [--amnesiac]
    python -m repro swarm [--policy P] [--scale S] [--addressing MODE]
                          [--bandwidth-limit N] [--storage-limit N]
                          [--filter-strategy STRAT --filter-k K]
                          [--digest] [--digest-fp-rate P]
                          [--churn-* ...] [--reciprocity-threshold R]
                          [--transport unix|tcp] [--base-port N]
                          [--output PATH] [--parity]
    python -m repro sweep [--policies P ...] [--seeds N ...]
                          [--bandwidth-limits N|none ...]
                          [--storage-limits N|none ...]
                          [--scale S] [--workers N] [--no-resume]
                          [--timeout SECONDS]
                          [--filter LABEL] [--results-dir DIR]
    python -m repro figure {5,6,7,8,9,10,all} [--scale S]
                           [--results-dir DIR]
    python -m repro tables
    python -m repro bench sync [--nodes N] [--items M] [--encounters E]
                               [--seed S] [--output PATH]
                               [--min-reduction R]
    python -m repro bench encounter [--nodes N] [--items M] [--encounters E]
                                    [--seed S] [--duplicate-every N]
                                    [--output PATH] [--min-reduction R]
                                    [--profile PATH]
    python -m repro bench sweep [--workers N] [--scale S]
                                [--policies P ...] [--seeds N ...]
                                [--output PATH] [--min-speedup X]
    python -m repro bench metadata [--scale S] [--items M] [--seed S]
                                   [--fp-rate P] [--output PATH]
                                   [--min-reduction R]
    python -m repro bench scale [--preset tiny|smoke|full] [--policy P]
                                [--max-nodes N] [--no-equivalence]
                                [--seed S] [--output PATH] [--min-speedup X]

Every command prints paper-style rows; ``figure`` also honours
``--output-dir`` to persist them, and ``sweep`` materializes every run as
a JSON artifact in the content-addressed store (see ``docs/sweeps.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Optional, Sequence

from repro.dtn.registry import PAPER_POLICY_ORDER, available_policies
from repro.experiments.config import ExperimentConfig, configured_scale
from repro.experiments.figures import (
    SharedScenarioInputs,
    figure_5,
    figure_6,
    figure_7,
    figure_8,
    figure_9,
    figure_10,
)
from repro.experiments.report import (
    render_figure_8,
    render_series_table,
    render_summary_rows,
    render_table_1,
    render_table_2,
    run_summary_document,
)
from repro.churn import ChurnConfig
from repro.experiments.runner import run_experiment
from repro.faults import FaultConfig
from repro.traces.dieselnet import (
    DieselNetConfig,
    format_trace_text,
    generate_dieselnet_trace,
)


def _add_churn_arguments(command: argparse.ArgumentParser) -> None:
    churn = command.add_argument_group(
        "node churn", "seeded lifecycle model (see docs/churn.md)"
    )
    churn.add_argument(
        "--churn-arrivals", type=float, default=0.0, metavar="F",
        help="fraction of hosts that arrive late instead of at t=0",
    )
    churn.add_argument(
        "--churn-departures", type=float, default=0.0, metavar="F",
        help="fraction of hosts that leave gracefully (with a handoff sync)",
    )
    churn.add_argument(
        "--churn-crashes", type=float, default=0.0, metavar="F",
        help="fraction of hosts that crash abruptly and later rejoin",
    )
    churn.add_argument(
        "--churn-amnesia", type=float, default=0.5, metavar="P",
        help="probability a crashed host rejoins amnesiac (lost its "
             "checkpoint) rather than from durable state (default 0.5)",
    )
    churn.add_argument(
        "--churn-free-riders", type=float, default=0.0, metavar="F",
        help="fraction of hosts that receive but never (or barely) send",
    )
    churn.add_argument(
        "--reciprocity-threshold", type=float, default=0.0, metavar="R",
        help="refuse encounters with peers whose taken/given ratio "
             "exceeds R (0 disables the gate)",
    )
    churn.add_argument(
        "--churn-seed", type=int, default=0,
        help="seed for the lifecycle schedule RNG (default 0)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Peer-to-peer Data Replication Meets Delay "
            "Tolerant Networking' (ICDCS 2011)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    trace = subparsers.add_parser(
        "trace", help="generate the synthetic DieselNet trace and print stats"
    )
    trace.add_argument("--scale", type=float, default=None)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument(
        "--export", type=pathlib.Path, default=None,
        help="write the trace in the text interchange format",
    )

    run = subparsers.add_parser("run", help="run one experiment configuration")
    run.add_argument(
        "--policy", default="cimbiosys", choices=sorted(available_policies())
    )
    run.add_argument("--scale", type=float, default=None)
    run.add_argument("--bandwidth-limit", type=int, default=None)
    run.add_argument("--storage-limit", type=int, default=None)
    run.add_argument(
        "--filter-strategy", choices=("self", "random", "selected"), default="self"
    )
    run.add_argument("--filter-k", type=int, default=0)
    run.add_argument(
        "--addressing", choices=("bus", "user"), default="bus",
        help="bus = the paper's model; user = dynamic-filter extension",
    )
    run.add_argument(
        "--digest", action="store_true",
        help="arm the compact knowledge-digest mode of the sync protocol "
             "(docs/protocol.md §8)",
    )
    run.add_argument(
        "--digest-fp-rate", type=float, default=0.05, metavar="P",
        help="digest false-positive budget per membership probe "
             "(default 0.05)",
    )
    faults = run.add_argument_group(
        "fault injection", "seeded fault models (see docs/faults.md)"
    )
    faults.add_argument(
        "--fault-drop", type=float, default=0.0, metavar="P",
        help="probability an encounter is dropped entirely",
    )
    faults.add_argument(
        "--fault-truncation", type=float, default=0.0, metavar="P",
        help="probability a sync batch is cut mid-transfer",
    )
    faults.add_argument(
        "--fault-duplication", type=float, default=0.0, metavar="P",
        help="probability a delivered batch entry arrives twice",
    )
    faults.add_argument(
        "--fault-crash", type=float, default=0.0, metavar="P",
        help="probability an encounter participant crash-restarts",
    )
    faults.add_argument(
        "--fault-corruption", type=float, default=0.0, metavar="P",
        help="probability a delivered entry's payload is corrupted",
    )
    faults.add_argument(
        "--fault-replay", type=float, default=0.0, metavar="P",
        help="probability a sync session replays earlier frames",
    )
    faults.add_argument(
        "--fault-fabrication", type=float, default=0.0, metavar="P",
        help="probability a sync request's knowledge is inflated in transit",
    )
    faults.add_argument(
        "--fault-malformed", type=float, default=0.0, metavar="P",
        help="probability a delivered entry becomes an undecodable frame",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=23,
        help="seed for the fault injector's RNG (default 23)",
    )
    faults.add_argument(
        "--fault-rng-streams", choices=("shared", "per-link"),
        default="shared",
        help="'per-link' derives an independent child RNG per node pair "
             "(required for sharded columnar runs with faults)",
    )
    _add_churn_arguments(run)
    run.add_argument(
        "--json", type=pathlib.Path, default=None, metavar="PATH",
        help="also write the run summary (and fault counters, when armed) "
             "as a JSON document",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run one replica as a live networked daemon "
             "(see docs/deployment.md)",
    )
    serve.add_argument(
        "--node", required=True, metavar="NAME",
        help="which trace host this process embodies",
    )
    serve.add_argument(
        "--listen", required=True, metavar="ADDR",
        help="listen address: unix:/path/to.sock or tcp:host:port",
    )
    serve.add_argument(
        "--config", required=True, type=pathlib.Path, metavar="PATH",
        help="experiment config JSON (the ExperimentConfig.to_dict() shape)",
    )
    serve.add_argument(
        "--state-dir", type=pathlib.Path, default=None, metavar="DIR",
        help="directory for checkpoint save/restore (enables persistence)",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-read socket timeout (default 30)",
    )
    serve.add_argument(
        "--amnesiac", action="store_true",
        help="rejoin having lost everything but identity: ignore any "
             "checkpoint except its id-factory counters",
    )

    swarm = subparsers.add_parser(
        "swarm",
        help="spawn a live N-process swarm and replay the trace schedule",
    )
    swarm.add_argument(
        "--policy", default="epidemic", choices=sorted(available_policies())
    )
    swarm.add_argument("--scale", type=float, default=None)
    swarm.add_argument("--bandwidth-limit", type=int, default=None)
    swarm.add_argument("--storage-limit", type=int, default=None)
    swarm.add_argument(
        "--filter-strategy", choices=("self", "random", "selected"),
        default="self",
    )
    swarm.add_argument("--filter-k", type=int, default=0)
    swarm.add_argument(
        "--addressing", choices=("bus", "user"), default="bus",
    )
    swarm.add_argument(
        "--digest", action="store_true",
        help="arm the knowledge-digest mode on the live wire",
    )
    swarm.add_argument(
        "--digest-fp-rate", type=float, default=0.05, metavar="P",
    )
    swarm.add_argument(
        "--transport", choices=("unix", "tcp"), default="unix",
        help="peer channel flavour (default unix sockets)",
    )
    swarm.add_argument(
        "--base-port", type=int, default=42640,
        help="first TCP port when --transport tcp (node i gets base+i)",
    )
    swarm.add_argument(
        "--output", type=pathlib.Path, default=None, metavar="PATH",
        help="metrics artifact path (default swarm-<run-id>.json)",
    )
    _add_churn_arguments(swarm)
    swarm.add_argument(
        "--parity", action="store_true",
        help="also run the discrete-event emulator on the same config and "
             "fail unless both reach the same per-node fixed point",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="run a config grid across worker processes into the run store",
    )
    sweep.add_argument(
        "--policies", nargs="+", default=list(PAPER_POLICY_ORDER),
        metavar="POLICY",
        help="policies on the grid (default: the paper's five)",
    )
    sweep.add_argument(
        "--seeds", nargs="+", type=int, default=[0], metavar="N",
        help="replicate seeds; each offsets every determinism knob",
    )
    sweep.add_argument(
        "--bandwidth-limits", nargs="+", default=None, metavar="N|none",
        help="bandwidth caps on the grid ('none' = unconstrained)",
    )
    sweep.add_argument(
        "--storage-limits", nargs="+", default=None, metavar="N|none",
        help="storage caps on the grid ('none' = unconstrained)",
    )
    sweep.add_argument("--scale", type=float, default=None)
    sweep.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: the machine's CPU count)",
    )
    sweep.add_argument(
        "--no-resume", action="store_true",
        help="re-run cells whose artifacts already exist (overwrites them)",
    )
    sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget; overdue workers are killed and "
             "the run is recorded as failed (retried on resume)",
    )
    sweep.add_argument(
        "--filter", default=None, metavar="LABEL",
        help="only run grid cells whose label contains this substring",
    )
    sweep.add_argument(
        "--results-dir", type=pathlib.Path,
        default=pathlib.Path("results") / "runs",
        help="artifact store root (default results/runs)",
    )
    sweep.add_argument(
        "--extra-days", type=int, default=0,
        help="emulate this many extra quiet days after the trace ends",
    )
    sweep.add_argument(
        "--report", action="store_true",
        help="after the sweep, print summary tables read back from the "
             "artifact store",
    )

    figure = subparsers.add_parser(
        "figure", help="regenerate a figure of the paper's evaluation"
    )
    figure.add_argument(
        "which", choices=("5", "6", "7", "8", "9", "10", "all")
    )
    figure.add_argument("--scale", type=float, default=None)
    figure.add_argument("--output-dir", type=pathlib.Path, default=None)
    figure.add_argument(
        "--results-dir", type=pathlib.Path, default=None, metavar="DIR",
        help="read/write run artifacts in this store instead of re-running "
             "every configuration in memory (e.g. results/runs)",
    )

    subparsers.add_parser("tables", help="print Tables I and II")

    bench = subparsers.add_parser(
        "bench", help="run a micro-benchmark and record its JSON artifact"
    )
    bench_subs = bench.add_subparsers(
        dest="which", required=True,
        metavar="{sync,encounter,sweep,metadata,scale}",
    )

    # Parent parsers carrying the flags every bench shares: the artifact
    # destination, the workload seed, and the two regression-gate shapes
    # (reduction over a baseline leg, speedup over a reference engine).
    bench_shared = argparse.ArgumentParser(add_help=False)
    bench_shared.add_argument(
        "--output", type=pathlib.Path, default=None, metavar="PATH",
        help="where to write the JSON artifact (default ./BENCH_<name>.json)",
    )
    bench_seeded = argparse.ArgumentParser(add_help=False)
    bench_seeded.add_argument(
        "--seed", type=int, default=7,
        help="deterministic seed for the benchmark workload",
    )
    bench_reduction = argparse.ArgumentParser(add_help=False)
    bench_reduction.add_argument(
        "--min-reduction", type=float, default=None, metavar="R",
        help="fail (exit 1) unless the bench's headline cost improved by at "
             "least this factor over its baseline leg",
    )
    bench_speedup = argparse.ArgumentParser(add_help=False)
    bench_speedup.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="fail (exit 1) unless the fast leg beat the reference leg by at "
             "least this wall-clock factor",
    )

    bench_sync = bench_subs.add_parser(
        "sync", parents=[bench_shared, bench_seeded, bench_reduction],
        help="store enumeration: version index vs full scan",
    )
    bench_sync.add_argument("--nodes", type=int, default=50)
    bench_sync.add_argument("--items", type=int, default=5000)
    bench_sync.add_argument("--encounters", type=int, default=10000)
    bench_sync.add_argument(
        "--bandwidth-limit", type=int, default=None,
        help="optional per-encounter item cap (exercises the partial sort)",
    )
    bench_sync.add_argument(
        "--verify-every", type=int, default=50, metavar="N",
        help="check index/scan enumeration equivalence every Nth encounter "
             "(0 disables)",
    )

    bench_encounter = bench_subs.add_parser(
        "encounter", parents=[bench_shared, bench_seeded, bench_reduction],
        help="content checksums: cached vs per-hop recomputation",
    )
    bench_encounter.add_argument("--nodes", type=int, default=50)
    bench_encounter.add_argument("--items", type=int, default=5000)
    bench_encounter.add_argument("--encounters", type=int, default=10000)
    bench_encounter.add_argument(
        "--bandwidth-limit", type=int, default=None,
        help="optional per-encounter item cap (exercises the partial sort)",
    )
    bench_encounter.add_argument(
        "--duplicate-every", type=int, default=7, metavar="N",
        help="deterministically deliver every Nth entry twice (0 disables) "
             "— exercises redundant receipts",
    )
    bench_encounter.add_argument(
        "--profile", type=pathlib.Path, default=None, metavar="PATH",
        help="additionally re-run the cached leg under cProfile and dump "
             "the stats to PATH (pstats format)",
    )

    bench_sweep = bench_subs.add_parser(
        "sweep", parents=[bench_shared, bench_speedup],
        help="sweep engine: parallel workers vs serial execution",
    )
    bench_sweep.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="worker processes for the parallel leg",
    )
    bench_sweep.add_argument(
        "--scale", type=float, default=None,
        help="scenario scale for every grid cell (default 0.5)",
    )
    bench_sweep.add_argument(
        "--policies", nargs="+", default=None, metavar="POLICY",
        help="grid policies (default epidemic spray prophet maxprop)",
    )
    bench_sweep.add_argument(
        "--seeds", nargs="+", type=int, default=None, metavar="N",
        help="grid replicate seeds (default 0 1)",
    )

    bench_metadata = bench_subs.add_parser(
        "metadata", parents=[bench_shared, bench_seeded, bench_reduction],
        help="knowledge metadata: Bloom digests vs exact vectors",
    )
    bench_metadata.add_argument(
        "--scale", type=float, default=None,
        help="emulation workload scale (default 0.3)",
    )
    bench_metadata.add_argument("--items", type=int, default=5000)
    bench_metadata.add_argument(
        "--fp-rate", type=float, default=0.05, metavar="P",
        help="digest false-positive budget for the emulation workloads "
             "(default 0.05)",
    )

    bench_scale_p = bench_subs.add_parser(
        "scale", parents=[bench_shared, bench_seeded, bench_speedup],
        help="columnar core: object-engine comparison + nodes×encounters "
             "curve over metro-DieselNet traces",
    )
    bench_scale_p.set_defaults(seed=42)
    bench_scale_p.add_argument(
        "--preset", choices=("tiny", "smoke", "full"), default="full",
        help="curve ladder: 'full' tops out at 50k buses / >1M encounters, "
             "'smoke' stays under 2k buses for CI, 'tiny' is for tests",
    )
    bench_scale_p.add_argument(
        "--policy", default="epidemic",
        help="routing policy for every run (must be columnar-supported)",
    )
    bench_scale_p.add_argument(
        "--max-nodes", type=int, default=None, metavar="N",
        help="drop curve points above this many buses",
    )
    bench_scale_p.add_argument(
        "--no-equivalence", action="store_true",
        help="skip the object-vs-columnar equivalence gate on the matched "
             "comparison run",
    )
    return parser


def _scale(value: Optional[float]) -> float:
    return value if value is not None else configured_scale()


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.contacts import TraceProfile

    config = DieselNetConfig(seed=args.seed, scale=_scale(args.scale))
    trace = generate_dieselnet_trace(config)
    print(TraceProfile.of(trace).render())
    if args.export is not None:
        with open(args.export, "w") as stream:
            for line in format_trace_text(trace):
                stream.write(line + "\n")
        print(f"exported {len(trace)} encounters to {args.export}")
    return 0


#: Fault counters appended to ``repro run`` output when faults are armed.
FAULT_COUNTER_KEYS = (
    "dropped_encounters",
    "backoff_skips",
    "interrupted_syncs",
    "resumed_pairs",
    "crashes",
    "lost_transmissions",
    "redundant_transmissions",
    "quarantined_entries",
    "rejected_knowledge",
    "quarantine_skips",
    "protocol_violations",
    "peer_health_transitions",
)


#: Churn counters appended to ``repro run`` output when churn is armed.
CHURN_COUNTER_KEYS = (
    "churn_arrivals",
    "churn_leaves",
    "churn_crashes",
    "churn_rejoins",
    "churn_amnesiac_rejoins",
    "churn_handoffs",
    "churn_skipped_encounters",
    "churn_lost_injections",
    "reciprocity_refusals",
    "node_hours_online",
    "lost_to_departure",
    "mean_rejoin_recovery_hours",
)


#: Digest counters appended to ``repro run`` output when the digest is armed.
DIGEST_COUNTER_KEYS = (
    "metadata_bytes",
    "digest_syncs",
    "digest_suppressed",
    "fp_resends",
)


def _fault_config(args: argparse.Namespace) -> Optional[FaultConfig]:
    knobs = {
        "encounter_drop_probability": args.fault_drop,
        "truncation_probability": args.fault_truncation,
        "duplication_probability": args.fault_duplication,
        "crash_probability": args.fault_crash,
        "corruption_probability": args.fault_corruption,
        "replay_probability": args.fault_replay,
        "fabrication_probability": args.fault_fabrication,
        "malformed_probability": args.fault_malformed,
    }
    if all(value == 0.0 for value in knobs.values()):
        return None
    return FaultConfig(
        **knobs, rng_streams=getattr(args, "fault_rng_streams", "shared")
    )


def _churn_config(args: argparse.Namespace) -> Optional[ChurnConfig]:
    fractions = {
        "arrival_fraction": args.churn_arrivals,
        "departure_fraction": args.churn_departures,
        "crash_fraction": args.churn_crashes,
        "free_rider_fraction": args.churn_free_riders,
    }
    if (
        all(value == 0.0 for value in fractions.values())
        and args.reciprocity_threshold == 0.0
    ):
        return None
    return ChurnConfig(
        **fractions,
        seed=args.churn_seed,
        amnesia_probability=args.churn_amnesia,
        reciprocity_threshold=args.reciprocity_threshold,
    )


def cmd_run(args: argparse.Namespace) -> int:
    try:
        faults = _fault_config(args)
        churn = _churn_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        config = ExperimentConfig(
            scale=_scale(args.scale),
            policy=args.policy,
            addressing=args.addressing,
            filter_strategy=args.filter_strategy,
            filter_k=args.filter_k,
            bandwidth_limit=args.bandwidth_limit,
            storage_limit=args.storage_limit,
            faults=faults,
            fault_seed=args.fault_seed,
            churn=churn,
            knowledge_digest=args.digest,
            digest_fp_rate=args.digest_fp_rate,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_experiment(config)
    summary = result.summary()
    print(f"experiment: {config.label()}  (scale {config.scale})")
    print(render_summary_rows({config.label(): summary}))
    if faults is not None:
        print()
        print(f"fault counters (fault seed {config.fault_seed}):")
        for key in FAULT_COUNTER_KEYS:
            print(f"{key:>24} | {summary[key]:>11.0f}")
    if config.knowledge_digest:
        print()
        print(f"digest counters (fp rate {config.digest_fp_rate:g}):")
        for key in DIGEST_COUNTER_KEYS:
            print(f"{key:>24} | {summary[key]:>11.0f}")
    if churn is not None:
        print()
        print(f"churn counters (churn seed {churn.seed}):")
        for key in CHURN_COUNTER_KEYS:
            print(f"{key:>26} | {summary[key]:>11.2f}")
        scores = summary.get("reciprocity_scores", {})
        if scores:
            print(f"{'reciprocity scores':>26} | " + ", ".join(
                f"{name}={value:.2f}" for name, value in sorted(scores.items())
            ))
    if args.json is not None:
        document = run_summary_document(
            kind="run",
            label=config.label(),
            scale=config.scale,
            fault_seed=config.fault_seed if faults is not None else None,
            summary=summary,
        )
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote summary to {args.json}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.net.server import ServeConfig, run_server

    try:
        raw = json.loads(args.config.read_text(encoding="utf-8"))
        config = ServeConfig(
            node=args.node,
            listen=args.listen,
            experiment=ExperimentConfig.from_dict(raw),
            state_dir=str(args.state_dir) if args.state_dir else None,
            read_timeout=args.read_timeout,
            amnesiac=args.amnesiac,
        )
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"serving node {config.node} on {config.listen} "
        f"({config.experiment.label()})",
        file=sys.stderr,
    )
    asyncio.run(run_server(config))
    return 0


def cmd_swarm(args: argparse.Namespace) -> int:
    from repro.experiments.parity import (
        compare_fixed_points,
        emulator_fixed_points,
    )
    from repro.experiments.store import run_id_for
    from repro.net.swarm import SwarmConfig, run_swarm

    try:
        config = ExperimentConfig(
            scale=_scale(args.scale),
            policy=args.policy,
            addressing=args.addressing,
            filter_strategy=args.filter_strategy,
            filter_k=args.filter_k,
            bandwidth_limit=args.bandwidth_limit,
            storage_limit=args.storage_limit,
            churn=_churn_config(args),
            knowledge_digest=args.digest,
            digest_fp_rate=args.digest_fp_rate,
        )
        swarm_config = SwarmConfig(
            experiment=config,
            transport=args.transport,
            base_port=args.base_port,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    output = args.output or pathlib.Path(f"swarm-{run_id_for(config)}.json")
    print(
        f"swarm: {config.label()}  (scale {config.scale}, "
        f"{args.transport} transport)"
    )
    report = run_swarm(swarm_config, output=str(output))
    print(render_summary_rows({config.label(): report.metrics.summary()}))
    print(f"wrote metrics artifact to {report.output_path}")
    if args.parity:
        parity = compare_fixed_points(
            emulator_fixed_points(config), report.fixed_points
        )
        if parity.equal:
            print(
                f"parity: OK — live swarm matches the emulator on all "
                f"{len(report.fixed_points)} nodes"
            )
        else:
            print(
                f"parity: MISMATCH on {sorted(parity.mismatched_nodes)}",
                file=sys.stderr,
            )
            for name, detail in sorted(parity.detail.items()):
                print(f"  {name}: {detail}", file=sys.stderr)
            return 1
    return 0


def _parse_limits(raw: Optional[Sequence[str]]) -> Sequence[Optional[int]]:
    """``["none", "1", "8"] → [None, 1, 8]`` for the sweep grid axes."""
    if raw is None:
        return ()
    limits = []
    for token in raw:
        limits.append(None if token.lower() == "none" else int(token))
    return limits


def _print_sweep_event(event) -> None:
    position = f"[{event.completed}/{event.total}]"
    if event.kind == "started":
        print(f"{position} start    {event.label}  ({event.run_id})")
    elif event.kind == "reused":
        print(f"{position} reused   {event.label}  ({event.run_id})")
    elif event.kind == "finished":
        telemetry = event.telemetry or {}
        counters = " ".join(
            f"{key}={telemetry[key]:g}"
            for key in ("delivered", "injected", "syncs", "transmissions")
            if key in telemetry
        )
        print(f"{position} finished {event.label}  {counters}")
    elif event.kind == "failed":
        print(f"{position} FAILED   {event.label}  ({event.run_id})")


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.store import RunStore
    from repro.experiments.sweep import expand_grid, filter_by_label, run_sweep

    try:
        for policy in args.policies:
            if policy.lower() not in available_policies():
                raise KeyError(
                    f"unknown policy {policy!r}; registered policies: "
                    f"{', '.join(available_policies())}"
                )
        base = ExperimentConfig(scale=_scale(args.scale))
        grid = expand_grid(
            base,
            policies=args.policies,
            bandwidth_limits=_parse_limits(args.bandwidth_limits),
            storage_limits=_parse_limits(args.storage_limits),
            seeds=args.seeds,
        )
    except (KeyError, TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.filter:
        grid = filter_by_label(grid, args.filter)
    if not grid:
        print("error: the grid is empty after filtering", file=sys.stderr)
        return 2
    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
    store = RunStore(args.results_dir)
    try:
        report = run_sweep(
            grid,
            store=store,
            workers=workers,
            resume=not args.no_resume,
            progress=_print_sweep_event,
            extra_days=args.extra_days,
            timeout_s=args.timeout,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"sweep {report.sweep_id}: {len(report.outcomes)} runs — "
        f"{report.completed} completed, {report.reused} reused, "
        f"{report.failed} failed "
        f"(wall {report.wall_clock_s:.1f}s, workers {workers})"
    )
    statuses = store.validate_manifest(report.sweep_id)
    ok = sum(1 for status in statuses.values() if status == "ok")
    missing = sum(1 for status in statuses.values() if status == "missing")
    failed = sum(1 for status in statuses.values() if status == "failed")
    invalid = len(statuses) - ok - missing - failed
    print(
        f"manifest: {ok} ok, {missing} missing, {failed} failed, "
        f"{invalid} invalid"
    )
    for outcome in report.outcomes:
        if outcome.status == "failed":
            print(f"--- {outcome.run_id} failed ---", file=sys.stderr)
            print(outcome.error, file=sys.stderr)
    if args.report:
        from repro.experiments.report import (
            render_measured_table,
            render_store_summary,
        )

        print()
        print(render_store_summary(store, label_filter=args.filter))
        print()
        print(render_measured_table(store))
    return (
        0
        if report.failed == 0
        and invalid == 0
        and missing == 0
        and failed == 0
        else 1
    )


def _emit(text: str, name: str, output_dir: Optional[pathlib.Path]) -> None:
    print(text)
    print()
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
        (output_dir / f"{name}.txt").write_text(text + "\n")


def cmd_figure(args: argparse.Namespace) -> int:
    inputs = SharedScenarioInputs.at_scale(_scale(args.scale))
    if args.results_dir is not None:
        from repro.experiments.figures import RESULT_CACHE
        from repro.experiments.store import RunStore

        RESULT_CACHE.attach_store(RunStore(args.results_dir))
    which = args.which
    out = args.output_dir

    if which in ("5", "all"):
        _emit(
            render_series_table(
                "Figure 5: average message delay (hours) vs addresses in filter",
                "k",
                figure_5(inputs),
            ),
            "fig5",
            out,
        )
    if which in ("6", "all"):
        _emit(
            render_series_table(
                "Figure 6: % delivered within 12 hours vs addresses in filter",
                "k",
                figure_6(inputs),
            ),
            "fig6",
            out,
        )
    if which in ("7", "all"):
        curves = figure_7(inputs)
        _emit(
            render_series_table(
                "Figure 7(a): % delivered vs delay (hours), unconstrained",
                "hours",
                {p: curves[p]["hours"] for p in PAPER_POLICY_ORDER},
            ),
            "fig7a",
            out,
        )
        _emit(
            render_series_table(
                "Figure 7(b): % delivered vs delay (days), unconstrained",
                "days",
                {p: curves[p]["days"] for p in PAPER_POLICY_ORDER},
            ),
            "fig7b",
            out,
        )
    if which in ("8", "all"):
        _emit(render_figure_8(figure_8(inputs)), "fig8", out)
    if which in ("9", "all"):
        _emit(
            render_series_table(
                "Figure 9: % delivered vs delay (hours), bandwidth-constrained",
                "hours",
                figure_9(inputs),
            ),
            "fig9",
            out,
        )
    if which in ("10", "all"):
        _emit(
            render_series_table(
                "Figure 10: % delivered vs delay (hours), storage-constrained",
                "hours",
                figure_10(inputs),
            ),
            "fig10",
            out,
        )
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    print(render_table_1())
    print()
    print(render_table_2())
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    handlers = {
        "sync": _cmd_bench_sync,
        "encounter": _cmd_bench_encounter,
        "sweep": _cmd_bench_sweep,
        "metadata": _cmd_bench_metadata,
        "scale": _cmd_bench_scale,
    }
    return handlers[args.which](args)


def _cmd_bench_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.bench_sweep import (
        DEFAULT_POLICIES,
        DEFAULT_SEEDS,
        SweepBenchConfig,
        run_sweep_bench,
        write_sweep_bench,
    )

    try:
        config = SweepBenchConfig(
            scale=args.scale if args.scale is not None else 0.5,
            workers=args.workers,
            policies=tuple(args.policies or DEFAULT_POLICIES),
            seeds=tuple(args.seeds if args.seeds is not None else DEFAULT_SEEDS),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_sweep_bench(config)
    output = args.output or pathlib.Path("BENCH_sweep.json")
    path = write_sweep_bench(report, output)
    runs = report["config"]["runs"]
    speedup = report["speedup_wall_clock"]
    print(f"sweep bench: {runs} runs at scale {config.scale}, "
          f"{config.workers} workers, {report['cpu_count']} CPUs")
    print(f"{'serial wall clock':>28} | {report['serial']['wall_clock_s']:>9.3f}s")
    print(f"{'parallel wall clock':>28} | {report['parallel']['wall_clock_s']:>9.3f}s")
    print(f"{'speedup':>28} | {speedup:.2f}x")
    equivalence = report["equivalence"]
    print(f"{'equivalence':>28} | {equivalence['runs_compared']} runs compared, "
          f"byte-identical results: {equivalence['byte_identical_results']}")
    print(f"artifact written to {path}")
    if not equivalence["byte_identical_results"]:
        print("error: parallel and serial sweeps diverged", file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"error: sweep speedup {speedup:.2f}x is below the required "
            f"{args.min_speedup:.2f}x (machine has {report['cpu_count']} CPUs)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_encounter(args: argparse.Namespace) -> int:
    from repro.experiments.bench_encounter import (
        EncounterBenchConfig,
        encounter_bench_equivalent,
        run_encounter_bench,
        write_encounter_bench,
    )

    try:
        config = EncounterBenchConfig(
            nodes=args.nodes,
            items=args.items,
            encounters=args.encounters,
            seed=args.seed,
            max_items_per_encounter=args.bandwidth_limit,
            duplicate_every=args.duplicate_every,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_encounter_bench(config, profile=args.profile)
    path = write_encounter_bench(
        report, args.output or pathlib.Path("BENCH_encounter.json")
    )
    cached = report["cached"]
    uncached = report["uncached"]
    reduction = report["reduction_factor_checksum_computations"]
    print(f"encounter bench: {args.nodes} nodes, {args.items} items, "
          f"{args.encounters} encounters (seed {args.seed})")
    print(f"{'checksums / encounter':>28} | "
          f"cached {cached['checksum_computations_per_encounter']:>10.2f} | "
          f"uncached {uncached['checksum_computations_per_encounter']:>10.2f}")
    print(f"{'wall clock / 1k encounters':>28} | "
          f"cached {cached['wall_clock_s_per_1k_encounters']:>9.3f}s | "
          f"uncached {uncached['wall_clock_s_per_1k_encounters']:>9.3f}s")
    print(f"{'reduction factor':>28} | {reduction:.2f}x checksums, "
          f"{report['speedup_wall_clock']:.2f}x wall clock")
    equivalence = report["equivalence"]
    print(f"{'equivalence':>28} | "
          f"identical batches: {equivalence['identical_batches']}, "
          f"received match: {equivalence['received_match']}, "
          f"knowledge match: {equivalence['final_knowledge_match']}")
    print(f"artifact written to {path}")
    if args.profile is not None:
        print(f"profile written to {args.profile}")
    if not encounter_bench_equivalent(report):
        print("error: cached and uncached runs diverged", file=sys.stderr)
        return 1
    if args.min_reduction is not None and reduction < args.min_reduction:
        print(
            f"error: checksum reduction {reduction:.2f}x is below the "
            f"required {args.min_reduction:.2f}x — the integrity cache has "
            "regressed toward per-hop recomputation",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_metadata(args: argparse.Namespace) -> int:
    from repro.experiments.bench_metadata import (
        MetadataBenchConfig,
        run_metadata_bench,
        write_metadata_bench,
    )

    try:
        config = MetadataBenchConfig(
            scale=args.scale if args.scale is not None else 0.3,
            fp_rate=args.fp_rate,
            items=args.items,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_metadata_bench(config)
    path = write_metadata_bench(
        report, args.output or pathlib.Path("BENCH_metadata.json")
    )
    print(f"metadata bench: scale {config.scale}, fp rate {config.fp_rate:g}, "
          f"{config.items} fragmented versions (seed {config.seed})")
    print(f"{'workload':>24} | {'mode':>16} | {'meta B/msg':>10} | "
          f"{'suppressed':>10} | {'fp resends':>10}")
    for name, modes in report["workloads"].items():
        for mode in ("exact", "digest_negotiated", "digest_forced"):
            row = modes[mode]
            print(f"{name:>24} | {mode:>16} | "
                  f"{row['metadata_bytes_per_delivered']:>10.2f} | "
                  f"{row['digest_suppressed']:>10.0f} | "
                  f"{row['fp_resends']:>10.0f}")
    print(f"{'fragmented knowledge':>24} | {'versions':>9} | {'exact B':>9} | "
          f"{'digest B':>9} | {'reduction':>9}")
    for point in report["fragmented_knowledge"]["points"]:
        print(f"{'':>24} | {point['versions']:>9} | {point['exact_bytes']:>9} | "
              f"{point['digest_bytes']:>9} | {point['reduction_factor']:>8.2f}x")
    reduction = report["reduction_factor_at_largest_point"]
    print(f"artifact written to {path}")
    if args.min_reduction is not None and reduction < args.min_reduction:
        print(
            f"error: metadata reduction {reduction:.2f}x is below the "
            f"required {args.min_reduction:.2f}x — the digest has stopped "
            "beating the exact encoding on fragmented knowledge",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_sync(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (
        SyncBenchConfig,
        run_sync_bench,
        write_sync_bench,
    )

    try:
        config = SyncBenchConfig(
            nodes=args.nodes,
            items=args.items,
            encounters=args.encounters,
            seed=args.seed,
            max_items_per_encounter=args.bandwidth_limit,
            verify_every=args.verify_every,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_sync_bench(config)
    path = write_sync_bench(report, args.output or pathlib.Path("BENCH_sync.json"))
    indexed = report["indexed"]
    baseline = report["baseline_full_scan"]
    reduction = report["reduction_factor_items_scanned"]
    print(f"sync bench: {args.nodes} nodes, {args.items} items, "
          f"{args.encounters} encounters (seed {args.seed})")
    print(f"{'items scanned / encounter':>28} | "
          f"indexed {indexed['items_scanned_per_encounter']:>10.2f} | "
          f"full scan {baseline['items_scanned_per_encounter']:>10.2f}")
    print(f"{'wall clock / 1k encounters':>28} | "
          f"indexed {indexed['wall_clock_s_per_1k_encounters']:>9.3f}s | "
          f"full scan {baseline['wall_clock_s_per_1k_encounters']:>9.3f}s")
    print(f"{'reduction factor':>28} | {reduction:.2f}x scanned, "
          f"{report['speedup_wall_clock']:.2f}x wall clock")
    equivalence = report["equivalence"]
    print(f"{'equivalence':>28} | "
          f"{equivalence['sampled_enumerations_checked']} enumerations checked, "
          f"transmissions match: {equivalence['transmissions_match']}, "
          f"knowledge match: {equivalence['final_knowledge_match']}")
    print(f"artifact written to {path}")
    if not (
        equivalence["transmissions_match"] and equivalence["final_knowledge_match"]
    ):
        print("error: indexed and full-scan runs diverged", file=sys.stderr)
        return 1
    if args.min_reduction is not None and reduction < args.min_reduction:
        print(
            f"error: scan reduction {reduction:.2f}x is below the required "
            f"{args.min_reduction:.2f}x — the version index has regressed "
            "toward full-store scans",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_bench_scale(args: argparse.Namespace) -> int:
    from repro.experiments.bench_scale import (
        ScaleBenchConfig,
        run_scale_bench,
        write_scale_bench,
    )

    try:
        config = ScaleBenchConfig(
            preset=args.preset,
            policy=args.policy,
            seed=args.seed,
            min_speedup=(
                args.min_speedup if args.min_speedup is not None else 5.0
            ),
            equivalence=not args.no_equivalence,
            max_nodes=args.max_nodes,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_scale_bench(config)
    path = write_scale_bench(report, args.output or pathlib.Path("BENCH_scale.json"))
    comparison = report["comparison"]
    print(f"scale bench: preset {config.preset}, policy {config.policy} "
          f"(seed {config.seed}, {report['cpu_count']} CPUs)")
    print(f"{'matched comparison':>28} | {comparison['n_buses']} buses, "
          f"{comparison['encounters']} encounters")
    print(f"{'object engine':>28} | "
          f"{comparison['object']['wall_clock_s']:>9.3f}s | "
          f"{comparison['object']['us_per_encounter']:>9.2f} us/enc")
    print(f"{'columnar core':>28} | "
          f"{comparison['columnar']['wall_clock_s']:>9.3f}s | "
          f"{comparison['columnar']['us_per_encounter']:>9.2f} us/enc")
    print(f"{'speedup':>28} | {comparison['speedup_wall_clock']:.2f}x "
          f"(gate: {config.min_speedup:.2f}x)")
    if comparison["equivalence_checked"]:
        print(f"{'equivalence':>28} | identical comparable metrics: "
              f"{comparison['equivalent']}")
    print(f"{'buses':>10} | {'encounters':>10} | {'run s':>9} | "
          f"{'us/enc':>8} | {'peak RSS':>10} | {'delivered':>9}")
    for row in report["curve"]:
        shard_tag = f" ({row['shards']} shards)" if row["shards"] > 1 else ""
        print(f"{row['n_buses']:>10} | {row['encounters']:>10} | "
              f"{row['run_wall_clock_s']:>9.3f} | "
              f"{row['us_per_encounter']:>8.2f} | "
              f"{row['peak_rss_mb']:>8.1f}MB | "
              f"{row['delivered']:>9}{shard_tag}")
    print(f"artifact written to {path}")
    failed = False
    if comparison["equivalence_checked"] and not comparison["equivalent"]:
        keys = ", ".join(comparison["mismatched_keys"]) or "records"
        print(
            "error: columnar and object engines diverged on the matched "
            f"comparison run ({keys})",
            file=sys.stderr,
        )
        failed = True
    if not report["speedup_ok"]:
        print(
            f"error: columnar speedup {comparison['speedup_wall_clock']:.2f}x "
            f"is below the required {config.min_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "trace": cmd_trace,
        "run": cmd_run,
        "serve": cmd_serve,
        "swarm": cmd_swarm,
        "sweep": cmd_sweep,
        "figure": cmd_figure,
        "tables": cmd_tables,
        "bench": cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
