"""Small cross-version compatibility helpers.

The package supports Python 3.9+, but some performance-relevant features
only exist on newer interpreters. Each helper degrades gracefully: on an
older interpreter the semantics are identical, only the optimisation is
missing.
"""

from __future__ import annotations

import sys

#: Keyword arguments adding ``__slots__`` to a ``@dataclass`` where the
#: interpreter supports it (3.10+). Hot value types (batch entries,
#: priorities, version-vector entries) are created in tight loops during
#: trace replay; slots cut their per-instance memory and attribute-lookup
#: cost. On 3.9 the classes simply keep their ``__dict__``.
DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}
