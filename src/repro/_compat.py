"""Small cross-version compatibility helpers.

The package supports Python 3.9+, but some performance-relevant features
only exist on newer interpreters. Each helper degrades gracefully: on an
older interpreter the semantics are identical, only the optimisation is
missing.
"""

from __future__ import annotations

import dataclasses
import functools
import sys
import warnings

#: Keyword arguments adding ``__slots__`` to a ``@dataclass`` where the
#: interpreter supports it (3.10+). Hot value types (batch entries,
#: priorities, version-vector entries) are created in tight loops during
#: trace replay; slots cut their per-instance memory and attribute-lookup
#: cost. On 3.9 the classes simply keep their ``__dict__``.
DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}


def keyword_only_dataclass(cls):
    """Make a dataclass's constructor keyword-only, with a positional shim.

    The supported call form is keyword-only; positional arguments keep
    working for one release but emit :class:`DeprecationWarning` (the 3.9
    floor rules out ``@dataclass(kw_only=True)``, and that form would hard
    break old callers anyway). Unknown field names raise :class:`TypeError`
    naming the offending field and listing the valid ones, which is the
    error contract ``repro.api`` documents.
    """
    original_init = cls.__init__
    field_names = [f.name for f in dataclasses.fields(cls) if f.init]
    valid = frozenset(field_names)

    @functools.wraps(original_init)
    def __init__(self, *args, **kwargs):
        if args:
            warnings.warn(
                f"positional arguments to {cls.__name__}() are deprecated; "
                "pass every field by keyword",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > len(field_names):
                raise TypeError(
                    f"{cls.__name__}() takes at most {len(field_names)} "
                    f"arguments ({len(args)} given)"
                )
            for name, value in zip(field_names, args):
                if name in kwargs:
                    raise TypeError(
                        f"{cls.__name__}() got multiple values for field "
                        f"{name!r}"
                    )
                kwargs[name] = value
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise TypeError(
                f"{cls.__name__}() got unexpected field(s) "
                f"{', '.join(repr(name) for name in unknown)}; valid fields: "
                f"{', '.join(field_names)}"
            )
        original_init(self, **kwargs)

    cls.__init__ = __init__
    return cls
