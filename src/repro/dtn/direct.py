"""The direct-delivery (no forwarding) policy — unmodified Cimbiosys.

Items move only when they match the target's filter; with self-address
filters that means delivery happens only on direct sender→recipient
encounters. This is the baseline labelled ``cimbiosys`` in every figure of
the paper, and the ``k = 0`` point of Figures 5 and 6.
"""

from __future__ import annotations

from typing import Optional

from repro.replication.filters import Filter
from repro.replication.items import Item
from repro.replication.routing import Priority, SyncContext

from .policy import DTNPolicy


class DirectDeliveryPolicy(DTNPolicy):
    """Never volunteers out-of-filter items."""

    name = "cimbiosys"

    def to_send(
        self, item: Item, target_filter: Filter, context: SyncContext
    ) -> Optional[Priority]:
        return None
