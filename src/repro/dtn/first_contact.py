"""First Contact routing as a replication policy.

First Contact (Jain, Fall & Patra's single-copy baseline from "Routing in
a delay tolerant network", SIGCOMM'04 — reference [9] of the paper) keeps
exactly **one** copy of each message in the network: a node carrying a
message hands it to the first node it encounters and then *drops its own
copy*, so the message performs a random walk until it hits the
destination. It is the canonical low-overhead / high-delay point of the
DTN design space, and a useful contrast to the copy-budgeted and flooding
families bundled from the paper.

Implementation notes:

* the hand-off's "drop my copy" is a **local expunge** (no tombstone —
  the message must stay alive elsewhere); knowledge still covers the
  version, so the walk never revisits a node, making it a self-avoiding
  walk — strictly better than the classic protocol, courtesy of the
  substrate's at-most-once guarantee;
* the origin keeps its copy until the first hand-off (it authored the
  item; dropping that would risk total loss if the transfer failed —
  we drop only after ``on_items_sent`` confirms *delivery*: over a lossy
  transport the hook reports exactly the entries that reached the
  target, so a copy lost in transit stays stored and re-offerable).
"""

from __future__ import annotations

from typing import List, Optional

from repro.replication.filters import Filter
from repro.replication.items import Item
from repro.replication.routing import Priority, SyncContext

from .policy import DTNPolicy


class FirstContactPolicy(DTNPolicy):
    """Single-copy random-walk forwarding."""

    name = "first-contact"

    def to_send(
        self, item: Item, target_filter: Filter, context: SyncContext
    ) -> Optional[Priority]:
        if not self.is_routable_message(item):
            return None
        destination = item.destination
        if isinstance(destination, str) and destination in self.local_addresses():
            # The walk ended here: a delivered message is never re-walked.
            return None
        return self.normal()

    def on_items_sent(self, items: List[Item], context: SyncContext) -> None:
        """Hand-off complete: drop the local copies of *delivered* messages.

        ``items`` contains only the entries the channel actually carried,
        so an interrupted transfer never expunges the sole copy of a
        message that was lost in transit. Items that matched the target's
        filter were *delivered*, not relayed; the destination's copy is
        theirs and ours is dropped all the same — a delivered message
        needs no further carrying (the origin's copy is released too,
        which is First Contact's single-copy semantics rather than the
        substrate default).
        """
        for item in items:
            stored = self.replica.get_item(item.item_id)
            if stored is None or stored.version != item.version:
                continue
            if self.is_routable_message(stored):
                self.replica.expunge(item.item_id)
