"""Base machinery for DTN routing policies.

:class:`DTNPolicy` extends the platform's
:class:`~repro.replication.routing.RoutingPolicy` with the two bindings
concrete protocols need:

* a reference to the host **replica**, so policies can adjust host-local
  per-copy state (TTLs, copy budgets) through the no-new-version interface
  (:meth:`~repro.replication.replica.Replica.adjust_local`), and
* an **addresses provider** — a callable returning the set of addresses the
  host currently answers to. In the paper's evaluation users are
  re-assigned to buses every day, so a host's address set is dynamic;
  policies that reason about destinations (PROPHET, MaxProp) read it lazily.

A policy instance belongs to exactly one host. Its mutable attributes are
its "persistent routing state" in the paper's terms (Table I, column 2).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional

from repro.replication.filters import AddressFilter, Filter, MultiAddressFilter
from repro.replication.items import KIND_MESSAGE, Item
from repro.replication.replica import Replica
from repro.replication.routing import (
    Priority,
    PriorityClass,
    RoutingPolicy,
    SyncContext,
)

AddressProvider = Callable[[], FrozenSet[str]]


def filter_addresses(filter_: Filter) -> FrozenSet[str]:
    """Extract the address set a filter answers to, where structurally known."""
    if isinstance(filter_, AddressFilter):
        return frozenset((filter_.address,))
    if isinstance(filter_, MultiAddressFilter):
        return frozenset(filter_.addresses)
    return frozenset()


class DTNPolicy(RoutingPolicy):
    """Routing policy bound to a host replica.

    Subclasses read :attr:`replica` for store access and call
    :meth:`local_addresses` for the host's current address set. ``bind`` is
    invoked by the node/emulation layer when the policy is attached; using
    an unbound policy in a sync raises immediately rather than misrouting.
    """

    def __init__(self) -> None:
        self._replica: Optional[Replica] = None
        self._addresses: Optional[AddressProvider] = None

    def bind(
        self, replica: Replica, addresses: Optional[AddressProvider] = None
    ) -> "DTNPolicy":
        """Attach this policy to its host. Returns self for chaining."""
        self._replica = replica
        self._addresses = addresses
        return self

    @property
    def replica(self) -> Replica:
        if self._replica is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to a replica")
        return self._replica

    @property
    def is_bound(self) -> bool:
        return self._replica is not None

    def local_addresses(self) -> FrozenSet[str]:
        """Addresses this host currently answers to.

        Falls back to structural inspection of the replica's filter when no
        provider was supplied at bind time.
        """
        if self._addresses is not None:
            return self._addresses()
        return filter_addresses(self.replica.filter)

    # -- persistence (paper §V-A requirement 1) -----------------------------------

    def persistent_state(self) -> dict:
        """The policy's routing state, as a JSON-representable dict.

        Section V-A: "DTN routing policies can define persistent data
        structures which are serialized to disk and retrieved whenever a
        synchronization operation is invoked." The default is empty —
        Epidemic's and Spray-and-Wait's per-copy state lives on the items
        themselves and persists with the replica's stores.
        """
        return {}

    def restore_state(self, state: dict) -> None:
        """Restore routing state from :meth:`persistent_state` output."""

    # -- shared helpers ---------------------------------------------------------

    @staticmethod
    def is_routable_message(item: Item) -> bool:
        """True for live application messages (not tombstones, not acks)."""
        return not item.deleted and item.kind == KIND_MESSAGE

    @staticmethod
    def normal(cost: float = 0.0) -> Priority:
        return Priority(PriorityClass.NORMAL, cost)
