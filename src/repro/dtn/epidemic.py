"""Epidemic routing as a replication policy (Section V-C1 of the paper).

Epidemic routing (Vahdat & Becker, 2000) floods every message to every
encountered host, bounding propagation with a per-copy hop-count budget
(the "TTL"). The classic protocol's summary-vector duplicate suppression is
unnecessary here: the substrate's knowledge exchange already guarantees
at-most-once delivery, which is exactly the simplification the paper
demonstrates.

Implementation notes, mirroring the paper faithfully:

* The TTL is a **host-local** attribute of each stored copy — it is
  per-copy state and must not replicate as a new item version.
* When ``to_send`` meets a message that has no TTL yet (a message freshly
  authored by the local application), it stamps the stored copy with the
  initial TTL through the no-new-version interface.
* The copy placed in the sync batch carries ``TTL − 1``; the decrement only
  affects the in-flight copy, never the source's stored copy.
* Messages are selected whenever their TTL is positive.
"""

from __future__ import annotations

from typing import Optional

from repro.replication.filters import Filter
from repro.replication.items import Item
from repro.replication.routing import Priority, SyncContext

from .policy import DTNPolicy

#: Host-local attribute holding the remaining hop budget of a stored copy.
TTL_ATTRIBUTE = "epidemic.ttl"

#: Table II: Epidemic TTL = 10.
DEFAULT_TTL = 10


class EpidemicPolicy(DTNPolicy):
    """Bounded flooding: forward every message whose hop budget remains."""

    name = "epidemic"

    def __init__(self, initial_ttl: int = DEFAULT_TTL) -> None:
        super().__init__()
        if initial_ttl < 1:
            raise ValueError("initial_ttl must be >= 1")
        self.initial_ttl = initial_ttl

    def _current_ttl(self, item: Item) -> int:
        """Read the stored copy's TTL, stamping the default if absent."""
        ttl = item.local(TTL_ATTRIBUTE)
        if ttl is None:
            ttl = self.initial_ttl
            self.replica.adjust_local(item.with_local(**{TTL_ATTRIBUTE: ttl}))
        return int(ttl)

    def to_send(
        self, item: Item, target_filter: Filter, context: SyncContext
    ) -> Optional[Priority]:
        if not self.is_routable_message(item):
            return None
        if self._current_ttl(item) > 0:
            return self.normal()
        return None

    def prepare_outgoing(self, item: Item, context: SyncContext) -> Item:
        """Ship the copy with a decremented hop budget.

        Applies to out-of-filter forwards; a copy that is being *delivered*
        (filter match) also gets the decrement, which is harmless — the
        destination does not reflood unless it relays for others. When the
        copy already carries exactly the outgoing TTL (and nothing else
        host-local), it ships as-is — no reallocation.
        """
        stored = self.replica.get_item(item.item_id)
        ttl = self.initial_ttl if stored is None else int(
            stored.local(TTL_ATTRIBUTE, self.initial_ttl)
        )
        outgoing_ttl = max(0, ttl - 1)
        local = item.local_attributes
        if len(local) == 1 and local.get(TTL_ATTRIBUTE) == outgoing_ttl:
            return item
        return item.without_local().with_local(**{TTL_ATTRIBUTE: outgoing_ttl})
