"""Policy registry: name → factory, with the paper's Table II defaults.

Experiment configs refer to policies by name (``"epidemic"``, ``"spray"``,
``"prophet"``, ``"maxprop"``, ``"cimbiosys"``); the registry turns a name
plus optional parameter overrides into a fresh, unbound policy instance.
Every emulated node gets its own instance — policies hold per-host state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Tuple

from .direct import DirectDeliveryPolicy
from .epidemic import DEFAULT_TTL, EpidemicPolicy
from .first_contact import FirstContactPolicy
from .maxprop import DEFAULT_HOP_THRESHOLD, MaxPropPolicy
from .policy import DTNPolicy
from .prophet import (
    DEFAULT_BETA,
    DEFAULT_GAMMA,
    DEFAULT_P_INIT,
    ProphetPolicy,
)
from .spray_wait import DEFAULT_COPIES, SprayAndWaitPolicy

PolicyFactory = Callable[..., DTNPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}

#: Table II of the paper, as data (see repro.experiments.tables for the
#: rendered form).
TABLE_II_PARAMETERS: Dict[str, Dict[str, Any]] = {
    "epidemic": {"initial_ttl": DEFAULT_TTL},
    "spray": {"initial_copies": DEFAULT_COPIES},
    "prophet": {
        "p_init": DEFAULT_P_INIT,
        "beta": DEFAULT_BETA,
        "gamma": DEFAULT_GAMMA,
    },
    "maxprop": {"hop_threshold": DEFAULT_HOP_THRESHOLD},
}

#: Canonical ordering of policies in the paper's figures.
PAPER_POLICY_ORDER: Tuple[str, ...] = (
    "cimbiosys",
    "prophet",
    "spray",
    "epidemic",
    "maxprop",
)


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Register a policy factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def available_policies() -> Tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_policy(name: str, **overrides: Any) -> DTNPolicy:
    """Instantiate a registered policy with Table II defaults plus overrides."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        ) from None
    parameters: Dict[str, Any] = dict(TABLE_II_PARAMETERS.get(name, {}))
    parameters.update(overrides)
    return factory(**parameters)


def default_parameters(name: str) -> Mapping[str, Any]:
    """The Table II parameter set for ``name`` (empty for cimbiosys)."""
    return dict(TABLE_II_PARAMETERS.get(name, {}))


register_policy("cimbiosys", DirectDeliveryPolicy)
register_policy("first-contact", FirstContactPolicy)
register_policy("direct", DirectDeliveryPolicy)
register_policy("epidemic", EpidemicPolicy)
register_policy("spray", SprayAndWaitPolicy)
register_policy("spray-and-wait", SprayAndWaitPolicy)
register_policy("prophet", ProphetPolicy)
register_policy("maxprop", MaxPropPolicy)
