"""Policy registry: name → factory, with the paper's Table II defaults.

Experiment configs refer to policies by name (``"epidemic"``, ``"spray"``,
``"prophet"``, ``"maxprop"``, ``"cimbiosys"``); the registry turns a name
plus optional parameter overrides into a fresh, unbound policy instance.
Every emulated node gets its own instance — policies hold per-host state.

:func:`get_policy` is the single supported entry point for turning a name
into an instance (names are case-insensitive). Constructing policy classes
directly still works but skips the Table II defaults; :func:`create_policy`
is a deprecated alias kept for one release.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, Mapping, Tuple

from .direct import DirectDeliveryPolicy
from .epidemic import DEFAULT_TTL, EpidemicPolicy
from .first_contact import FirstContactPolicy
from .maxprop import DEFAULT_HOP_THRESHOLD, MaxPropPolicy
from .policy import DTNPolicy
from .prophet import (
    DEFAULT_BETA,
    DEFAULT_GAMMA,
    DEFAULT_P_INIT,
    ProphetPolicy,
)
from .spray_wait import DEFAULT_COPIES, SprayAndWaitPolicy

PolicyFactory = Callable[..., DTNPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}

#: Table II of the paper, as data (see repro.experiments.tables for the
#: rendered form).
TABLE_II_PARAMETERS: Dict[str, Dict[str, Any]] = {
    "epidemic": {"initial_ttl": DEFAULT_TTL},
    "spray": {"initial_copies": DEFAULT_COPIES},
    "prophet": {
        "p_init": DEFAULT_P_INIT,
        "beta": DEFAULT_BETA,
        "gamma": DEFAULT_GAMMA,
    },
    "maxprop": {"hop_threshold": DEFAULT_HOP_THRESHOLD},
}

#: Canonical ordering of policies in the paper's figures.
PAPER_POLICY_ORDER: Tuple[str, ...] = (
    "cimbiosys",
    "prophet",
    "spray",
    "epidemic",
    "maxprop",
)


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Register a policy factory under ``name`` (overwrites silently).

    Names are case-insensitive: they are stored, listed, and looked up in
    lowercase.
    """
    _REGISTRY[name.lower()] = factory


def available_policies() -> Tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_policy(name: str, **parameters: Any) -> DTNPolicy:
    """Instantiate the policy registered under ``name``.

    The single supported lookup path: resolves the (case-insensitive)
    name, applies the paper's Table II defaults, then the caller's
    ``parameters`` on top. Unknown names raise :class:`KeyError` listing
    every registered policy.
    """
    key = name.lower()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; registered policies: "
            f"{', '.join(available_policies())}"
        ) from None
    merged: Dict[str, Any] = dict(TABLE_II_PARAMETERS.get(key, {}))
    merged.update(parameters)
    return factory(**merged)


def create_policy(name: str, **overrides: Any) -> DTNPolicy:
    """Deprecated alias of :func:`get_policy` (kept for one release)."""
    warnings.warn(
        "create_policy() is deprecated; use repro.dtn.registry.get_policy()",
        DeprecationWarning,
        stacklevel=2,
    )
    return get_policy(name, **overrides)


def default_parameters(name: str) -> Mapping[str, Any]:
    """The Table II parameter set for ``name`` (empty for cimbiosys)."""
    return dict(TABLE_II_PARAMETERS.get(name, {}))


register_policy("cimbiosys", DirectDeliveryPolicy)
register_policy("first-contact", FirstContactPolicy)
register_policy("direct", DirectDeliveryPolicy)
register_policy("epidemic", EpidemicPolicy)
register_policy("spray", SprayAndWaitPolicy)
register_policy("spray-and-wait", SprayAndWaitPolicy)
register_policy("prophet", ProphetPolicy)
register_policy("maxprop", MaxPropPolicy)
