"""PROPHET as a replication policy (Section V-C3).

PROPHET (Lindgren et al., 2004) limits flooding with *delivery
predictability*: each host ``a`` maintains ``P(a, d) ∈ [0, 1]`` for every
destination ``d``, its estimate of the chance it will eventually be able to
deliver to ``d``. The vector evolves three ways:

* **direct bump** — meeting a host that answers to address ``d`` sets
  ``P ← P + (1 − P) · P_init``;
* **aging** — while disconnected, ``P ← P · γ^k`` with ``k`` the number of
  elapsed time units;
* **transitivity** — upon meeting ``b``, for every ``d`` in ``b``'s vector,
  ``P(a, d) ← max(P(a, d), P(a, b) · P(b, d) · β)``.

Forwarding rule: a message addressed to ``d`` is handed to the encounter
peer only when the *peer's* ``P[d]`` exceeds the local one.

Mapping onto the sync protocol follows the paper exactly: the target's
``generate_req`` embeds its P vector (plus its current address set, which
plays the role of hello-beacon identity) in the sync request; the source's
``process_req`` stores the peer vector and performs the once-per-encounter
update — since each host acts as source exactly once per encounter, each
vector updates once per meeting, as Section V-C3 prescribes.

Destinations here are *addresses* (users), not hosts: meeting a bus bumps
predictability for every user currently riding it. The daily user
re-shuffling of the paper's scenario is why PROPHET struggles on the
DieselNet workload (the paper's footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional

from repro.replication.filters import Filter
from repro.replication.items import Item
from repro.replication.routing import Priority, PriorityClass, SyncContext

from .policy import DTNPolicy

#: Table II: PROPHET parameters.
DEFAULT_P_INIT = 0.75
DEFAULT_BETA = 0.25
DEFAULT_GAMMA = 0.98

#: One aging time unit, in simulation seconds (one hour).
DEFAULT_AGING_UNIT = 3600.0


@dataclass
class ProphetRequest:
    """Routing state a PROPHET target embeds in its sync request."""

    addresses: FrozenSet[str]
    predictabilities: Dict[str, float] = field(default_factory=dict)


class ProphetPolicy(DTNPolicy):
    """Probabilistic forwarding by delivery predictability."""

    name = "prophet"

    def __init__(
        self,
        p_init: float = DEFAULT_P_INIT,
        beta: float = DEFAULT_BETA,
        gamma: float = DEFAULT_GAMMA,
        aging_unit: float = DEFAULT_AGING_UNIT,
    ) -> None:
        super().__init__()
        if not 0.0 < p_init <= 1.0:
            raise ValueError("p_init must be in (0, 1]")
        if not 0.0 <= beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        if aging_unit <= 0:
            raise ValueError("aging_unit must be positive")
        self.p_init = p_init
        self.beta = beta
        self.gamma = gamma
        self.aging_unit = aging_unit
        #: P(self, d) for every destination address d ever relevant.
        self.predictabilities: Dict[str, float] = {}
        self._last_aged_at = 0.0
        #: Peer state captured by ``process_req`` for this sync session.
        self._peer: Optional[ProphetRequest] = None

    # -- vector maintenance ------------------------------------------------------

    def age(self, now: float) -> None:
        """Decay every predictability by γ per elapsed aging unit."""
        elapsed_units = (now - self._last_aged_at) / self.aging_unit
        if elapsed_units <= 0:
            return
        decay = self.gamma**elapsed_units
        for destination in list(self.predictabilities):
            aged = self.predictabilities[destination] * decay
            if aged < 1e-12:
                del self.predictabilities[destination]
            else:
                self.predictabilities[destination] = aged
        self._last_aged_at = now

    def predictability(self, destination: str) -> float:
        return self.predictabilities.get(destination, 0.0)

    def _bump_direct(self, destination: str) -> None:
        current = self.predictabilities.get(destination, 0.0)
        self.predictabilities[destination] = current + (1.0 - current) * self.p_init

    def _apply_transitivity(self, peer: ProphetRequest) -> None:
        # P(a, b): the best predictability toward any of the peer's
        # current addresses — the peer itself was just met, so after the
        # direct bump this is at least p_init.
        p_ab = max(
            (self.predictabilities.get(address, 0.0) for address in peer.addresses),
            default=0.0,
        )
        if p_ab <= 0.0:
            return
        for destination, p_bd in peer.predictabilities.items():
            if destination in peer.addresses:
                continue
            transitive = p_ab * p_bd * self.beta
            if transitive > self.predictabilities.get(destination, 0.0):
                self.predictabilities[destination] = transitive

    # -- persistence -------------------------------------------------------------

    def persistent_state(self) -> dict:
        return {
            "predictabilities": dict(self.predictabilities),
            "last_aged_at": self._last_aged_at,
        }

    def restore_state(self, state: dict) -> None:
        self.predictabilities = {
            key: float(value)
            for key, value in state.get("predictabilities", {}).items()
        }
        self._last_aged_at = float(state.get("last_aged_at", 0.0))

    # -- policy interface -----------------------------------------------------------

    def generate_req(self, context: SyncContext) -> ProphetRequest:
        self.age(context.now)
        return ProphetRequest(
            addresses=self.local_addresses(),
            predictabilities=dict(self.predictabilities),
        )

    def process_req(self, routing_state: Any, context: SyncContext) -> None:
        if not isinstance(routing_state, ProphetRequest):
            self._peer = None
            return
        self._peer = routing_state
        # The once-per-encounter vector update (source role only).
        self.age(context.now)
        for address in routing_state.addresses:
            self._bump_direct(address)
        self._apply_transitivity(routing_state)

    def to_send(
        self, item: Item, target_filter: Filter, context: SyncContext
    ) -> Optional[Priority]:
        if not self.is_routable_message(item) or self._peer is None:
            return None
        destination = item.destination
        if isinstance(destination, str):
            destinations = (destination,)
        elif isinstance(destination, (tuple, list)) and destination:
            destinations = tuple(destination)  # multicast: any recipient
        else:
            return None
        best = None
        for address in destinations:
            peer_p = self._peer.predictabilities.get(address, 0.0)
            if peer_p > self.predictability(address):
                if best is None or peer_p > best:
                    best = peer_p
        if best is not None:
            # Higher peer predictability transmits first (negated cost:
            # Priority sorts ascending by cost inside a class).
            return Priority(PriorityClass.NORMAL, -best)
        return None
