"""MaxProp as a replication policy (Section V-C4).

MaxProp (Burgess et al., INFOCOM'06) is the history-based protocol designed
for the very DieselNet testbed the paper's traces come from. Each node
maintains an incidence-based probability distribution over which node it
will meet next; nodes gossip these vectors so that every node gradually
assembles a (stale) picture of the whole contact graph. For each carried
message, a node scores the likelihood of delivery along every path with a
modified Dijkstra search where the cost of a hop ``i → j`` is the
probability that the meeting does *not* occur, ``1 − p_i(j)``; lower total
cost is better.

Transmission order during an encounter (the reason the sync engine supports
priorities at all):

1. messages addressed to the neighbour itself — handled by the platform's
   ``FILTER_MATCH`` band;
2. "new" messages whose hop count is below a threshold, ordered by hop
   count (:attr:`PriorityClass.HIGH`, cost = hop count);
3. everything else ordered by path cost (:attr:`PriorityClass.NORMAL`,
   cost = path cost).

MaxProp also floods **delivery acknowledgements** so relays can clear
buffers of already-delivered messages; acks ride along in the routing state
of sync requests, and a relay that learns of an ack expunges its copy
(locally, without tombstone traffic).

Because message destinations are user *addresses* while contact history is
between *hosts*, the policy additionally gossips a freshness-stamped
``address → host`` directory, learned from each host's own address
announcements. This substitutes for MaxProp's assumption that destinations
are nodes, and degrades gracefully when users migrate between buses (the
directory entry is simply stale until refreshed).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.replication.events import BaseReplicaObserver
from repro.replication.filters import Filter
from repro.replication.ids import ItemId
from repro.replication.items import Item
from repro.replication.replica import Replica
from repro.replication.routing import Priority, PriorityClass, SyncContext

from .policy import AddressProvider, DTNPolicy

#: Host-local attribute carrying the hop list of a copy (tuple of node names).
HOPLIST_ATTRIBUTE = "maxprop.hops"

#: Table II: MaxProp hop-count priority threshold = 3.
DEFAULT_HOP_THRESHOLD = 3


@dataclass
class MaxPropRequest:
    """Routing state a MaxProp target embeds in its sync request."""

    node: str
    addresses: FrozenSet[str]
    #: node → (peer node → meeting probability); includes the sender's own.
    vectors: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: address → (host node, freshness timestamp).
    locations: Dict[str, Tuple[str, float]] = field(default_factory=dict)
    #: item ids known to have reached their destinations.
    acks: FrozenSet[ItemId] = frozenset()


class _DeliveryWatcher(BaseReplicaObserver):
    """Feeds local deliveries back into the policy's ack set."""

    def __init__(self, policy: "MaxPropPolicy") -> None:
        self._policy = policy

    def on_store(self, item: Item, matched_filter: bool) -> None:
        if matched_filter:
            self._policy.note_possible_delivery(item)


class MaxPropPolicy(DTNPolicy):
    """History-gossiping, cost-ranked flooding with delivery acks."""

    name = "maxprop"

    def __init__(self, hop_threshold: int = DEFAULT_HOP_THRESHOLD) -> None:
        super().__init__()
        if hop_threshold < 0:
            raise ValueError("hop_threshold must be >= 0")
        self.hop_threshold = hop_threshold
        #: Raw meeting counts with each peer node (normalised on demand).
        self.meeting_counts: Dict[str, float] = {}
        #: Gossiped probability vectors of other nodes.
        self.known_vectors: Dict[str, Dict[str, float]] = {}
        #: Gossiped address directory: address → (host node, freshness).
        self.locations: Dict[str, Tuple[str, float]] = {}
        #: Item ids confirmed delivered (flooded acks).
        self.acks: Set[ItemId] = set()
        self._peer: Optional[MaxPropRequest] = None
        #: Memoised all-destinations Dijkstra result, invalidated whenever
        #: the contact-graph picture changes (``to_send`` runs once per
        #: carried item per sync, so recomputing per call would dominate
        #: emulation time).
        self._distance_cache: Optional[Dict[str, float]] = None

    def bind(
        self, replica: Replica, addresses: Optional[AddressProvider] = None
    ) -> "MaxPropPolicy":
        super().bind(replica, addresses)
        replica.register_observer(_DeliveryWatcher(self))
        return self

    # -- meeting probabilities --------------------------------------------------

    def own_vector(self) -> Dict[str, float]:
        """This node's normalised next-meeting probability distribution."""
        total = sum(self.meeting_counts.values())
        if total <= 0:
            return {}
        return {peer: count / total for peer, count in self.meeting_counts.items()}

    def _record_meeting(self, peer_node: str) -> None:
        self.meeting_counts[peer_node] = self.meeting_counts.get(peer_node, 0.0) + 1.0

    # -- acknowledgements -----------------------------------------------------------

    def note_possible_delivery(self, item: Item) -> None:
        """Observer hook: an item landed in the in-filter store.

        Only items actually addressed to one of this host's current
        addresses count as deliveries (a multi-address filter also matches
        relayed mail, which must not be acked).
        """
        if item.deleted:
            return
        destination = item.destination
        if isinstance(destination, str) and destination in self.local_addresses():
            self.acks.add(item.item_id)

    def _absorb_acks(self, acks: FrozenSet[ItemId]) -> None:
        new_acks = acks - self.acks
        if not new_acks:
            return
        self.acks |= new_acks
        for item_id in new_acks:
            self._expunge_if_relayed(item_id)

    def _expunge_if_relayed(self, item_id: ItemId) -> None:
        item = self.replica.get_item(item_id)
        if item is None:
            return
        authored_here = item.version.replica == self.replica.replica_id
        if not authored_here and not self.replica.filter.matches(item):
            self.replica.expunge(item_id)

    # -- gossip merge -------------------------------------------------------------------

    def _merge_gossip(self, peer: MaxPropRequest) -> None:
        # The peer's own vector is authoritative for the peer.
        self.known_vectors[peer.node] = dict(peer.vectors.get(peer.node, {}))
        for node, vector in peer.vectors.items():
            if node == peer.node or node == self.replica.replica_id.name:
                continue
            # Second-hand vectors: accept when we have nothing better.
            if node not in self.known_vectors:
                self.known_vectors[node] = dict(vector)
        for address, (node, stamp) in peer.locations.items():
            mine = self.locations.get(address)
            if mine is None or stamp > mine[1]:
                self.locations[address] = (node, stamp)

    # -- path costs -------------------------------------------------------------------------

    def _all_path_costs(self) -> Dict[str, float]:
        """Single-source modified Dijkstra from this node to every known node.

        Hop cost ``i → j`` is ``1 − p_i(j)`` (the probability the meeting
        fails to happen); a path's cost is the sum over its hops. The full
        distance map is memoised because the graph only changes when gossip
        arrives (:meth:`process_req`) or a meeting is recorded.
        """
        if self._distance_cache is not None:
            return self._distance_cache
        start = self.replica.replica_id.name
        graph: Dict[str, Dict[str, float]] = dict(self.known_vectors)
        graph[start] = self.own_vector()
        distances: Dict[str, float] = {start: 0.0}
        settled: Dict[str, float] = {}
        frontier: List[Tuple[float, str]] = [(0.0, start)]
        while frontier:
            cost, node = heapq.heappop(frontier)
            if node in settled:
                continue
            settled[node] = cost
            for neighbour, probability in graph.get(node, {}).items():
                edge = 1.0 - min(max(probability, 0.0), 1.0)
                new_cost = cost + edge
                if new_cost < distances.get(neighbour, float("inf")):
                    distances[neighbour] = new_cost
                    heapq.heappush(frontier, (new_cost, neighbour))
        self._distance_cache = settled
        return settled

    def path_cost_to_node(self, destination_node: str) -> Optional[float]:
        """Least path cost from here to ``destination_node`` (None if unreachable)."""
        return self._all_path_costs().get(destination_node)

    def path_cost_to_address(self, address: str) -> Optional[float]:
        """Least path cost to the host currently believed to hold ``address``."""
        location = self.locations.get(address)
        if location is None:
            return None
        return self.path_cost_to_node(location[0])

    # -- persistence -------------------------------------------------------------------------

    def persistent_state(self) -> dict:
        from repro.replication.codec import encode_item_id

        return {
            "meeting_counts": dict(self.meeting_counts),
            "known_vectors": {
                node: dict(vector)
                for node, vector in self.known_vectors.items()
            },
            "locations": {
                address: [node, stamp]
                for address, (node, stamp) in self.locations.items()
            },
            "acks": [encode_item_id(item_id) for item_id in sorted(self.acks)],
        }

    def restore_state(self, state: dict) -> None:
        from repro.replication.codec import decode_item_id

        self.meeting_counts = {
            node: float(count)
            for node, count in state.get("meeting_counts", {}).items()
        }
        self.known_vectors = {
            node: {k: float(v) for k, v in vector.items()}
            for node, vector in state.get("known_vectors", {}).items()
        }
        self.locations = {
            address: (node, float(stamp))
            for address, (node, stamp) in state.get("locations", {}).items()
        }
        self.acks = {decode_item_id(e) for e in state.get("acks", [])}
        self._distance_cache = None

    # -- policy interface -----------------------------------------------------------------------

    def generate_req(self, context: SyncContext) -> MaxPropRequest:
        vectors = dict(self.known_vectors)
        vectors[self.replica.replica_id.name] = self.own_vector()
        locations = dict(self.locations)
        for address in self.local_addresses():
            locations[address] = (self.replica.replica_id.name, context.now)
        return MaxPropRequest(
            node=self.replica.replica_id.name,
            addresses=self.local_addresses(),
            vectors=vectors,
            locations=locations,
            acks=frozenset(self.acks),
        )

    def process_req(self, routing_state: Any, context: SyncContext) -> None:
        if not isinstance(routing_state, MaxPropRequest):
            self._peer = None
            return
        self._peer = routing_state
        # Once-per-encounter history update (source role only, as with
        # PROPHET: each host is source exactly once per encounter).
        self._record_meeting(routing_state.node)
        self._merge_gossip(routing_state)
        self._absorb_acks(routing_state.acks)
        self._distance_cache = None

    def to_send(
        self, item: Item, target_filter: Filter, context: SyncContext
    ) -> Optional[Priority]:
        if not self.is_routable_message(item):
            return None
        if item.item_id in self.acks:
            self._expunge_if_relayed(item.item_id)
            return None
        hops = len(item.local(HOPLIST_ATTRIBUTE, ()))
        if hops < self.hop_threshold:
            return Priority(PriorityClass.HIGH, float(hops))
        destination = item.destination
        cost = (
            self.path_cost_to_address(destination)
            if isinstance(destination, str)
            else None
        )
        if cost is None:
            # Unknown destination location: still flood, but last in line.
            return Priority(PriorityClass.LOW, float(hops))
        return Priority(PriorityClass.NORMAL, cost)

    def prepare_outgoing(self, item: Item, context: SyncContext) -> Item:
        """Extend the copy's hop list with this node before it ships.

        When the copy already carries exactly the outgoing hop list (this
        node was already recorded, nothing else host-local), it ships
        unchanged — no reallocation.
        """
        stored = self.replica.get_item(item.item_id)
        hops: Tuple[str, ...] = ()
        if stored is not None:
            hops = tuple(stored.local(HOPLIST_ATTRIBUTE, ()))
        me = self.replica.replica_id.name
        if me not in hops:
            hops = hops + (me,)
        local = item.local_attributes
        if len(local) == 1 and local.get(HOPLIST_ATTRIBUTE) == hops:
            return item
        return item.without_local().with_local(**{HOPLIST_ATTRIBUTE: hops})
