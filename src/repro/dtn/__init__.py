"""Pluggable DTN routing policies for the replication substrate.

Implements the paper's Section V: the ``IDTNPolicy`` binding
(:class:`DTNPolicy`) and the four representative routing protocols —
Epidemic routing, Spray and Wait, PROPHET, and MaxProp — plus the
direct-delivery baseline (unmodified Cimbiosys behaviour) and a registry
keyed by policy name with Table II parameter defaults.
"""

from . import codec as _codec  # registers PROPHET/MaxProp wire codecs
from .direct import DirectDeliveryPolicy
from .first_contact import FirstContactPolicy
from .epidemic import DEFAULT_TTL, TTL_ATTRIBUTE, EpidemicPolicy
from .maxprop import (
    DEFAULT_HOP_THRESHOLD,
    HOPLIST_ATTRIBUTE,
    MaxPropPolicy,
    MaxPropRequest,
)
from .policy import AddressProvider, DTNPolicy, filter_addresses
from .prophet import (
    DEFAULT_AGING_UNIT,
    DEFAULT_BETA,
    DEFAULT_GAMMA,
    DEFAULT_P_INIT,
    ProphetPolicy,
    ProphetRequest,
)
from .registry import (
    PAPER_POLICY_ORDER,
    TABLE_II_PARAMETERS,
    available_policies,
    create_policy,
    default_parameters,
    get_policy,
    register_policy,
)
from .spray_wait import COPIES_ATTRIBUTE, DEFAULT_COPIES, SprayAndWaitPolicy

__all__ = [
    "AddressProvider",
    "COPIES_ATTRIBUTE",
    "DEFAULT_AGING_UNIT",
    "DEFAULT_BETA",
    "DEFAULT_COPIES",
    "DEFAULT_GAMMA",
    "DEFAULT_HOP_THRESHOLD",
    "DEFAULT_P_INIT",
    "DEFAULT_TTL",
    "DTNPolicy",
    "DirectDeliveryPolicy",
    "EpidemicPolicy",
    "FirstContactPolicy",
    "HOPLIST_ATTRIBUTE",
    "MaxPropPolicy",
    "MaxPropRequest",
    "PAPER_POLICY_ORDER",
    "ProphetPolicy",
    "ProphetRequest",
    "SprayAndWaitPolicy",
    "TABLE_II_PARAMETERS",
    "TTL_ATTRIBUTE",
    "available_policies",
    "create_policy",
    "default_parameters",
    "filter_addresses",
    "get_policy",
    "register_policy",
]
