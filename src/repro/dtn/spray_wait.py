"""Binary Spray and Wait as a replication policy (Section V-C2).

Spray and Wait (Spyropoulos et al., WDTN'05) bounds flooding by budget
rather than history: the source injects ``L`` logical copies of each
message; a host holding ``n ≥ 2`` copies hands **half** of them to any host
it meets (the *spray* phase, a binary tree rooted at the source); a host
holding a single copy waits to meet the destination directly (the *wait*
phase).

As with Epidemic, the original protocol's duplicate-suppression handshake
is subsumed by the substrate's knowledge exchange.

Implementation notes:

* The copy budget is a **host-local** attribute, initialised lazily on the
  stored copy when the policy first considers the message, through the
  no-new-version interface (the paper calls out that this local adjustment
  must not make the item look updated).
* On a forward of a copy holding ``n``: the in-batch copy carries
  ``⌊n/2⌋`` and the stored copy is rewritten to ``⌈n/2⌉``, conserving the
  total budget exactly (an invariant the property tests check).
* Deliveries (filter-matched sends) do not halve the budget: the wait-phase
  single copy may always be handed to its destination.
"""

from __future__ import annotations

from typing import List, Optional

from repro.replication.filters import Filter
from repro.replication.items import Item
from repro.replication.routing import Priority, SyncContext

from .policy import DTNPolicy

#: Host-local attribute holding the logical copy budget of a stored copy.
COPIES_ATTRIBUTE = "spray.copies"

#: Table II: Spray and Wait copies per message = 8.
DEFAULT_COPIES = 8


class SprayAndWaitPolicy(DTNPolicy):
    """Binary spray: forward while holding at least two logical copies."""

    name = "spray"

    def __init__(self, initial_copies: int = DEFAULT_COPIES) -> None:
        super().__init__()
        if initial_copies < 1:
            raise ValueError("initial_copies must be >= 1")
        self.initial_copies = initial_copies

    def _current_copies(self, item: Item) -> int:
        """Read the stored copy's budget, stamping the initial value if absent."""
        copies = item.local(COPIES_ATTRIBUTE)
        if copies is None:
            copies = self.initial_copies
            self.replica.adjust_local(item.with_local(**{COPIES_ATTRIBUTE: copies}))
        return int(copies)

    def to_send(
        self, item: Item, target_filter: Filter, context: SyncContext
    ) -> Optional[Priority]:
        if not self.is_routable_message(item):
            return None
        if self._current_copies(item) >= 2:
            return self.normal()
        return None

    def prepare_outgoing(self, item: Item, context: SyncContext) -> Item:
        stored = self.replica.get_item(item.item_id)
        if stored is None:
            return item.without_local()
        copies = stored.local(COPIES_ATTRIBUTE)
        if copies is None or int(copies) < 2:
            # A delivery (or a message never sprayed): hand over a single
            # terminal copy; the stored budget is untouched.
            shipped = 1
        else:
            shipped = int(copies) // 2
        local = item.local_attributes
        if len(local) == 1 and local.get(COPIES_ATTRIBUTE) == shipped:
            # Identity fast path — the wait-phase common case: the stored
            # single-copy state is exactly what goes on the wire.
            return item
        return item.without_local().with_local(**{COPIES_ATTRIBUTE: shipped})

    def on_items_sent(self, items: List[Item], context: SyncContext) -> None:
        """Halve the stored budget of every *delivered* spray (keep ⌈n/2⌉).

        Entries a faulty transport lost never reach this hook, so their
        budget stays intact locally — no copies are destroyed without a
        replica receiving them, keeping the total budget conserved.
        """
        for sent in items:
            stored = self.replica.get_item(sent.item_id)
            if stored is None or stored.version != sent.version:
                continue
            copies = stored.local(COPIES_ATTRIBUTE)
            if copies is None or int(copies) < 2:
                continue
            remaining = int(copies) - int(copies) // 2
            self.replica.adjust_local(
                stored.with_local(**{COPIES_ATTRIBUTE: remaining})
            )
