"""Wire codecs for the bundled routing-policy states.

Registers PROPHET's and MaxProp's sync-request payloads with the
platform's routing-state codec registry, so full sync sessions round-trip
through the JSON wire format. Importing this module is enough; it is
imported by :mod:`repro.dtn` at package load.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.replication.codec import (
    decode_item_id,
    encode_item_id,
    register_routing_codec,
)

from .maxprop import MaxPropRequest
from .prophet import ProphetRequest


def _encode_prophet(state: ProphetRequest) -> Dict[str, Any]:
    return {
        "addresses": sorted(state.addresses),
        "p": dict(state.predictabilities),
    }


def _decode_prophet(data: Dict[str, Any]) -> ProphetRequest:
    return ProphetRequest(
        addresses=frozenset(data["addresses"]),
        predictabilities={k: float(v) for k, v in data["p"].items()},
    )


def _encode_maxprop(state: MaxPropRequest) -> Dict[str, Any]:
    return {
        "node": state.node,
        "addresses": sorted(state.addresses),
        "vectors": {
            node: dict(vector) for node, vector in state.vectors.items()
        },
        "locations": {
            address: [node, stamp]
            for address, (node, stamp) in state.locations.items()
        },
        "acks": [encode_item_id(item_id) for item_id in sorted(state.acks)],
    }


def _decode_maxprop(data: Dict[str, Any]) -> MaxPropRequest:
    return MaxPropRequest(
        node=data["node"],
        addresses=frozenset(data["addresses"]),
        vectors={
            node: {k: float(v) for k, v in vector.items()}
            for node, vector in data["vectors"].items()
        },
        locations={
            address: (node, float(stamp))
            for address, (node, stamp) in data["locations"].items()
        },
        acks=frozenset(decode_item_id(e) for e in data["acks"]),
    )


register_routing_codec(
    "prophet", ProphetRequest, _encode_prophet, _decode_prophet
)
register_routing_codec(
    "maxprop", MaxPropRequest, _encode_maxprop, _decode_maxprop
)
