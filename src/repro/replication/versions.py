"""Version vectors — the "knowledge" metadata of the replication protocol.

Cimbiosys-style replication keeps, per replica, a compact summary of every
item version the replica has ever learned about. The summary is a *version
vector*: for each authoring replica it records which of that replica's
version counters are known. Because counters are issued contiguously, most
replicas' knowledge of a peer is a single prefix ``1..n``, which the vector
stores as one integer; out-of-order learning (possible when versions arrive
via different relay paths) is handled by keeping an extra set of counters
beyond the prefix and re-compacting whenever the gap closes.

Knowledge is what makes synchronisation cheap: two replicas exchange their
vectors (size proportional to the number of *replicas*, not items) and each
then knows exactly which of its stored versions the other lacks. It is also
what guarantees **at-most-once delivery** — a version covered by the
target's knowledge is never retransmitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Set, Tuple

from repro._compat import DATACLASS_SLOTS

from .ids import ReplicaId, Version

#: Shared empty set returned by :meth:`VersionVector.extra_counters` when a
#: replica has no out-of-order counters — avoids allocating per lookup on
#: the sync hot path.
_NO_EXTRAS: FrozenSet[int] = frozenset()


@dataclass(frozen=True, **DATACLASS_SLOTS)
class _Entry:
    """Knowledge about one authoring replica: prefix + extras.

    ``prefix`` means counters ``1..prefix`` inclusive are all known.
    ``extras`` are known counters strictly above ``prefix + 1`` (i.e. there
    is a gap). The representation is canonical: extras never contains
    ``prefix + 1`` (that would extend the prefix) and never anything below.
    """

    prefix: int = 0
    extras: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if self.prefix < 0:
            raise ValueError("prefix must be non-negative")
        if any(c <= self.prefix for c in self.extras):
            raise ValueError("extras must lie strictly above the prefix")
        if self.prefix + 1 in self.extras:
            raise ValueError("non-canonical entry: extras touch the prefix")

    @staticmethod
    def canonical(prefix: int, extras: Iterable[int]) -> "_Entry":
        """Build a canonical entry, folding adjacent extras into the prefix."""
        pending: Set[int] = {c for c in extras if c > prefix}
        while prefix + 1 in pending:
            prefix += 1
            pending.discard(prefix)
        return _Entry(prefix, frozenset(pending))

    def contains(self, counter: int) -> bool:
        return counter <= self.prefix or counter in self.extras

    def add(self, counter: int) -> "_Entry":
        if self.contains(counter):
            return self
        return _Entry.canonical(self.prefix, self.extras | {counter})

    def merge(self, other: "_Entry") -> "_Entry":
        if other.prefix <= self.prefix and all(
            self.contains(c) for c in other.extras
        ):
            return self
        prefix = max(self.prefix, other.prefix)
        return _Entry.canonical(prefix, self.extras | other.extras)

    def dominates(self, other: "_Entry") -> bool:
        """True if every counter in ``other`` is contained in ``self``."""
        if other.prefix > self.prefix and not all(
            self.contains(c) for c in range(self.prefix + 1, other.prefix + 1)
        ):
            return False
        return all(self.contains(c) for c in other.extras)

    def counters(self) -> Iterator[int]:
        """Iterate every known counter (ascending). Use sparingly: O(n)."""
        yield from range(1, self.prefix + 1)
        yield from sorted(self.extras)

    @property
    def is_empty(self) -> bool:
        return self.prefix == 0 and not self.extras


class VersionVector:
    """A compact, immutable-by-convention set of :class:`Version` values.

    The public API treats the vector as a set of versions with fast
    ``contains`` / ``add`` / ``merge`` / ``dominates``. Mutating methods
    return ``None`` and update in place (replicas own their knowledge);
    use :meth:`copy` to snapshot before handing a vector to a peer.

    Snapshots are **copy-on-write**: :meth:`copy` is O(1) — it shares the
    underlying entry table and the first mutation on either side pays the
    O(replicas) detach. Entries themselves are immutable, so sharing the
    table is safe; a sync request's knowledge snapshot therefore costs
    nothing unless the replica learns something mid-session.

    ``_wire_size`` memoises the vector's encoded size (written by
    :func:`repro.replication.codec.knowledge_wire_size`, the same pattern
    as the per-item wire-size memo). Snapshots inherit it — they share
    the entry table, so they share the size — and every mutating path
    clears it on the side that actually wrote.
    """

    __slots__ = ("_entries", "_shared", "_wire_size")

    def __init__(self, entries: Mapping[ReplicaId, _Entry] | None = None) -> None:
        self._entries: Dict[ReplicaId, _Entry] = dict(entries or {})
        self._shared = False
        self._wire_size: "int | None" = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def empty(cls) -> "VersionVector":
        return cls()

    @classmethod
    def from_versions(cls, versions: Iterable[Version]) -> "VersionVector":
        vector = cls()
        for version in versions:
            vector.add(version)
        return vector

    def copy(self) -> "VersionVector":
        """An O(1) copy-on-write snapshot of this vector."""
        snapshot = VersionVector.__new__(VersionVector)
        snapshot._entries = self._entries
        snapshot._shared = True
        snapshot._wire_size = self._wire_size
        self._shared = True
        return snapshot

    def _detach(self) -> None:
        """Take private ownership of the entry table before a write."""
        if self._shared:
            self._entries = dict(self._entries)
            self._shared = False

    # -- set operations --------------------------------------------------------

    def contains(self, version: Version) -> bool:
        """True if this vector covers ``version``."""
        entry = self._entries.get(version.replica)
        return entry is not None and entry.contains(version.counter)

    __contains__ = contains

    def add(self, version: Version) -> None:
        """Record ``version`` as known."""
        entry = self._entries.get(version.replica, _Entry())
        updated = entry.add(version.counter)
        if updated is not entry:
            self._detach()
            self._entries[version.replica] = updated
            self._wire_size = None

    def merge(self, other: "VersionVector") -> None:
        """Union ``other`` into this vector (in place)."""
        for replica, other_entry in other._entries.items():
            mine = self._entries.get(replica)
            merged = other_entry if mine is None else mine.merge(other_entry)
            if merged is not mine:
                self._detach()
                self._entries[replica] = merged
                self._wire_size = None

    def merged(self, other: "VersionVector") -> "VersionVector":
        """Return a new vector equal to the union of both operands."""
        result = self.copy()
        result.merge(other)
        return result

    def clamped(self, replica: ReplicaId, maximum: int) -> "VersionVector":
        """A copy whose entry for ``replica`` keeps only counters ≤ ``maximum``.

        Used by protocol validation to sanitise fabricated knowledge: a
        peer claiming to know versions a replica never authored gets its
        claim clipped to the authored range before the claim is used for
        anything. Returns ``self`` unchanged when nothing exceeds the
        bound, so the honest path allocates nothing.
        """
        entry = self._entries.get(replica)
        if entry is None or (
            entry.prefix <= maximum
            and all(counter <= maximum for counter in entry.extras)
        ):
            return self
        clamp = self.copy()
        clamp._detach()
        clamp._entries[replica] = _Entry.canonical(
            min(entry.prefix, maximum),
            (counter for counter in entry.extras if counter <= maximum),
        )
        clamp._wire_size = None
        return clamp

    def dominates(self, other: "VersionVector") -> bool:
        """True if every version in ``other`` is contained in ``self``."""
        for replica, other_entry in other._entries.items():
            mine = self._entries.get(replica)
            if mine is None:
                if not other_entry.is_empty:
                    return False
            elif not mine.dominates(other_entry):
                return False
        return True

    # -- introspection ----------------------------------------------------------

    def known_counter_prefix(self, replica: ReplicaId) -> int:
        """The contiguous prefix of counters known for ``replica``."""
        entry = self._entries.get(replica)
        return entry.prefix if entry is not None else 0

    def extra_counters(self, replica: ReplicaId) -> FrozenSet[int]:
        """Out-of-order counters known for ``replica`` beyond its prefix.

        Together with :meth:`known_counter_prefix` this exposes the exact
        shape of an entry, which is what lets a version-indexed store
        enumerate only the counters this vector does *not* cover instead
        of probing :meth:`contains` per stored item.
        """
        entry = self._entries.get(replica)
        return entry.extras if entry is not None else _NO_EXTRAS

    def replicas(self) -> Tuple[ReplicaId, ...]:
        """The authoring replicas this vector has knowledge about (sorted)."""
        return tuple(sorted(self._entries))

    def versions(self) -> Iterator[Version]:
        """Iterate every covered version. O(total counters); for tests."""
        for replica in sorted(self._entries):
            for counter in self._entries[replica].counters():
                yield Version(replica, counter)

    def size_in_entries(self) -> int:
        """Metadata footprint: number of (replica, entry) pairs stored.

        The paper's "compact metadata" claim is that this grows with the
        number of replicas, not items; the metrics module samples it.
        """
        return len(self._entries)

    def size_in_extras(self) -> int:
        """Total non-contiguous counters retained (0 when fully compacted)."""
        return sum(len(entry.extras) for entry in self._entries.values())

    def size_in_versions(self) -> int:
        """Total versions covered — the member count a Bloom digest of
        this vector is sized for. O(replicas), not O(versions)."""
        return sum(
            entry.prefix + len(entry.extras)
            for entry in self._entries.values()
        )

    # -- dunder plumbing ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        mine = {r: e for r, e in self._entries.items() if not e.is_empty}
        theirs = {r: e for r, e in other._entries.items() if not e.is_empty}
        return mine == theirs

    def __bool__(self) -> bool:
        return any(not e.is_empty for e in self._entries.values())

    def __repr__(self) -> str:
        parts = []
        for replica in sorted(self._entries):
            entry = self._entries[replica]
            if entry.is_empty:
                continue
            text = f"{replica.name}<= {entry.prefix}"
            if entry.extras:
                text += "+" + ",".join(str(c) for c in sorted(entry.extras))
            parts.append(text)
        return f"VersionVector({'; '.join(parts)})"
