"""Transport-agnostic sync sessions: the protocol flow as an object.

:func:`~repro.replication.sync.perform_sync` and
:func:`~repro.replication.sync.perform_encounter` grew one positional
flag per feature (bandwidth caps, fault transports, index/cache toggles,
knowledge digests). This module re-packages the same flow behind three
keyword-only objects:

* :class:`SessionConfig` — the protocol knobs, serialisable like every
  other config object (``to_dict``/``from_dict`` round-trip);
* :class:`SyncSession` — one sync (target pulls from source). With both
  endpoints local, :meth:`SyncSession.run` reproduces ``perform_sync``
  draw-for-draw. With only *one* endpoint local — the networked case,
  where source and target live in different OS processes — the stepwise
  halves (:meth:`build_request` / :meth:`apply` on the target side,
  :meth:`build_response` / :meth:`stamp` / :meth:`confirm_sent` on the
  source side) expose each protocol step so a byte transport can carry
  the encoded frames between them;
* :class:`EncounterSession` — two syncs with alternating roles and a
  shared bandwidth budget, exactly the paper's encounter shape.

The discrete-event emulator and the asyncio transport in
:mod:`repro.net` both drive these same session objects; the old free
functions remain as thin :class:`DeprecationWarning` shims.

A channel is anything satisfying the :class:`Transport` protocol —
:class:`repro.faults.FaultyTransport` already does, and so does the
delivery half of a live socket connection.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro._compat import keyword_only_dataclass

from .digest import DigestConfig
from .ids import ReplicaId
from .integrity import item_checksum
from .routing import SyncContext
from .sync import (
    BatchEntry,
    SyncEndpoint,
    SyncRequest,
    SyncStats,
    _each_entry_once,
    apply_batch,
    build_batch,
    build_request,
)


@runtime_checkable
class Transport(Protocol):
    """What a sync session requires of a delivery channel.

    ``deliver(batch)`` carries a checksum-stamped batch toward the target
    and returns an outcome object with (at least) three attributes:
    ``delivered`` — the entries that arrived, in order, possibly
    damaged/duplicated; ``truncated`` — True when the stream was cut
    mid-batch; ``lost`` — how many sent entries never arrived. An
    optional ``confirmed`` attribute narrows the ``on_items_sent``
    accounting to entries that arrived *intact* (each once), and an
    optional ``corrupt_request(request)`` method lets the channel tamper
    with the sync request before the source sees it.

    :class:`repro.faults.FaultyTransport` and its
    :class:`~repro.faults.DeliveryOutcome` satisfy this protocol
    unchanged; it formalises the duck type ``perform_sync`` always
    accepted.
    """

    def deliver(self, batch: Sequence[Any]) -> Any:
        """Carry ``batch`` across the channel; return the outcome."""
        ...


@keyword_only_dataclass
@dataclass(frozen=True)
class SessionConfig:
    """The protocol knobs of one sync/encounter session.

    ``max_items`` is the bandwidth cap (per sync when given to a
    :class:`SyncSession`, per encounter when given to an
    :class:`EncounterSession`); ``use_index``/``use_cache`` select the
    optimised enumeration and checksum paths (the ``False`` legs exist
    as measured baselines); ``digest`` arms the compact knowledge-digest
    mode (``docs/protocol.md`` §8).
    """

    max_items: Optional[int] = None
    use_index: bool = True
    use_cache: bool = True
    digest: Optional[DigestConfig] = None

    def __post_init__(self) -> None:
        if self.max_items is not None and self.max_items < 0:
            raise ValueError("max_items must be non-negative or None")

    def to_dict(self) -> dict:
        """A JSON-safe dict; ``from_dict(to_dict())`` reconstructs exactly."""
        return {
            "max_items": self.max_items,
            "use_index": self.use_index,
            "use_cache": self.use_cache,
            "digest": (
                None
                if self.digest is None
                else {
                    "fp_rate": self.digest.fp_rate,
                    "force": self.digest.force,
                }
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionConfig":
        digest = data.get("digest")
        return cls(
            max_items=data.get("max_items"),
            use_index=data.get("use_index", True),
            use_cache=data.get("use_cache", True),
            digest=(
                None
                if digest is None
                else DigestConfig(
                    fp_rate=digest["fp_rate"], force=digest.get("force", False)
                )
            ),
        )


class SyncSession:
    """One sync session: ``target`` pulls from ``source``.

    Constructed keyword-only. For a fully local session pass both
    endpoints; :meth:`run` then executes the whole Figure 4 flow
    (identically to the deprecated ``perform_sync``). For a networked
    session, construct a *half* session in each process — only the local
    endpoint plus ``peer`` naming the remote replica — and drive the
    stepwise methods, shipping the encoded request/batch frames through
    :mod:`repro.replication.codec` in between.
    """

    def __init__(
        self,
        *,
        source: Optional[SyncEndpoint] = None,
        target: Optional[SyncEndpoint] = None,
        peer: Optional[ReplicaId] = None,
        now: float = 0.0,
        config: Optional[SessionConfig] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        if source is None and target is None:
            raise ValueError("a sync session needs a source and/or a target")
        if (source is None or target is None) and peer is None:
            raise ValueError(
                "a half-open session (one endpoint) must name its remote "
                "peer"
            )
        self.source = source
        self.target = target
        self.now = now
        self.config = config if config is not None else SessionConfig()
        self.transport = transport
        self._peer = peer

    # -- contexts -------------------------------------------------------------

    @property
    def source_id(self) -> ReplicaId:
        return self.source.replica_id if self.source is not None else self._peer  # type: ignore[return-value]

    @property
    def target_id(self) -> ReplicaId:
        return self.target.replica_id if self.target is not None else self._peer  # type: ignore[return-value]

    def _source_context(self) -> SyncContext:
        return SyncContext(
            local=self.source_id, remote=self.target_id, now=self.now
        )

    def _target_context(self) -> SyncContext:
        return SyncContext(
            local=self.target_id, remote=self.source_id, now=self.now
        )

    # -- stepwise halves ------------------------------------------------------

    def build_request(self) -> SyncRequest:
        """Target side, step 1: open the session (knowledge + filter)."""
        if self.target is None:
            raise ValueError("build_request needs the target endpoint")
        return build_request(
            self.target, self._target_context(), digest=self.config.digest
        )

    def build_response(
        self, request: SyncRequest, max_items: Optional[int] = None
    ) -> Tuple[List[BatchEntry], SyncStats]:
        """Source side: select, prioritise, and truncate the batch.

        ``max_items`` overrides the config's cap for this one response —
        the encounter layer uses it to spend a shared budget across two
        syncs.
        """
        if self.source is None:
            raise ValueError("build_response needs the source endpoint")
        budget = max_items if max_items is not None else self.config.max_items
        return build_batch(
            self.source,
            request,
            self._source_context(),
            max_items=budget,
            use_index=self.config.use_index,
        )

    def stamp(self, batch: List[BatchEntry]) -> List[BatchEntry]:
        """Source side: stamp content checksums before a real channel.

        Uses the source's content-addressed checksum cache when the
        config allows (the ``checksum_cache_*`` counters of a local run
        are accounted in :meth:`run`; half-open sessions read the cache
        counters directly).
        """
        if self.source is None:
            raise ValueError("stamp needs the source endpoint")
        if self.config.use_cache:
            cache = self.source.replica.checksum_cache
            return [
                replace(entry, checksum=cache.checksum_outgoing(entry.item))
                for entry in batch
            ]
        return [
            replace(entry, checksum=item_checksum(entry.item))
            for entry in batch
        ]

    def confirm_sent(self, entries: Sequence[BatchEntry]) -> None:
        """Source side: fire ``on_items_sent`` for confirmed deliveries.

        Call with the entries the channel provably carried intact; each
        distinct item fires once however many times it was duplicated.
        Policies that release stored copies on hand-off (First Contact)
        or spend copy budgets (Spray and Wait) rely on this being the
        *confirmed* set, not the attempted one.
        """
        if self.source is None:
            raise ValueError("confirm_sent needs the source endpoint")
        delivered_once = _each_entry_once(
            [entry for entry in entries if isinstance(entry, BatchEntry)]
        )
        self.source.policy.on_items_sent(
            [entry.item for entry in delivered_once], self._source_context()
        )

    def apply(
        self,
        batch: Sequence[Any],
        stats: Optional[SyncStats] = None,
        tolerate_duplicates: bool = True,
    ) -> SyncStats:
        """Target side, step 2: store the delivered entries.

        ``stats`` carries the source-side counters when the remote half
        shipped them (see :meth:`SyncStats.to_dict`); a fresh record is
        created otherwise. Defaults to the lossy-channel contract
        (duplicates tolerated) because a half-open session is by
        definition behind a real transport.
        """
        if self.target is None:
            raise ValueError("apply needs the target endpoint")
        if stats is None:
            stats = SyncStats(source=self.source_id, target=self.target_id)
        return apply_batch(
            self.target,
            list(batch),
            stats,
            tolerate_duplicates=tolerate_duplicates,
            use_cache=self.config.use_cache,
        )

    # -- the full local flow --------------------------------------------------

    def run(self) -> SyncStats:
        """Run the complete session with both endpoints local.

        Byte-for-byte the flow of the deprecated ``perform_sync``: build
        the request, (optionally) let the transport corrupt it, build the
        batch, deliver — stamping checksums only when a transport is
        present — fire ``on_items_sent`` for the confirmed set, and apply
        the delivered stream on the target.
        """
        if self.source is None or self.target is None:
            raise ValueError("run() needs both endpoints; use the stepwise "
                             "halves for a networked session")
        source, target = self.source, self.target
        transport = self.transport
        use_cache = self.config.use_cache
        request = self.build_request()
        if transport is not None and hasattr(transport, "corrupt_request"):
            request = transport.corrupt_request(request)
        batch, stats = self.build_response(request)
        if transport is None:
            source.policy.on_items_sent(
                [entry.item for entry in batch], self._source_context()
            )
            return apply_batch(target, batch, stats)
        source_cache = source.replica.checksum_cache
        target_cache = target.replica.checksum_cache
        if use_cache:
            counters_before = (
                source_cache.hits + target_cache.hits,
                source_cache.misses + target_cache.misses,
                source_cache.invalidations + target_cache.invalidations,
            )
        stamped = self.stamp(batch)
        outcome = transport.deliver(stamped)
        stats.interrupted = outcome.truncated
        stats.lost_in_transit = outcome.lost
        confirmed = getattr(outcome, "confirmed", None)
        if confirmed is None:
            confirmed = outcome.delivered
        self.confirm_sent(confirmed)
        apply_batch(
            target,
            outcome.delivered,
            stats,
            tolerate_duplicates=True,
            use_cache=use_cache,
        )
        if use_cache:
            stats.checksum_cache_hits = (
                source_cache.hits + target_cache.hits - counters_before[0]
            )
            stats.checksum_cache_misses = (
                source_cache.misses + target_cache.misses - counters_before[1]
            )
            stats.checksum_cache_invalidations = (
                source_cache.invalidations
                + target_cache.invalidations
                - counters_before[2]
            )
        return stats


class EncounterSession:
    """One encounter: two syncs with alternating source/target roles.

    Follows the paper's setup ("we performed two syncs between the
    corresponding replicas, alternating the source and target roles").
    ``on_encounter_start`` hooks fire once per side before either sync;
    the config's ``max_items`` is the Figure 9 per-*encounter* budget —
    the first sync (with ``first`` as source) spends before the second.

    ``transport_factory``, when given, is called once per sync with
    ``(source_id, target_id)`` and returns that sync's channel (or None
    for perfect delivery).
    """

    def __init__(
        self,
        *,
        first: SyncEndpoint,
        second: SyncEndpoint,
        now: float = 0.0,
        config: Optional[SessionConfig] = None,
        transport_factory: Optional[
            Callable[[ReplicaId, ReplicaId], Optional[Transport]]
        ] = None,
    ) -> None:
        self.first = first
        self.second = second
        self.now = now
        self.config = config if config is not None else SessionConfig()
        self.transport_factory = transport_factory

    def _channel(
        self, source: SyncEndpoint, target: SyncEndpoint
    ) -> Optional[Transport]:
        if self.transport_factory is None:
            return None
        return self.transport_factory(source.replica_id, target.replica_id)

    def begin(self) -> None:
        """Fire both sides' ``on_encounter_start`` hooks (exactly once)."""
        first_context = SyncContext(
            local=self.first.replica_id,
            remote=self.second.replica_id,
            now=self.now,
        )
        second_context = SyncContext(
            local=self.second.replica_id,
            remote=self.first.replica_id,
            now=self.now,
        )
        self.first.policy.on_encounter_start(first_context)
        self.second.policy.on_encounter_start(second_context)

    def run(self) -> List[SyncStats]:
        """Run the full encounter; returns both syncs' stats in order."""
        self.begin()
        budget = self.config.max_items
        stats_a = SyncSession(
            source=self.first,
            target=self.second,
            now=self.now,
            config=replace(self.config, max_items=budget),
            transport=self._channel(self.first, self.second),
        ).run()
        if budget is not None:
            budget = max(0, budget - stats_a.sent_total)
        stats_b = SyncSession(
            source=self.second,
            target=self.first,
            now=self.now,
            config=replace(self.config, max_items=budget),
            transport=self._channel(self.second, self.first),
        ).run()
        return [stats_a, stats_b]
