"""Wire encoding of protocol objects, with size accounting.

The emulation passes Python objects between replicas directly; a real
deployment serialises them. This module defines a canonical JSON encoding
for every protocol object — items, versions, knowledge, sync requests and
batches — both so the library is deployable over a byte transport and so
experiments can measure *metadata overhead in bytes* (the paper's
"compact knowledge" claim is about exactly this: knowledge size grows
with the number of replicas, not the number of messages).

Encoding rules:

* payloads and attribute values must be JSON-representable (the
  messaging application only ever uses strings/numbers);
* host-local attributes are encoded too — they are legitimately carried
  per-copy on the wire (TTLs, copy budgets, hop lists), they just never
  replicate as versioned data;
* knowledge is encoded per authoring replica as ``[prefix, extras...]``,
  the same compact shape it is stored in.

Routing-policy payloads are open-ended, so the codec has a small registry
(:func:`register_routing_codec`) mapping a type tag to encode/decode
functions; the bundled PROPHET and MaxProp states are registered by
:mod:`repro.dtn.codec`.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from .digest import KnowledgeDigest
from .errors import ReplicationError
from .filters import (
    AddressFilter,
    AllFilter,
    AndFilter,
    AttributeFilter,
    Filter,
    MultiAddressFilter,
    NotFilter,
    NothingFilter,
    OrFilter,
)
from .ids import ItemId, ReplicaId, Version
from .integrity import cached_item_checksum, frame_checksum, item_checksum
from .items import Item
from .sync import BatchEntry, SyncRequest
from .routing import Priority, PriorityClass
from .versions import VersionVector, _Entry


class CodecError(ReplicationError):
    """A protocol object could not be encoded or decoded."""


# -- identifiers -----------------------------------------------------------------


def encode_version(version: Version) -> List[Any]:
    return [version.replica.name, version.counter]


def decode_version(data: Any) -> Version:
    try:
        name, counter = data
        return Version(ReplicaId(name), int(counter))
    except (TypeError, ValueError) as error:
        raise CodecError(f"bad version encoding: {data!r}") from error


def encode_item_id(item_id: ItemId) -> List[Any]:
    return [item_id.origin.name, item_id.serial]


def decode_item_id(data: Any) -> ItemId:
    try:
        name, serial = data
        return ItemId(ReplicaId(name), int(serial))
    except (TypeError, ValueError) as error:
        raise CodecError(f"bad item id encoding: {data!r}") from error


# -- knowledge --------------------------------------------------------------------


def encode_knowledge(vector: VersionVector) -> Dict[str, List[int]]:
    """Encode as {replica: [prefix, extra, extra, ...]}."""
    encoded: Dict[str, List[int]] = {}
    for replica in vector.replicas():
        entry = vector._entries[replica]
        if entry.is_empty:
            continue
        encoded[replica.name] = [entry.prefix, *sorted(entry.extras)]
    return encoded


def decode_knowledge(data: Any) -> VersionVector:
    if not isinstance(data, dict):
        raise CodecError(f"bad knowledge encoding: {data!r}")
    entries: Dict[ReplicaId, _Entry] = {}
    for name, shape in data.items():
        try:
            prefix, *extras = shape
            entries[ReplicaId(name)] = _Entry(
                int(prefix), frozenset(int(e) for e in extras)
            )
        except (TypeError, ValueError) as error:
            raise CodecError(f"bad knowledge entry for {name!r}") from error
    return VersionVector(entries)


# -- knowledge digests -------------------------------------------------------------


def encode_knowledge_digest(digest: KnowledgeDigest) -> Dict[str, Any]:
    """Encode a Bloom knowledge digest as its compressed wire frame."""
    return digest.to_wire()


def decode_knowledge_digest(data: Any) -> KnowledgeDigest:
    """Decode a digest frame, rejecting malformed shapes.

    Shape malformations (missing keys, undecodable base64/zlib bitmap,
    parameters out of range, bitmap length inconsistent with ``m``) raise
    :class:`CodecError` here. A frame that decodes but whose integrity
    checksum does not match is *returned* — the protocol layer verifies
    and quarantines it as a typed ``digest-mismatch`` violation, so a
    damaged digest costs one rejected request, not a decode failure.
    """
    try:
        return KnowledgeDigest.from_wire(data)
    except ValueError as error:
        raise CodecError(str(error)) from error


def digest_wire_size(digest: KnowledgeDigest) -> int:
    """Bytes a knowledge digest occupies in a sync request."""
    return wire_size(encode_knowledge_digest(digest))


# -- filters -----------------------------------------------------------------------


def encode_filter(filter_: Filter) -> Dict[str, Any]:
    if isinstance(filter_, AllFilter):
        return {"type": "all"}
    if isinstance(filter_, NothingFilter):
        return {"type": "nothing"}
    if isinstance(filter_, AddressFilter):
        return {"type": "address", "address": filter_.address}
    if isinstance(filter_, MultiAddressFilter):
        return {
            "type": "multi-address",
            "own": filter_.own_address,
            "relay": sorted(filter_.relay_addresses),
        }
    if isinstance(filter_, AttributeFilter):
        return {"type": "attribute", "name": filter_.name, "value": filter_.value}
    if isinstance(filter_, AndFilter):
        return {"type": "and", "operands": [encode_filter(f) for f in filter_.operands]}
    if isinstance(filter_, OrFilter):
        return {"type": "or", "operands": [encode_filter(f) for f in filter_.operands]}
    if isinstance(filter_, NotFilter):
        return {"type": "not", "operand": encode_filter(filter_.operand)}
    raise CodecError(f"cannot encode filter type {type(filter_).__name__}")


def decode_filter(data: Any) -> Filter:
    if not isinstance(data, dict) or "type" not in data:
        raise CodecError(f"bad filter encoding: {data!r}")
    kind = data["type"]
    if kind == "all":
        return AllFilter()
    if kind == "nothing":
        return NothingFilter()
    if kind == "address":
        return AddressFilter(data["address"])
    if kind == "multi-address":
        return MultiAddressFilter(data["own"], frozenset(data["relay"]))
    if kind == "attribute":
        return AttributeFilter(data["name"], data["value"])
    if kind == "and":
        return AndFilter(tuple(decode_filter(f) for f in data["operands"]))
    if kind == "or":
        return OrFilter(tuple(decode_filter(f) for f in data["operands"]))
    if kind == "not":
        return NotFilter(decode_filter(data["operand"]))
    raise CodecError(f"unknown filter type: {kind!r}")


# -- items --------------------------------------------------------------------------


def encode_item(item: Item, with_checksum: bool = False) -> Dict[str, Any]:
    """Encode one item; ``with_checksum`` stamps its content checksum.

    The checksum covers the replicated content only (never the host-local
    attributes — see :func:`repro.replication.integrity.item_checksum`),
    so relay hops that rewrite TTLs or hop lists do not invalidate it.
    Checksums are opt-in to keep the plain wire format — and every
    zero-fault byte measurement built on it — unchanged. Stamping uses the
    per-instance checksum memo (hash once per content, not per encoding);
    decode-side *verification* never does — see :func:`decode_item`.
    """
    encoded: Dict[str, Any] = {
        "id": encode_item_id(item.item_id),
        "version": encode_version(item.version),
        "payload": item.payload,
        "attributes": dict(item.attributes),
    }
    if item.local_attributes:
        encoded["local"] = _encode_local_attributes(item.local_attributes)
    if item.deleted:
        encoded["deleted"] = True
    if with_checksum:
        encoded["checksum"] = cached_item_checksum(item)
    return encoded


def _encode_local_attributes(local: Any) -> Dict[str, Any]:
    encoded = {}
    for key, value in dict(local).items():
        if isinstance(value, tuple):
            value = list(value)
        encoded[key] = value
    return encoded


def decode_item(data: Any) -> Item:
    """Decode one item, verifying its content checksum when present.

    A checksum mismatch means the encoded bytes were altered after the
    sender stamped them — the item is refused with :class:`CodecError`
    rather than silently admitted to a store. Verification always hashes
    the freshly decoded content (a decoded object can carry no memo;
    caching before verifying is how a forged frame would slip through).
    """
    try:
        local = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in data.get("local", {}).items()
        }
        item = Item(
            item_id=decode_item_id(data["id"]),
            version=decode_version(data["version"]),
            payload=data.get("payload"),
            attributes=data.get("attributes", {}),
            local_attributes=local,
            deleted=bool(data.get("deleted", False)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CodecError(f"bad item encoding: {data!r}") from error
    declared = data.get("checksum")
    if declared is not None and item_checksum(item) != declared:
        raise CodecError(
            f"item {item.item_id} fails its content checksum "
            f"(declared {declared!r})"
        )
    return item


# -- routing-state registry -------------------------------------------------------------

RoutingEncoder = Callable[[Any], Dict[str, Any]]
RoutingDecoder = Callable[[Dict[str, Any]], Any]

_ROUTING_CODECS: Dict[str, Tuple[type, RoutingEncoder, RoutingDecoder]] = {}


def register_routing_codec(
    tag: str, state_type: type, encoder: RoutingEncoder, decoder: RoutingDecoder
) -> None:
    """Register wire encode/decode functions for a routing-state type."""
    _ROUTING_CODECS[tag] = (state_type, encoder, decoder)


def encode_routing_state(state: Any) -> Optional[Dict[str, Any]]:
    if state is None:
        return None
    for tag, (state_type, encoder, _) in _ROUTING_CODECS.items():
        if isinstance(state, state_type):
            return {"tag": tag, "state": encoder(state)}
    raise CodecError(
        f"no routing codec registered for {type(state).__name__}; "
        "call register_routing_codec"
    )


def decode_routing_state(data: Any) -> Any:
    if data is None:
        return None
    try:
        tag, payload = data["tag"], data["state"]
    except (KeyError, TypeError) as error:
        raise CodecError(f"bad routing-state encoding: {data!r}") from error
    try:
        _, _, decoder = _ROUTING_CODECS[tag]
    except KeyError:
        raise CodecError(f"unknown routing-state tag: {tag!r}") from None
    return decoder(payload)


# -- protocol messages ---------------------------------------------------------------------


def encode_sync_request(request: SyncRequest) -> Dict[str, Any]:
    encoded = {
        "target": request.target_id.name,
        "knowledge": encode_knowledge(request.knowledge),
        "filter": encode_filter(request.filter),
        "routing": encode_routing_state(request.routing_state),
    }
    if request.digest is not None:
        encoded["digest"] = encode_knowledge_digest(request.digest)
    return encoded


def decode_sync_request(data: Any) -> SyncRequest:
    try:
        digest_frame = data.get("digest")
        return SyncRequest(
            target_id=ReplicaId(data["target"]),
            knowledge=decode_knowledge(data["knowledge"]),
            filter=decode_filter(data["filter"]),
            routing_state=decode_routing_state(data.get("routing")),
            digest=(
                None
                if digest_frame is None
                else decode_knowledge_digest(digest_frame)
            ),
        )
    except (KeyError, TypeError, AttributeError) as error:
        raise CodecError(f"bad sync request encoding: {data!r}") from error


def encode_batch_entry(
    entry: BatchEntry, with_checksum: bool = False
) -> Dict[str, Any]:
    """Encode one batch entry; checksums are stamped when requested or
    when the entry already carries one (re-encoding preserves it)."""
    encoded = {
        "item": encode_item(entry.item),
        "matched": entry.matched_filter,
        "priority": [int(entry.priority.class_), entry.priority.cost],
    }
    if with_checksum or entry.checksum is not None:
        encoded["checksum"] = (
            entry.checksum
            if entry.checksum is not None
            else cached_item_checksum(entry.item)
        )
    return encoded


def decode_batch_entry(data: Any) -> BatchEntry:
    """Decode one batch entry frame.

    The entry-level checksum (when present) is carried onto the
    :class:`BatchEntry` for ``apply_batch`` to verify against the item's
    content — the codec validates the frame's *shape* here; content
    verification belongs to the receive path so a mismatch quarantines
    one entry rather than failing the whole decode.
    """
    try:
        class_value, cost = data["priority"]
        checksum = data.get("checksum")
        if checksum is not None and not isinstance(checksum, str):
            raise CodecError(f"bad entry checksum: {checksum!r}")
        return BatchEntry(
            item=decode_item(data["item"]),
            matched_filter=bool(data["matched"]),
            priority=Priority(PriorityClass(class_value), float(cost)),
            checksum=checksum,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise CodecError(f"bad batch entry: {data!r}") from error


def encode_batch(
    batch: List[BatchEntry], with_checksums: bool = False
) -> List[Dict[str, Any]]:
    return [
        encode_batch_entry(entry, with_checksum=with_checksums)
        for entry in batch
    ]


def decode_batch(data: Any) -> List[BatchEntry]:
    return [decode_batch_entry(element) for element in data]


def encode_batch_frame(batch: List[BatchEntry]) -> Dict[str, Any]:
    """Encode a whole batch as one integrity-protected frame.

    Every entry is checksummed individually and the frame carries a
    checksum over the ordered entry checksums, so both a flipped payload
    byte and a reordered/spliced entry list are detectable at decode
    time.
    """
    entries = [
        encode_batch_entry(entry, with_checksum=True) for entry in batch
    ]
    return {
        "entries": entries,
        "checksum": frame_checksum(
            entry["checksum"] for entry in entries
        ),
    }


def decode_batch_frame(data: Any) -> List[BatchEntry]:
    """Decode an integrity-protected batch frame.

    Raises :class:`CodecError` when the frame-level checksum does not
    match the ordered entry checksums — a damaged or tampered frame is
    rejected before any entry is considered. Per-entry content checks
    then happen entry-by-entry in ``apply_batch``.
    """
    try:
        raw_entries = data["entries"]
        declared = data["checksum"]
    except (KeyError, TypeError) as error:
        raise CodecError(f"bad batch frame: {data!r}") from error
    checksums = []
    for element in raw_entries:
        checksum = element.get("checksum") if isinstance(element, dict) else None
        if not isinstance(checksum, str):
            raise CodecError(f"batch frame entry missing checksum: {element!r}")
        checksums.append(checksum)
    if frame_checksum(checksums) != declared:
        raise CodecError(
            f"batch frame fails its checksum (declared {declared!r})"
        )
    return [decode_batch_entry(element) for element in raw_entries]


# -- size accounting -----------------------------------------------------------------------


def wire_size(encoded: Any) -> int:
    """Size in bytes of an encoded object on the wire (compact JSON)."""
    return len(json.dumps(encoded, separators=(",", ":"), sort_keys=True).encode())


#: Per-instance memo for :func:`item_wire_size`. Unlike the content
#: checksum, the wire encoding *includes* host-local attributes (they are
#: legitimately carried per copy), so this memo is never propagated across
#: derivations — ``with_local``/``without_local`` produce new objects that
#: re-measure. It is only ever bound next to an actual encoding of the
#: exact object it describes.
_WIRE_SIZE_MEMO = "_wire_size_memo"


def item_wire_size(item: Item) -> int:
    """``wire_size(encode_item(item))``, memoised on the item instance.

    The metadata-overhead accounting (byte-unit truncation planning, the
    paper's overhead measurements) asks for the same object's size
    repeatedly — re-offers after interrupted transfers, duplicated
    deliveries, replay pools; one encoding per object covers them all.
    """
    size = getattr(item, _WIRE_SIZE_MEMO, None)
    if size is None:
        size = wire_size(encode_item(item))
        object.__setattr__(item, _WIRE_SIZE_MEMO, size)
    return size


def knowledge_wire_size(vector: VersionVector) -> int:
    """Bytes a replica's knowledge occupies in a sync request.

    Memoised on the vector itself (the ``item_wire_size`` pattern): a
    replica's knowledge is sized at every sync it opens or answers, and
    between learning events the vector — and every copy-on-write snapshot
    sharing its entry table — has the same encoding. The memo lives on
    the :class:`VersionVector` (its ``_wire_size`` slot), is inherited by
    snapshots, and every mutating path clears it.
    """
    size = vector._wire_size
    if size is None:
        size = wire_size(encode_knowledge(vector))
        vector._wire_size = size
    return size
