"""Content integrity and protocol-violation reporting for the sync path.

The sync engine trusts nothing it receives over a faulty channel: every
batch entry can carry a content checksum (stamped by the sender just
before transmission) and the receiver recomputes it before applying the
item. A mismatch, an undecodable frame, a replayed entry, or fabricated
knowledge is surfaced as a typed :class:`ProtocolViolation` instead of
crashing or silently poisoning the store — the per-entry quarantine in
:func:`repro.replication.sync.apply_batch` counts the entry, skips it,
and leaves the sender's knowledge for that item unacknowledged so the
item retries at a later contact.

The checksum covers exactly the *replicated* content of an item — id,
version, payload, shared attributes, and the deletion marker. Host-local
attributes are excluded on purpose: routing policies legitimately rewrite
them per copy (TTLs, hop lists, copy budgets), so including them would
make every relay hop look like corruption.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro._compat import DATACLASS_SLOTS

from .items import Item

#: Violation kinds, as they appear in metrics and logs.
VIOLATION_CHECKSUM_MISMATCH = "checksum-mismatch"
VIOLATION_MALFORMED_ENTRY = "malformed-entry"
VIOLATION_REPLAY = "replay"
VIOLATION_KNOWLEDGE_FABRICATION = "knowledge-fabrication"
VIOLATION_VERSION_CONFLICT = "version-conflict"

VIOLATION_KINDS: Tuple[str, ...] = (
    VIOLATION_CHECKSUM_MISMATCH,
    VIOLATION_MALFORMED_ENTRY,
    VIOLATION_REPLAY,
    VIOLATION_KNOWLEDGE_FABRICATION,
    VIOLATION_VERSION_CONFLICT,
)

#: Hex digits kept from the sha256 digest; 64 bits of collision resistance
#: is ample for corruption *detection* (the threat is noise, not forgery).
_DIGEST_LENGTH = 16


def _opaque(value: object) -> str:
    """Stable placeholder for payloads that are not JSON-representable."""
    return f"<{type(value).__name__}>"


def item_checksum(item: Item) -> str:
    """Checksum of an item's replicated content (hex, truncated sha256).

    Deterministic across processes and Python versions: the content is
    serialized as canonical compact JSON with sorted keys. Host-local
    attributes never contribute (see module docstring).
    """
    body = {
        "id": [item.item_id.origin.name, item.item_id.serial],
        "version": [item.version.replica.name, item.version.counter],
        "payload": item.payload,
        "attributes": dict(item.attributes),
        "deleted": bool(item.deleted),
    }
    payload = json.dumps(
        body, sort_keys=True, separators=(",", ":"), default=_opaque
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:_DIGEST_LENGTH]


def frame_checksum(entry_checksums: Iterable[str]) -> str:
    """Checksum of a whole batch frame: the hash of its entries' checksums.

    Order-sensitive — the protocol's monotone-progress argument relies on
    in-order delivery, so a reordered frame must not validate.
    """
    joined = ",".join(entry_checksums).encode("utf-8")
    return hashlib.sha256(joined).hexdigest()[:_DIGEST_LENGTH]


@dataclass(frozen=True, **DATACLASS_SLOTS)
class ProtocolViolation:
    """One detected act of peer misbehaviour, as seen by one replica.

    ``observer`` is the replica that detected the violation; ``peer`` is
    the replica it holds responsible (its counterpart in the sync
    session). ``kind`` is one of :data:`VIOLATION_KINDS`.
    """

    kind: str
    peer: str
    observer: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in VIOLATION_KINDS:
            raise ValueError(
                f"unknown violation kind {self.kind!r}; "
                f"expected one of {VIOLATION_KINDS}"
            )
