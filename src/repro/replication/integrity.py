"""Content integrity and protocol-violation reporting for the sync path.

The sync engine trusts nothing it receives over a faulty channel: every
batch entry can carry a content checksum (stamped by the sender just
before transmission) and the receiver recomputes it before applying the
item. A mismatch, an undecodable frame, a replayed entry, or fabricated
knowledge is surfaced as a typed :class:`ProtocolViolation` instead of
crashing or silently poisoning the store — the per-entry quarantine in
:func:`repro.replication.sync.apply_batch` counts the entry, skips it,
and leaves the sender's knowledge for that item unacknowledged so the
item retries at a later contact.

The checksum covers exactly the *replicated* content of an item — id,
version, payload, shared attributes, and the deletion marker. Host-local
attributes are excluded on purpose: routing policies legitimately rewrite
them per copy (TTLs, hop lists, copy budgets), so including them would
make every relay hop look like corruption.

Because that content is immutable per ``(item_id, version)``, hashing it
once per hop is pure waste on the hot path. Two memoisation layers remove
it without weakening a single check:

* :func:`cached_item_checksum` binds the computed checksum to the exact
  :class:`Item` *instance* it was computed from (a non-field attribute,
  never serialised, never copied by ``dataclasses.replace`` — see
  :data:`~repro.replication.items.CHECKSUM_MEMO_ATTRIBUTE`). A corrupted
  copy is a different object and always recomputes.
* :class:`ChecksumCache` (one per replica, invalidated by its stores)
  memoises the send side by ``(item_id, version)`` — outgoing items come
  from the replica's own trusted store — and records **verified** receive
  triples so a relayed entry that was already verified skips the hash.
  The receive path never consults anything *before* verifying: a lookup
  only short-circuits when it can prove it is looking at the very object
  it verified earlier; everything else is recomputed and a mismatch
  quarantined exactly as on the uncached path.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro._compat import DATACLASS_SLOTS

from .ids import ItemId, Version
from .items import CHECKSUM_MEMO_ATTRIBUTE, Item

#: Violation kinds, as they appear in metrics and logs.
VIOLATION_CHECKSUM_MISMATCH = "checksum-mismatch"
VIOLATION_MALFORMED_ENTRY = "malformed-entry"
VIOLATION_REPLAY = "replay"
VIOLATION_KNOWLEDGE_FABRICATION = "knowledge-fabrication"
VIOLATION_VERSION_CONFLICT = "version-conflict"
VIOLATION_DIGEST = "digest-mismatch"

VIOLATION_KINDS: Tuple[str, ...] = (
    VIOLATION_CHECKSUM_MISMATCH,
    VIOLATION_MALFORMED_ENTRY,
    VIOLATION_REPLAY,
    VIOLATION_KNOWLEDGE_FABRICATION,
    VIOLATION_VERSION_CONFLICT,
    VIOLATION_DIGEST,
)

#: Hex digits kept from the sha256 digest; 64 bits of collision resistance
#: is ample for corruption *detection* (the threat is noise, not forgery).
_DIGEST_LENGTH = 16


def _opaque(value: object) -> str:
    """Stable placeholder for payloads that are not JSON-representable."""
    return f"<{type(value).__name__}>"


#: Count of actual serialise-and-hash computations performed by
#: :func:`item_checksum` since process start (or the last reset). This is
#: the quantity ``repro bench encounter`` measures: cache layers avoid
#: computations, they never change results, so the counter is the honest
#: cost metric for both the cached and the uncached pipeline.
_computations = 0


def checksum_computations() -> int:
    """How many times :func:`item_checksum` actually hashed content."""
    return _computations


def reset_checksum_computations() -> int:
    """Reset the computation counter; returns the value it had."""
    global _computations
    previous = _computations
    _computations = 0
    return previous


def item_checksum(item: Item) -> str:
    """Checksum of an item's replicated content (hex, truncated sha256).

    Deterministic across processes and Python versions: the content is
    serialized as canonical compact JSON with sorted keys. Host-local
    attributes never contribute (see module docstring).

    Always computes — this is the executable specification the memoised
    layers (:func:`cached_item_checksum`, :class:`ChecksumCache`) must
    agree with, and the baseline the benchmark measures against.
    """
    global _computations
    _computations += 1
    body = {
        "id": [item.item_id.origin.name, item.item_id.serial],
        "version": [item.version.replica.name, item.version.counter],
        "payload": item.payload,
        "attributes": dict(item.attributes),
        "deleted": bool(item.deleted),
    }
    payload = json.dumps(
        body, sort_keys=True, separators=(",", ":"), default=_opaque
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:_DIGEST_LENGTH]


def cached_item_checksum(item: Item) -> str:
    """:func:`item_checksum`, memoised on the item instance.

    The memo is bound with ``object.__setattr__`` to the exact (frozen,
    slot-less) object whose content was hashed, so it is trustworthy by
    construction: it never survives serialisation, ``dataclasses.replace``
    never copies it (a tampered copy made via ``replace`` starts clean and
    recomputes), and only the content-preserving derivations
    ``Item.with_local`` / ``Item.without_local`` carry it forward — the
    checksum excludes host-local attributes, so those derivations cannot
    change it.
    """
    memo = getattr(item, CHECKSUM_MEMO_ATTRIBUTE, None)
    if memo is not None:
        return memo
    checksum = item_checksum(item)
    object.__setattr__(item, CHECKSUM_MEMO_ATTRIBUTE, checksum)
    return checksum


_ChecksumKey = Tuple[ItemId, Version]


class ChecksumCache:
    """Content-addressed checksum memoisation for one replica.

    Two maps, with sharply different trust stories:

    * ``trusted`` (send side) — ``(item_id, version) → checksum`` for items
      in this replica's *own* stores. Outgoing batches are built from the
      local store, whose content per version is immutable, so the key fully
      determines the content. :meth:`checksum_outgoing` must only ever be
      fed items drawn from the owning replica's stores (or their
      ``prepare_outgoing`` derivations, which must not alter replicated
      content). Even a violated contract fails *closed*: a wrong outgoing
      stamp makes the honest receiver quarantine the entry, never accept a
      bad one.
    * ``verified`` (receive side) — ``(item_id, version) → (checksum,
      item)`` triples recorded **only after** a full verification
      succeeded. A lookup short-circuits only when the declared checksum
      matches *and* the entry is the identical verified object — a
      corrupted copy shares the key and (under
      :class:`~repro.faults.models.PayloadCorruption`) the honest declared
      checksum, so anything less than object identity must recompute.

    The owning :class:`~repro.replication.replica.Replica` wires
    invalidation into its stores: eviction, removal, and version
    supersession call :meth:`forget`, so both maps track store contents
    and a superseded version can never serve a stale checksum.
    """

    __slots__ = ("_trusted", "_verified", "hits", "misses", "invalidations")

    def __init__(self) -> None:
        self._trusted: Dict[_ChecksumKey, str] = {}
        self._verified: Dict[_ChecksumKey, Tuple[str, Item]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # -- send side ---------------------------------------------------------------

    def checksum_outgoing(self, item: Item) -> str:
        """Checksum for an outgoing item from this replica's own store.

        A hit binds the instance memo too: the outgoing object ships
        in-process with its checksum attached, so the receiver's
        verification can reuse it (the trust argument is the send-side
        contract above — the object *is* the stored content for this key,
        and transit corruption models forge copies via ``replace``, which
        drops the memo).
        """
        key = (item.item_id, item.version)
        cached = self._trusted.get(key)
        if cached is not None:
            self.hits += 1
            if getattr(item, CHECKSUM_MEMO_ATTRIBUTE, None) is None:
                object.__setattr__(item, CHECKSUM_MEMO_ATTRIBUTE, cached)
            return cached
        memo = getattr(item, CHECKSUM_MEMO_ATTRIBUTE, None)
        if memo is not None:
            self.hits += 1
            self._trusted[key] = memo
            return memo
        self.misses += 1
        checksum = cached_item_checksum(item)
        self._trusted[key] = checksum
        return checksum

    # -- receive side ------------------------------------------------------------

    def verify_incoming(self, item: Item, declared: str) -> bool:
        """Verify a received entry against its declared checksum.

        Semantics-preserving by construction: the only ways this returns
        ``True`` without hashing are (a) the entry is the very object this
        replica fully verified before under the same declared checksum, or
        (b) the object carries an instance memo, which is only ever written
        next to an actual hash of that exact object. A corrupted copy with
        an honest ``(item_id, version)`` and an honest declared checksum
        has neither — it is recomputed and fails, exactly as uncached.
        """
        key = (item.item_id, item.version)
        cached = self._verified.get(key)
        if cached is not None and cached[0] == declared and cached[1] is item:
            self.hits += 1
            return True
        memo = getattr(item, CHECKSUM_MEMO_ATTRIBUTE, None)
        if memo is not None:
            self.hits += 1
            actual = memo
        else:
            self.misses += 1
            actual = cached_item_checksum(item)
        if actual != declared:
            return False
        self._verified[key] = (declared, item)
        return True

    # -- invalidation ------------------------------------------------------------

    def forget(self, item: Item) -> None:
        """Drop everything cached for an item leaving a store.

        Called on eviction, removal, and version supersession (the store
        replaces the previous version before inserting the new one).
        """
        key = (item.item_id, item.version)
        dropped = self._trusted.pop(key, None) is not None
        dropped = (self._verified.pop(key, None) is not None) or dropped
        if dropped:
            self.invalidations += 1

    def clear(self) -> None:
        self._trusted.clear()
        self._verified.clear()

    def __len__(self) -> int:
        """Total cached entries across the send and receive maps."""
        return len(self._trusted) + len(self._verified)


def frame_checksum(entry_checksums: Iterable[str]) -> str:
    """Checksum of a whole batch frame: the hash of its entries' checksums.

    Order-sensitive — the protocol's monotone-progress argument relies on
    in-order delivery, so a reordered frame must not validate.
    """
    joined = ",".join(entry_checksums).encode("utf-8")
    return hashlib.sha256(joined).hexdigest()[:_DIGEST_LENGTH]


@dataclass(frozen=True, **DATACLASS_SLOTS)
class ProtocolViolation:
    """One detected act of peer misbehaviour, as seen by one replica.

    ``observer`` is the replica that detected the violation; ``peer`` is
    the replica it holds responsible (its counterpart in the sync
    session). ``kind`` is one of :data:`VIOLATION_KINDS`.
    """

    kind: str
    peer: str
    observer: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in VIOLATION_KINDS:
            raise ValueError(
                f"unknown violation kind {self.kind!r}; "
                f"expected one of {VIOLATION_KINDS}"
            )
