"""The pairwise synchronisation protocol, with DTN policy hook points.

This implements the paper's Figure 4 flow::

    Target node:
        routingState = DTN.generateReq()
        send knowledge, filter, and routingState to source
        for each item received:
            add item to local store
            update knowledge

    Source node:
        receive knowledge, filter, and routingState
        DTN.processReq(routingState)
        for each item in local store:
            if item unknown to target:
                if item matches filter or DTN.toSend(item):
                    add item to batch
        sort batch by priority
        send batch to target

The *target* is the initiator (it asks "bring me up to date"); the *source*
is the responder that pushes items. One real-world **encounter** between
two hosts runs two syncs, alternating roles, which
:func:`perform_encounter` packages.

Bandwidth constraints (Figure 9) are modelled as a cap on the number of
items transferred; because the batch is priority-sorted before truncation,
constrained syncs send the most valuable items first, exactly the situation
MaxProp's ordering is designed for.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro._compat import DATACLASS_SLOTS

from .digest import (
    FABRICATION_PROBES,
    DigestConfig,
    KnowledgeDigest,
    estimated_digest_wire_size,
)
from .errors import PolicyError
from .filters import Filter
from .ids import ReplicaId, Version
from .integrity import (
    VIOLATION_CHECKSUM_MISMATCH,
    VIOLATION_DIGEST,
    VIOLATION_KNOWLEDGE_FABRICATION,
    VIOLATION_MALFORMED_ENTRY,
    VIOLATION_REPLAY,
    VIOLATION_VERSION_CONFLICT,
    ProtocolViolation,
    item_checksum,
)
from .items import Item
from .replica import Replica
from .routing import (
    NullRoutingPolicy,
    Priority,
    PriorityClass,
    RoutingPolicy,
    SyncContext,
)
from .versions import VersionVector


@dataclass
class SyncEndpoint:
    """A replica paired with its routing policy, as seen by the sync engine."""

    replica: Replica
    policy: RoutingPolicy = field(default_factory=NullRoutingPolicy)

    @property
    def replica_id(self) -> ReplicaId:
        return self.replica.replica_id


@dataclass
class SyncRequest:
    """What the target sends to open a sync: knowledge, filter, routing state.

    In digest mode ``digest`` carries a compact Bloom summary of the
    target's knowledge *instead of* the exact vector — ``knowledge`` is
    then an empty placeholder (the digest deliberately leaks no exact
    counter structure alongside itself), and the source selects
    candidates by Bloom membership rather than vector coverage.
    """

    target_id: ReplicaId
    knowledge: VersionVector
    filter: Filter
    routing_state: Any = None
    digest: Optional[KnowledgeDigest] = None


@dataclass(**DATACLASS_SLOTS)
class BatchEntry:
    """One item scheduled for transmission, with its priority.

    ``checksum`` is the item's content checksum
    (:func:`~repro.replication.integrity.item_checksum`), stamped by the
    sender just before the entry crosses a faulty channel; ``None`` on
    the perfect-channel path, where integrity is not in question.
    """

    item: Item
    matched_filter: bool
    priority: Priority
    checksum: Optional[str] = None


@dataclass
class SyncStats:
    """Counters describing one sync session, consumed by the metrics layer.

    ``truncated`` counts items dropped by the *bandwidth cap* before
    transmission (Figure 9); the transit-fault fields describe what the
    channel did to the items that were actually sent: ``received_total``
    items stored by the target, ``lost_in_transit`` items cut off by an
    interrupted transfer, ``redundant_received`` duplicate deliveries the
    target recognised and discarded, and ``interrupted`` marking a session
    whose batch was truncated mid-transfer (the next encounter resumes it).

    The hardened-sync fields account for peer misbehaviour:
    ``quarantined_entries`` counts received entries refused by integrity
    checks (undecodable frames, checksum mismatches, same-version content
    conflicts) — skipped, not applied, and not acknowledged, so they
    retry at a later contact; ``rejected_knowledge`` counts sync requests
    whose knowledge claimed versions this source never authored; and
    ``violations`` carries the typed
    :class:`~repro.replication.integrity.ProtocolViolation` records
    behind both (plus replay detections, which are counted under
    ``redundant_received`` because the item is already known).

    The scan-cost fields make the hot-path optimisations observable:
    ``store_size`` is how many items the source held (what a full scan
    would have visited), ``candidates`` how many the version index
    actually enumerated (the unknown items), ``index_skipped`` the
    difference, and the ``filter_cache_*`` counters how the memoised
    peer-filter evaluations fared while building this batch. The
    ``checksum_cache_*`` counters do the same for the content-addressed
    integrity cache across both ends of the session — send-side stamping
    hits on the source's cache plus receive-side verification hits on the
    target's (all zero on the perfect-channel path, which computes no
    checksums at all).

    The digest fields account for the compact-knowledge mode:
    ``metadata_bytes`` is what the request's knowledge payload occupied
    on the wire (the exact vector's encoding, or the digest frame when
    one was sent); ``digest_used`` marks sessions opened with a digest;
    ``digest_suppressed`` counts stored items withheld because the digest
    claimed the target knew them (mostly true positives, occasionally
    FPs); and ``fp_resend`` counts transmissions that *prove* an earlier
    suppression was a false positive — the item is being sent now, so the
    target cannot have known it then (see
    :class:`~repro.replication.digest.SuppressionLedger`).
    """

    source: ReplicaId
    target: ReplicaId
    candidates: int = 0
    store_size: int = 0
    index_skipped: int = 0
    filter_cache_hits: int = 0
    filter_cache_misses: int = 0
    filter_cache_invalidations: int = 0
    checksum_cache_hits: int = 0
    checksum_cache_misses: int = 0
    checksum_cache_invalidations: int = 0
    sent_total: int = 0
    sent_matching: int = 0
    sent_relayed: int = 0
    truncated: int = 0
    received_total: int = 0
    lost_in_transit: int = 0
    redundant_received: int = 0
    quarantined_entries: int = 0
    rejected_knowledge: int = 0
    metadata_bytes: int = 0
    digest_used: bool = False
    digest_suppressed: int = 0
    fp_resend: int = 0
    interrupted: bool = False
    delivered_items: List[Item] = field(default_factory=list)
    violations: List[ProtocolViolation] = field(default_factory=list)

    @property
    def transmissions(self) -> int:
        return self.sent_total

    @property
    def completed(self) -> bool:
        """True when every transmitted item reached the target."""
        return not self.interrupted

    # Every plain counter/flag field, in declaration order — the wire
    # representation ships these verbatim.
    _COUNTER_FIELDS = (
        "candidates",
        "store_size",
        "index_skipped",
        "filter_cache_hits",
        "filter_cache_misses",
        "filter_cache_invalidations",
        "checksum_cache_hits",
        "checksum_cache_misses",
        "checksum_cache_invalidations",
        "sent_total",
        "sent_matching",
        "sent_relayed",
        "truncated",
        "received_total",
        "lost_in_transit",
        "redundant_received",
        "quarantined_entries",
        "rejected_knowledge",
        "metadata_bytes",
        "digest_used",
        "digest_suppressed",
        "fp_resend",
        "interrupted",
    )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe encoding, so a networked source can ship its half.

        The live transport runs the source and target halves of a sync in
        different OS processes; the source's counters travel to the
        session coordinator in this form and are merged there.
        ``from_dict`` reconstructs an equal record.
        """
        from .codec import encode_item

        data: Dict[str, Any] = {
            "source": self.source.name,
            "target": self.target.name,
        }
        for name in self._COUNTER_FIELDS:
            data[name] = getattr(self, name)
        data["delivered_items"] = [
            encode_item(item) for item in self.delivered_items
        ]
        data["violations"] = [
            {
                "kind": violation.kind,
                "peer": violation.peer,
                "observer": violation.observer,
                "detail": violation.detail,
            }
            for violation in self.violations
        ]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SyncStats":
        from .codec import decode_item

        stats = cls(
            source=ReplicaId(data["source"]), target=ReplicaId(data["target"])
        )
        for name in cls._COUNTER_FIELDS:
            if name in data:
                setattr(stats, name, data[name])
        stats.delivered_items = [
            decode_item(encoded) for encoded in data.get("delivered_items", [])
        ]
        stats.violations = [
            ProtocolViolation(
                kind=violation["kind"],
                peer=violation["peer"],
                observer=violation["observer"],
                detail=violation.get("detail", ""),
            )
            for violation in data.get("violations", [])
        ]
        return stats


def build_request(
    target: SyncEndpoint,
    context: SyncContext,
    digest: Optional[DigestConfig] = None,
) -> SyncRequest:
    """Target side, step 1: snapshot knowledge + filter, add routing state.

    With a :class:`~repro.replication.digest.DigestConfig`, the request
    opens in digest mode when the negotiation picks it: a Bloom digest is
    sent only when its estimated wire size undercuts the exact vector's
    (memoised) encoding, so compact contiguous knowledge keeps the exact
    path and arming digests can only shrink request metadata. Each digest
    is built under a fresh per-session salt, which is what makes a false
    positive a one-contact delay instead of a permanent suppression.
    """
    routing_state = target.policy.generate_req(context)
    if digest is not None:
        knowledge_digest = _negotiate_digest(target.replica, digest)
        if knowledge_digest is not None:
            return SyncRequest(
                target_id=target.replica_id,
                knowledge=VersionVector.empty(),
                filter=target.replica.filter,
                routing_state=routing_state,
                digest=knowledge_digest,
            )
    return SyncRequest(
        target_id=target.replica_id,
        knowledge=target.replica.knowledge.copy(),
        filter=target.replica.filter,
        routing_state=routing_state,
    )


def _negotiate_digest(
    replica: Replica, config: DigestConfig
) -> Optional[KnowledgeDigest]:
    """Build a digest when (estimated) cheaper than exact knowledge."""
    vector = replica.knowledge
    if not config.force:
        from .codec import knowledge_wire_size

        estimate = estimated_digest_wire_size(
            vector.size_in_versions(), config.fp_rate
        )
        if estimate >= knowledge_wire_size(vector):
            return None
    return KnowledgeDigest.build(
        vector, config.fp_rate, replica.next_digest_salt()
    )


def validate_request_knowledge(
    source: SyncEndpoint, request: SyncRequest, stats: SyncStats
) -> VersionVector:
    """Source-side protocol validation of the target's claimed knowledge.

    A peer can legitimately claim knowledge of this replica's own versions
    only up to the highest counter this replica has ever authored. A claim
    beyond that is fabricated (or the request was corrupted in transit):
    it is surfaced as a :class:`ProtocolViolation`, counted in
    ``stats.rejected_knowledge``, and the knowledge used for batch
    selection is *clamped* to the authored range — claims about versions
    this replica never authored cannot mask items (present or future)
    carrying those versions. Claims *within* the authored range are
    indistinguishable from honest state, so a tampered request costs at
    most one session's delay: the next request, built from the target's
    real vector, re-offers anything withheld. The target's own vector is
    never touched (knowledge travels by value), and a replica never
    regresses its own knowledge in response to anything a peer claims.

    Honest requests pass through unchanged at zero cost — no allocation,
    no RNG — which is what keeps zero-fault runs byte-identical.
    """
    knowledge = request.knowledge
    own = source.replica_id
    authored = source.replica.last_authored_counter
    claimed = max(
        knowledge.known_counter_prefix(own),
        max(knowledge.extra_counters(own), default=0),
    )
    if claimed > authored:
        stats.rejected_knowledge += 1
        stats.violations.append(
            ProtocolViolation(
                kind=VIOLATION_KNOWLEDGE_FABRICATION,
                peer=request.target_id.name,
                observer=own.name,
                detail=(
                    f"claims counter {claimed} of {own.name}, "
                    f"but only {authored} were ever authored"
                ),
            )
        )
        knowledge = knowledge.clamped(own, authored)
    return knowledge


def validate_request_digest(
    source: SyncEndpoint, request: SyncRequest, stats: SyncStats
) -> bool:
    """Source-side protocol validation of a digest-mode request.

    A digest cannot be *clamped* the way an exact vector can — membership
    is opaque — so validation is accept-or-reject, with the same bounded
    damage as the clamp: a rejected request yields an empty batch and the
    session retries at the next contact, where the target's freshly
    built request (new salt, or exact fallback) is honest again. Two
    checks:

    * **Integrity** — the frame checksum over the digest's parameters and
      bitmap must verify; transit damage is a ``digest-mismatch``
      violation.
    * **Fabrication** — :data:`~repro.replication.digest.FABRICATION_PROBES`
      counters *above* everything this replica ever authored are probed
      for membership. An honest digest hits each with probability
      ``fp_rate``, all of them with probability ``fp_rate**16`` —
      negligible — so a full sweep of hits (e.g. a saturated bitmap,
      which would suppress every transmission) is rejected as
      ``knowledge-fabrication``.
    """
    digest = request.digest
    assert digest is not None
    own = source.replica_id
    if not digest.verify():
        stats.rejected_knowledge += 1
        stats.violations.append(
            ProtocolViolation(
                kind=VIOLATION_DIGEST,
                peer=request.target_id.name,
                observer=own.name,
                detail="knowledge digest fails its integrity checksum",
            )
        )
        return False
    authored = source.replica.last_authored_counter
    probes = range(authored + 1, authored + 1 + FABRICATION_PROBES)
    if all(digest.might_contain(Version(own, counter)) for counter in probes):
        stats.rejected_knowledge += 1
        stats.violations.append(
            ProtocolViolation(
                kind=VIOLATION_KNOWLEDGE_FABRICATION,
                peer=request.target_id.name,
                observer=own.name,
                detail=(
                    f"digest claims all {FABRICATION_PROBES} probed "
                    f"counters of {own.name} above {authored}"
                ),
            )
        )
        return False
    return True


def build_batch(
    source: SyncEndpoint,
    request: SyncRequest,
    context: SyncContext,
    max_items: Optional[int] = None,
    use_index: bool = True,
) -> Tuple[List[BatchEntry], SyncStats]:
    """Source side: select, prioritise, order, and truncate the batch.

    Items matching the target's filter are always included, at
    :attr:`PriorityClass.FILTER_MATCH`; for each remaining unknown item the
    policy's ``to_send`` is consulted. The final batch is sorted by
    priority (stable, so equal priorities keep store order) and truncated
    to ``max_items`` when a bandwidth cap applies (via a partial sort —
    picking the same prefix a full sort-then-slice would).

    With ``use_index`` (the default) the unknown items are enumerated
    through the stores' version indexes and the target-filter evaluations
    go through the source's :class:`~repro.replication.filters.FilterMatchCache`
    — per-encounter cost proportional to what the target is missing.
    ``use_index=False`` keeps the original full-store scan; it exists as
    the measured baseline for ``repro bench sync`` and the equivalence
    tests, and produces identical batches.

    In digest mode (``request.digest`` set) the exact-knowledge machinery
    is bypassed: the digest is validated (checksum + fabrication probes,
    see :func:`validate_request_digest`; rejection returns an empty
    batch), then candidates are the stored items whose versions the
    digest does *not* claim — Bloom "no" is definite, so nothing the
    target knows is ever sent, and a false positive merely suppresses an
    unknown item until a later contact re-offers it. The version index
    cannot serve Bloom membership, so digest mode always walks the full
    store (same enumeration order as the exact scan).

    Building does **not** fire ``on_items_sent`` — the channel has not
    carried anything yet. :func:`perform_sync` invokes the hook with the
    entries that were actually delivered; callers assembling the protocol
    by hand must do the same once delivery is confirmed.
    """
    # The policy may tighten (never widen) the platform's cap — the one
    # choke point through which selfish source behaviours under-serve a
    # peer, since filter-matching items bypass to_send entirely. Looked
    # up tolerantly: duck-typed policies predating the hook stay valid.
    budget_hook = getattr(source.policy, "source_budget", None)
    if budget_hook is not None:
        max_items = budget_hook(max_items)
    stats = SyncStats(source=source.replica_id, target=request.target_id)
    source.policy.process_req(request.routing_state, context)

    digest = request.digest
    suppressed: List[Version] = []
    stored_versions: set = set()
    stats.store_size = source.replica.stored_count
    if digest is not None:
        stats.digest_used = True
        stats.metadata_bytes = digest.wire_size()
        if not validate_request_digest(source, request, stats):
            return [], stats
        unknown = []
        for item in source.replica.stored_items():
            stored_versions.add(item.version)
            if digest.might_contain(item.version):
                suppressed.append(item.version)
            else:
                unknown.append(item)
        stats.digest_suppressed = len(suppressed)
        if use_index:
            cache = source.replica.filter_cache
            hits, misses, invalidations = (
                cache.hits, cache.misses, cache.invalidations,
            )
            matches = lambda item: cache.matches(request.filter, item)  # noqa: E731
        else:
            matches = request.filter.matches
        stats.candidates = len(unknown)
    else:
        from .codec import knowledge_wire_size

        stats.metadata_bytes = knowledge_wire_size(request.knowledge)
        knowledge = validate_request_knowledge(source, request, stats)
        if use_index:
            unknown = source.replica.items_unknown_to(knowledge)
            cache = source.replica.filter_cache
            hits, misses, invalidations = (
                cache.hits, cache.misses, cache.invalidations,
            )
            matches = lambda item: cache.matches(request.filter, item)  # noqa: E731
        else:
            unknown = source.replica.items_unknown_to_scan(knowledge)
            matches = request.filter.matches
        stats.candidates = len(unknown)
        stats.index_skipped = stats.store_size - stats.candidates

    entries: List[BatchEntry] = []
    for item in unknown:
        if matches(item):
            entries.append(
                BatchEntry(item, True, Priority(PriorityClass.FILTER_MATCH))
            )
        else:
            priority = source.policy.to_send(item, request.filter, context)
            if priority is None:
                continue
            if not isinstance(priority, Priority):
                raise PolicyError(
                    f"{source.policy.name}.to_send must return a Priority "
                    f"or None, got {type(priority).__name__}"
                )
            entries.append(BatchEntry(item, False, priority))

    if use_index:
        stats.filter_cache_hits = cache.hits - hits
        stats.filter_cache_misses = cache.misses - misses
        stats.filter_cache_invalidations = cache.invalidations - invalidations

    # Decorate once: ``sort_key()`` is computed exactly once per entry and
    # the enumeration index breaks ties, so plain tuple comparison gives
    # the same stable order on both paths without a per-comparison key
    # call (entries themselves are never compared — the index is unique).
    keyed = [
        (entry.priority.sort_key(), index, entry)
        for index, entry in enumerate(entries)
    ]
    if max_items is not None and len(keyed) > max_items:
        # Partial sort: same prefix as a stable full sort followed by a
        # slice, at O(n log k).
        stats.truncated = len(keyed) - max_items
        keyed = heapq.nsmallest(max_items, keyed)
    else:
        keyed.sort()

    prepared = []
    for _, _, entry in keyed:
        outgoing = source.policy.prepare_outgoing(entry.item, context)
        if outgoing is entry.item:
            # Identity fast path: the policy shipped the stored object
            # unchanged, so the selection entry can go out as-is.
            prepared.append(entry)
        else:
            prepared.append(
                BatchEntry(outgoing, entry.matched_filter, entry.priority)
            )
    stats.sent_total = len(prepared)
    stats.sent_matching = sum(1 for entry in prepared if entry.matched_filter)
    stats.sent_relayed = stats.sent_total - stats.sent_matching

    # FP accounting: anything sent now that an earlier digest suppressed
    # for this peer was provably unknown to the peer back then (knowledge
    # is monotone, the digest has no false negatives) — a certain false
    # positive. Both modes prove; only digest sessions record. The
    # ledger never influences selection, so the zero-digest path costs
    # one dictionary miss.
    ledger = source.replica.suppression_ledger
    stats.fp_resend = ledger.note_sent(
        request.target_id, (entry.item.version for entry in prepared)
    )
    if digest is not None:
        ledger.record(request.target_id, suppressed, stored_versions)
    return prepared, stats


def apply_batch(
    target: SyncEndpoint,
    batch: List[BatchEntry],
    stats: SyncStats,
    tolerate_duplicates: bool = False,
    use_cache: bool = True,
) -> SyncStats:
    """Target side, step 2: store every received item and update knowledge.

    Knowledge commits *per item*, in received order — this is the monotone
    progress property: if the stream of entries is cut at any point, the
    delivered prefix is durably received and only the lost suffix remains
    unknown (to be offered again at the next encounter).

    ``tolerate_duplicates`` selects the transport contract. Over a perfect
    channel (the default) an already-known version is a protocol bug and
    :meth:`~repro.replication.replica.Replica.apply_remote` raises; over a
    lossy channel duplicated delivery is expected, so known versions are
    counted as redundant receptions and skipped.

    Over a faulty channel the receive path is *hardened*, per entry:

    * a frame that is not a :class:`BatchEntry` is run through the codec;
      an undecodable frame is quarantined (counted, reported as a
      ``malformed-entry`` violation, skipped) instead of aborting the
      remainder of the batch;
    * an entry carrying a checksum that does not match its item's content
      is quarantined as ``checksum-mismatch``;
    * a version already known *before this batch began* is a replayed
      frame (an honest source filters against our knowledge), reported as
      a ``replay`` violation — versions first seen earlier in the same
      delivery are benign channel duplicates;
    * two entries in one delivery carrying the same version but different
      content are a ``version-conflict``; the later one is quarantined.

    Quarantined entries never reach :meth:`apply_remote`, so the target's
    knowledge does not cover them and the sender re-offers the real item
    at the next contact — corruption costs latency, never correctness.

    ``use_cache`` (the default) routes checksum verification through the
    target's :class:`~repro.replication.integrity.ChecksumCache`, which
    only ever skips the hash for an object it has itself verified before —
    verification-before-cache, so a corrupted entry can never be accepted
    via a cache hit. ``use_cache=False`` recomputes every checksum; it is
    the measured baseline for ``repro bench encounter`` and the
    cached-vs-uncached equivalence tests, and quarantines identically.
    """
    snapshot = target.replica.knowledge.copy() if tolerate_duplicates else None
    seen_checksums: Dict[Any, Optional[str]] = {}
    checksum_cache = target.replica.checksum_cache if use_cache else None
    for frame in batch:
        entry = frame
        if not isinstance(entry, BatchEntry):
            entry = _decode_frame(frame, target, stats)
            if entry is None:
                continue
        checksum = entry.checksum
        if checksum is not None:
            if checksum_cache is not None:
                valid = checksum_cache.verify_incoming(entry.item, checksum)
            else:
                valid = item_checksum(entry.item) == checksum
            if not valid:
                stats.quarantined_entries += 1
                stats.violations.append(
                    ProtocolViolation(
                        kind=VIOLATION_CHECKSUM_MISMATCH,
                        peer=stats.source.name,
                        observer=target.replica_id.name,
                        detail=(
                            f"item {entry.item.item_id} failed its checksum"
                        ),
                    )
                )
                continue
        key = (entry.item.item_id, entry.item.version)
        if tolerate_duplicates and target.replica.knowledge.contains(
            entry.item.version
        ):
            stats.redundant_received += 1
            if key in seen_checksums:
                earlier = seen_checksums[key]
                if (
                    checksum is not None
                    and earlier is not None
                    and checksum != earlier
                ):
                    stats.quarantined_entries += 1
                    stats.violations.append(
                        ProtocolViolation(
                            kind=VIOLATION_VERSION_CONFLICT,
                            peer=stats.source.name,
                            observer=target.replica_id.name,
                            detail=(
                                f"two contents for version "
                                f"{entry.item.version}"
                            ),
                        )
                    )
            elif snapshot is not None and snapshot.contains(
                entry.item.version
            ):
                # Known before the batch began: an honest source filters
                # against our knowledge, so this frame was replayed.
                stats.violations.append(
                    ProtocolViolation(
                        kind=VIOLATION_REPLAY,
                        peer=stats.source.name,
                        observer=target.replica_id.name,
                        detail=f"replayed {entry.item.version}",
                    )
                )
            seen_checksums.setdefault(key, checksum)
            continue
        seen_checksums[key] = checksum
        matched = target.replica.apply_remote(entry.item)
        stats.received_total += 1
        if matched:
            stats.delivered_items.append(entry.item)
    return stats


def _decode_frame(
    frame: Any, target: SyncEndpoint, stats: SyncStats
) -> Optional[BatchEntry]:
    """Decode a raw wire frame; quarantine (and return None) on failure."""
    from .codec import CodecError, decode_batch_entry

    try:
        return decode_batch_entry(frame)
    except CodecError as error:
        stats.quarantined_entries += 1
        stats.violations.append(
            ProtocolViolation(
                kind=VIOLATION_MALFORMED_ENTRY,
                peer=stats.source.name,
                observer=target.replica_id.name,
                detail=str(error)[:120],
            )
        )
        return None


def _each_entry_once(delivered: List[BatchEntry]) -> List[BatchEntry]:
    """The delivered entries with channel duplicates collapsed, in order."""
    seen = set()
    unique: List[BatchEntry] = []
    for entry in delivered:
        key = (entry.item.item_id, entry.item.version)
        if key in seen:
            continue
        seen.add(key)
        unique.append(entry)
    return unique


def perform_sync(
    source: SyncEndpoint,
    target: SyncEndpoint,
    now: float = 0.0,
    max_items: Optional[int] = None,
    transport: Optional[Any] = None,
    use_index: bool = True,
    use_cache: bool = True,
    digest: Optional[DigestConfig] = None,
) -> SyncStats:
    """Run one complete sync session: ``target`` pulls from ``source``.

    ``digest``, when given, arms the compact-knowledge mode: the target's
    request carries a salted Bloom digest instead of its exact vector
    whenever the negotiation in :func:`build_request` favours it (always,
    under ``force=True``).

    ``transport``, when given, mediates batch delivery (duck-typed to
    :class:`repro.faults.FaultyTransport`): it may truncate the batch —
    the target then commits knowledge for exactly the delivered prefix and
    the session is marked ``interrupted`` — and it may duplicate entries,
    which the target tolerates and counts as redundant receptions.

    ``on_items_sent`` fires only for entries the channel actually carried
    *intact* (each once, however many times it was duplicated): a policy
    that releases its stored copy on hand-off (First Contact) or spends a
    copy budget (Spray and Wait) must not pay for items lost, corrupted,
    or mangled in transit — those stay stored and re-offerable,
    preserving monotone progress. A transport reporting a ``confirmed``
    list (see :class:`repro.faults.DeliveryOutcome`) provides exactly that
    set; transports without one fall back to the delivered stream.

    Over a faulty channel every outgoing entry is stamped with its
    content checksum, and a transport exposing ``corrupt_request`` gets
    to tamper with the sync request before the source sees it (modelling
    fabricated knowledge) — the hardened :func:`build_batch` /
    :func:`apply_batch` paths detect both.

    .. deprecated::
        ``perform_sync`` is a thin shim over
        :class:`repro.replication.session.SyncSession` — construct one
        (keyword-only) and call :meth:`~SyncSession.run` instead. The
        shim emits :class:`DeprecationWarning` and will be removed after
        one release, per the policy in ``docs/api.md``.
    """
    warnings.warn(
        "perform_sync() is deprecated; use "
        "repro.replication.session.SyncSession(...).run() "
        "(exported via repro.api)",
        DeprecationWarning,
        stacklevel=2,
    )
    from .session import SessionConfig, SyncSession

    return SyncSession(
        source=source,
        target=target,
        now=now,
        config=SessionConfig(
            max_items=max_items,
            use_index=use_index,
            use_cache=use_cache,
            digest=digest,
        ),
        transport=transport,
    ).run()


def perform_encounter(
    first: SyncEndpoint,
    second: SyncEndpoint,
    now: float = 0.0,
    max_items_per_encounter: Optional[int] = None,
    transport_factory: Optional[Any] = None,
    use_index: bool = True,
    use_cache: bool = True,
    digest: Optional[DigestConfig] = None,
) -> List[SyncStats]:
    """Run one encounter: two syncs with alternating source/target roles.

    This follows the paper's experimental setup ("we performed two syncs
    between the corresponding replicas, alternating the source and target
    roles"). Policy ``on_encounter_start`` hooks fire once per side before
    either sync, so per-meeting state updates happen exactly once.

    ``max_items_per_encounter`` is the Figure 9 bandwidth constraint: a
    budget on total items moved across both syncs. The first sync (with
    ``first`` as source) consumes budget before the second.

    ``transport_factory``, when given, is called once per sync session
    with ``(source_id, target_id)`` and returns the (possibly faulty)
    channel for that session, or None for perfect delivery.

    .. deprecated::
        ``perform_encounter`` is a thin shim over
        :class:`repro.replication.session.EncounterSession` — construct
        one (keyword-only) and call :meth:`~EncounterSession.run`
        instead. The shim emits :class:`DeprecationWarning` and will be
        removed after one release, per the policy in ``docs/api.md``.
    """
    warnings.warn(
        "perform_encounter() is deprecated; use "
        "repro.replication.session.EncounterSession(...).run() "
        "(exported via repro.api)",
        DeprecationWarning,
        stacklevel=2,
    )
    from .session import EncounterSession, SessionConfig

    return EncounterSession(
        first=first,
        second=second,
        now=now,
        config=SessionConfig(
            max_items=max_items_per_encounter,
            use_index=use_index,
            use_cache=use_cache,
            digest=digest,
        ),
        transport_factory=transport_factory,
    ).run()
