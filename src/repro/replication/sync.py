"""The pairwise synchronisation protocol, with DTN policy hook points.

This implements the paper's Figure 4 flow::

    Target node:
        routingState = DTN.generateReq()
        send knowledge, filter, and routingState to source
        for each item received:
            add item to local store
            update knowledge

    Source node:
        receive knowledge, filter, and routingState
        DTN.processReq(routingState)
        for each item in local store:
            if item unknown to target:
                if item matches filter or DTN.toSend(item):
                    add item to batch
        sort batch by priority
        send batch to target

The *target* is the initiator (it asks "bring me up to date"); the *source*
is the responder that pushes items. One real-world **encounter** between
two hosts runs two syncs, alternating roles, which
:func:`perform_encounter` packages.

Bandwidth constraints (Figure 9) are modelled as a cap on the number of
items transferred; because the batch is priority-sorted before truncation,
constrained syncs send the most valuable items first, exactly the situation
MaxProp's ordering is designed for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from .errors import PolicyError
from .filters import Filter
from .ids import ReplicaId
from .items import Item
from .replica import Replica
from .routing import (
    NullRoutingPolicy,
    Priority,
    PriorityClass,
    RoutingPolicy,
    SyncContext,
)
from .versions import VersionVector


@dataclass
class SyncEndpoint:
    """A replica paired with its routing policy, as seen by the sync engine."""

    replica: Replica
    policy: RoutingPolicy = field(default_factory=NullRoutingPolicy)

    @property
    def replica_id(self) -> ReplicaId:
        return self.replica.replica_id


@dataclass
class SyncRequest:
    """What the target sends to open a sync: knowledge, filter, routing state."""

    target_id: ReplicaId
    knowledge: VersionVector
    filter: Filter
    routing_state: Any = None


@dataclass
class BatchEntry:
    """One item scheduled for transmission, with its priority."""

    item: Item
    matched_filter: bool
    priority: Priority


@dataclass
class SyncStats:
    """Counters describing one sync session, consumed by the metrics layer."""

    source: ReplicaId
    target: ReplicaId
    candidates: int = 0
    sent_total: int = 0
    sent_matching: int = 0
    sent_relayed: int = 0
    truncated: int = 0
    delivered_items: List[Item] = field(default_factory=list)

    @property
    def transmissions(self) -> int:
        return self.sent_total


def build_request(target: SyncEndpoint, context: SyncContext) -> SyncRequest:
    """Target side, step 1: snapshot knowledge + filter, add routing state."""
    routing_state = target.policy.generate_req(context)
    return SyncRequest(
        target_id=target.replica_id,
        knowledge=target.replica.knowledge.copy(),
        filter=target.replica.filter,
        routing_state=routing_state,
    )


def build_batch(
    source: SyncEndpoint,
    request: SyncRequest,
    context: SyncContext,
    max_items: Optional[int] = None,
) -> Tuple[List[BatchEntry], SyncStats]:
    """Source side: select, prioritise, order, and truncate the batch.

    Items matching the target's filter are always included, at
    :attr:`PriorityClass.FILTER_MATCH`; for each remaining unknown item the
    policy's ``to_send`` is consulted. The final batch is sorted by
    priority (stable, so equal priorities keep store order) and truncated
    to ``max_items`` when a bandwidth cap applies.
    """
    stats = SyncStats(source=source.replica_id, target=request.target_id)
    source.policy.process_req(request.routing_state, context)

    entries: List[BatchEntry] = []
    for item in source.replica.stored_items():
        if request.knowledge.contains(item.version):
            continue
        stats.candidates += 1
        if request.filter.matches(item):
            entries.append(
                BatchEntry(item, True, Priority(PriorityClass.FILTER_MATCH))
            )
        else:
            priority = source.policy.to_send(item, request.filter, context)
            if priority is None:
                continue
            if not isinstance(priority, Priority):
                raise PolicyError(
                    f"{source.policy.name}.to_send must return a Priority "
                    f"or None, got {type(priority).__name__}"
                )
            entries.append(BatchEntry(item, False, priority))

    entries.sort(key=lambda entry: entry.priority.sort_key())
    if max_items is not None and len(entries) > max_items:
        stats.truncated = len(entries) - max_items
        entries = entries[:max_items]

    prepared = [
        BatchEntry(
            source.policy.prepare_outgoing(entry.item, context),
            entry.matched_filter,
            entry.priority,
        )
        for entry in entries
    ]
    source.policy.on_items_sent([entry.item for entry in prepared], context)

    stats.sent_total = len(prepared)
    stats.sent_matching = sum(1 for entry in prepared if entry.matched_filter)
    stats.sent_relayed = stats.sent_total - stats.sent_matching
    return prepared, stats


def apply_batch(
    target: SyncEndpoint, batch: List[BatchEntry], stats: SyncStats
) -> SyncStats:
    """Target side, step 2: store every received item and update knowledge."""
    for entry in batch:
        matched = target.replica.apply_remote(entry.item)
        if matched:
            stats.delivered_items.append(entry.item)
    return stats


def perform_sync(
    source: SyncEndpoint,
    target: SyncEndpoint,
    now: float = 0.0,
    max_items: Optional[int] = None,
) -> SyncStats:
    """Run one complete sync session: ``target`` pulls from ``source``."""
    target_context = SyncContext(
        local=target.replica_id, remote=source.replica_id, now=now
    )
    source_context = SyncContext(
        local=source.replica_id, remote=target.replica_id, now=now
    )
    request = build_request(target, target_context)
    batch, stats = build_batch(source, request, source_context, max_items=max_items)
    return apply_batch(target, batch, stats)


def perform_encounter(
    first: SyncEndpoint,
    second: SyncEndpoint,
    now: float = 0.0,
    max_items_per_encounter: Optional[int] = None,
) -> List[SyncStats]:
    """Run one encounter: two syncs with alternating source/target roles.

    This follows the paper's experimental setup ("we performed two syncs
    between the corresponding replicas, alternating the source and target
    roles"). Policy ``on_encounter_start`` hooks fire once per side before
    either sync, so per-meeting state updates happen exactly once.

    ``max_items_per_encounter`` is the Figure 9 bandwidth constraint: a
    budget on total items moved across both syncs. The first sync (with
    ``first`` as source) consumes budget before the second.
    """
    first_context = SyncContext(
        local=first.replica_id, remote=second.replica_id, now=now
    )
    second_context = SyncContext(
        local=second.replica_id, remote=first.replica_id, now=now
    )
    first.policy.on_encounter_start(first_context)
    second.policy.on_encounter_start(second_context)

    budget = max_items_per_encounter
    stats_a = perform_sync(source=first, target=second, now=now, max_items=budget)
    if budget is not None:
        budget = max(0, budget - stats_a.sent_total)
    stats_b = perform_sync(source=second, target=first, now=now, max_items=budget)
    return [stats_a, stats_b]
