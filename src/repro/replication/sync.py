"""The pairwise synchronisation protocol, with DTN policy hook points.

This implements the paper's Figure 4 flow::

    Target node:
        routingState = DTN.generateReq()
        send knowledge, filter, and routingState to source
        for each item received:
            add item to local store
            update knowledge

    Source node:
        receive knowledge, filter, and routingState
        DTN.processReq(routingState)
        for each item in local store:
            if item unknown to target:
                if item matches filter or DTN.toSend(item):
                    add item to batch
        sort batch by priority
        send batch to target

The *target* is the initiator (it asks "bring me up to date"); the *source*
is the responder that pushes items. One real-world **encounter** between
two hosts runs two syncs, alternating roles, which
:func:`perform_encounter` packages.

Bandwidth constraints (Figure 9) are modelled as a cap on the number of
items transferred; because the batch is priority-sorted before truncation,
constrained syncs send the most valuable items first, exactly the situation
MaxProp's ordering is designed for.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro._compat import DATACLASS_SLOTS

from .errors import PolicyError
from .filters import Filter
from .ids import ReplicaId
from .items import Item
from .replica import Replica
from .routing import (
    NullRoutingPolicy,
    Priority,
    PriorityClass,
    RoutingPolicy,
    SyncContext,
)
from .versions import VersionVector


@dataclass
class SyncEndpoint:
    """A replica paired with its routing policy, as seen by the sync engine."""

    replica: Replica
    policy: RoutingPolicy = field(default_factory=NullRoutingPolicy)

    @property
    def replica_id(self) -> ReplicaId:
        return self.replica.replica_id


@dataclass
class SyncRequest:
    """What the target sends to open a sync: knowledge, filter, routing state."""

    target_id: ReplicaId
    knowledge: VersionVector
    filter: Filter
    routing_state: Any = None


@dataclass(**DATACLASS_SLOTS)
class BatchEntry:
    """One item scheduled for transmission, with its priority."""

    item: Item
    matched_filter: bool
    priority: Priority


@dataclass
class SyncStats:
    """Counters describing one sync session, consumed by the metrics layer.

    ``truncated`` counts items dropped by the *bandwidth cap* before
    transmission (Figure 9); the transit-fault fields describe what the
    channel did to the items that were actually sent: ``received_total``
    items stored by the target, ``lost_in_transit`` items cut off by an
    interrupted transfer, ``redundant_received`` duplicate deliveries the
    target recognised and discarded, and ``interrupted`` marking a session
    whose batch was truncated mid-transfer (the next encounter resumes it).

    The scan-cost fields make the hot-path optimisations observable:
    ``store_size`` is how many items the source held (what a full scan
    would have visited), ``candidates`` how many the version index
    actually enumerated (the unknown items), ``index_skipped`` the
    difference, and the ``filter_cache_*`` counters how the memoised
    peer-filter evaluations fared while building this batch.
    """

    source: ReplicaId
    target: ReplicaId
    candidates: int = 0
    store_size: int = 0
    index_skipped: int = 0
    filter_cache_hits: int = 0
    filter_cache_misses: int = 0
    filter_cache_invalidations: int = 0
    sent_total: int = 0
    sent_matching: int = 0
    sent_relayed: int = 0
    truncated: int = 0
    received_total: int = 0
    lost_in_transit: int = 0
    redundant_received: int = 0
    interrupted: bool = False
    delivered_items: List[Item] = field(default_factory=list)

    @property
    def transmissions(self) -> int:
        return self.sent_total

    @property
    def completed(self) -> bool:
        """True when every transmitted item reached the target."""
        return not self.interrupted


def build_request(target: SyncEndpoint, context: SyncContext) -> SyncRequest:
    """Target side, step 1: snapshot knowledge + filter, add routing state."""
    routing_state = target.policy.generate_req(context)
    return SyncRequest(
        target_id=target.replica_id,
        knowledge=target.replica.knowledge.copy(),
        filter=target.replica.filter,
        routing_state=routing_state,
    )


def build_batch(
    source: SyncEndpoint,
    request: SyncRequest,
    context: SyncContext,
    max_items: Optional[int] = None,
    use_index: bool = True,
) -> Tuple[List[BatchEntry], SyncStats]:
    """Source side: select, prioritise, order, and truncate the batch.

    Items matching the target's filter are always included, at
    :attr:`PriorityClass.FILTER_MATCH`; for each remaining unknown item the
    policy's ``to_send`` is consulted. The final batch is sorted by
    priority (stable, so equal priorities keep store order) and truncated
    to ``max_items`` when a bandwidth cap applies (via a partial sort —
    picking the same prefix a full sort-then-slice would).

    With ``use_index`` (the default) the unknown items are enumerated
    through the stores' version indexes and the target-filter evaluations
    go through the source's :class:`~repro.replication.filters.FilterMatchCache`
    — per-encounter cost proportional to what the target is missing.
    ``use_index=False`` keeps the original full-store scan; it exists as
    the measured baseline for ``repro bench sync`` and the equivalence
    tests, and produces identical batches.

    Building does **not** fire ``on_items_sent`` — the channel has not
    carried anything yet. :func:`perform_sync` invokes the hook with the
    entries that were actually delivered; callers assembling the protocol
    by hand must do the same once delivery is confirmed.
    """
    stats = SyncStats(source=source.replica_id, target=request.target_id)
    source.policy.process_req(request.routing_state, context)

    stats.store_size = source.replica.stored_count
    if use_index:
        unknown = source.replica.items_unknown_to(request.knowledge)
        cache = source.replica.filter_cache
        hits, misses, invalidations = cache.hits, cache.misses, cache.invalidations
        matches = lambda item: cache.matches(request.filter, item)  # noqa: E731
    else:
        unknown = source.replica.items_unknown_to_scan(request.knowledge)
        matches = request.filter.matches
    stats.candidates = len(unknown)
    stats.index_skipped = stats.store_size - stats.candidates

    entries: List[BatchEntry] = []
    for item in unknown:
        if matches(item):
            entries.append(
                BatchEntry(item, True, Priority(PriorityClass.FILTER_MATCH))
            )
        else:
            priority = source.policy.to_send(item, request.filter, context)
            if priority is None:
                continue
            if not isinstance(priority, Priority):
                raise PolicyError(
                    f"{source.policy.name}.to_send must return a Priority "
                    f"or None, got {type(priority).__name__}"
                )
            entries.append(BatchEntry(item, False, priority))

    if use_index:
        stats.filter_cache_hits = cache.hits - hits
        stats.filter_cache_misses = cache.misses - misses
        stats.filter_cache_invalidations = cache.invalidations - invalidations

    if max_items is not None and len(entries) > max_items:
        # Partial sort: same prefix as a stable full sort followed by a
        # slice (the enumeration index breaks ties), at O(n log k).
        stats.truncated = len(entries) - max_items
        entries = [
            entry
            for _, entry in heapq.nsmallest(
                max_items,
                enumerate(entries),
                key=lambda pair: (pair[1].priority.sort_key(), pair[0]),
            )
        ]
    else:
        entries.sort(key=lambda entry: entry.priority.sort_key())

    prepared = [
        BatchEntry(
            source.policy.prepare_outgoing(entry.item, context),
            entry.matched_filter,
            entry.priority,
        )
        for entry in entries
    ]
    stats.sent_total = len(prepared)
    stats.sent_matching = sum(1 for entry in prepared if entry.matched_filter)
    stats.sent_relayed = stats.sent_total - stats.sent_matching
    return prepared, stats


def apply_batch(
    target: SyncEndpoint,
    batch: List[BatchEntry],
    stats: SyncStats,
    tolerate_duplicates: bool = False,
) -> SyncStats:
    """Target side, step 2: store every received item and update knowledge.

    Knowledge commits *per item*, in received order — this is the monotone
    progress property: if the stream of entries is cut at any point, the
    delivered prefix is durably received and only the lost suffix remains
    unknown (to be offered again at the next encounter).

    ``tolerate_duplicates`` selects the transport contract. Over a perfect
    channel (the default) an already-known version is a protocol bug and
    :meth:`~repro.replication.replica.Replica.apply_remote` raises; over a
    lossy channel duplicated delivery is expected, so known versions are
    counted as redundant receptions and skipped.
    """
    for entry in batch:
        if tolerate_duplicates and target.replica.knowledge.contains(
            entry.item.version
        ):
            stats.redundant_received += 1
            continue
        matched = target.replica.apply_remote(entry.item)
        stats.received_total += 1
        if matched:
            stats.delivered_items.append(entry.item)
    return stats


def _each_entry_once(delivered: List[BatchEntry]) -> List[BatchEntry]:
    """The delivered entries with channel duplicates collapsed, in order."""
    seen = set()
    unique: List[BatchEntry] = []
    for entry in delivered:
        key = (entry.item.item_id, entry.item.version)
        if key in seen:
            continue
        seen.add(key)
        unique.append(entry)
    return unique


def perform_sync(
    source: SyncEndpoint,
    target: SyncEndpoint,
    now: float = 0.0,
    max_items: Optional[int] = None,
    transport: Optional[Any] = None,
    use_index: bool = True,
) -> SyncStats:
    """Run one complete sync session: ``target`` pulls from ``source``.

    ``transport``, when given, mediates batch delivery (duck-typed to
    :class:`repro.faults.FaultyTransport`): it may truncate the batch —
    the target then commits knowledge for exactly the delivered prefix and
    the session is marked ``interrupted`` — and it may duplicate entries,
    which the target tolerates and counts as redundant receptions.

    ``on_items_sent`` fires only for entries the channel actually carried
    (each once, however many times it was duplicated): a policy that
    releases its stored copy on hand-off (First Contact) or spends a copy
    budget (Spray and Wait) must not pay for items lost in transit —
    those stay stored and re-offerable, preserving monotone progress.
    """
    target_context = SyncContext(
        local=target.replica_id, remote=source.replica_id, now=now
    )
    source_context = SyncContext(
        local=source.replica_id, remote=target.replica_id, now=now
    )
    request = build_request(target, target_context)
    batch, stats = build_batch(
        source, request, source_context, max_items=max_items, use_index=use_index
    )
    if transport is None:
        source.policy.on_items_sent(
            [entry.item for entry in batch], source_context
        )
        return apply_batch(target, batch, stats)
    outcome = transport.deliver(batch)
    stats.interrupted = outcome.truncated
    stats.lost_in_transit = outcome.lost
    delivered_once = _each_entry_once(outcome.delivered)
    source.policy.on_items_sent(
        [entry.item for entry in delivered_once], source_context
    )
    return apply_batch(target, outcome.delivered, stats, tolerate_duplicates=True)


def perform_encounter(
    first: SyncEndpoint,
    second: SyncEndpoint,
    now: float = 0.0,
    max_items_per_encounter: Optional[int] = None,
    transport_factory: Optional[Any] = None,
    use_index: bool = True,
) -> List[SyncStats]:
    """Run one encounter: two syncs with alternating source/target roles.

    This follows the paper's experimental setup ("we performed two syncs
    between the corresponding replicas, alternating the source and target
    roles"). Policy ``on_encounter_start`` hooks fire once per side before
    either sync, so per-meeting state updates happen exactly once.

    ``max_items_per_encounter`` is the Figure 9 bandwidth constraint: a
    budget on total items moved across both syncs. The first sync (with
    ``first`` as source) consumes budget before the second.

    ``transport_factory``, when given, is called once per sync session
    with ``(source_id, target_id)`` and returns the (possibly faulty)
    channel for that session, or None for perfect delivery.
    """
    first_context = SyncContext(
        local=first.replica_id, remote=second.replica_id, now=now
    )
    second_context = SyncContext(
        local=second.replica_id, remote=first.replica_id, now=now
    )
    first.policy.on_encounter_start(first_context)
    second.policy.on_encounter_start(second_context)

    def channel(source: SyncEndpoint, target: SyncEndpoint) -> Optional[Any]:
        if transport_factory is None:
            return None
        return transport_factory(source.replica_id, target.replica_id)

    budget = max_items_per_encounter
    stats_a = perform_sync(
        source=first,
        target=second,
        now=now,
        max_items=budget,
        transport=channel(first, second),
        use_index=use_index,
    )
    if budget is not None:
        budget = max(0, budget - stats_a.sent_total)
    stats_b = perform_sync(
        source=second,
        target=first,
        now=now,
        max_items=budget,
        transport=channel(second, first),
        use_index=use_index,
    )
    return [stats_a, stats_b]
