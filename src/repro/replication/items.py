"""Replicated items and their metadata.

An :class:`Item` is the replication unit. It carries:

* an :class:`~repro.replication.ids.ItemId` (stable across versions),
* a :class:`~repro.replication.ids.Version` (changes on every update),
* an opaque ``payload`` (the message body, in the DTN application),
* ``attributes`` — *replicated* metadata that travels with the item and is
  visible to filters (destination address, source address, timestamps…),
* ``local_attributes`` — *host-specific* metadata that is **not** replicated
  and does not bump the version (e.g. Epidemic's TTL, Spray-and-Wait's copy
  budget). Section V-A of the paper calls these "transient metadata
  associated with a specific copy of a message"; updating them must not make
  the item look like a new version during subsequent syncs.

Items are value objects from the protocol's point of view but expose an
explicit :meth:`Item.with_local` so policies can adjust per-copy state
without version churn, mirroring Cimbiosys's internal no-new-version update
interface that the paper relies on for Spray and Wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from .ids import ItemId, Version

#: Reserved attribute names used by the messaging application. Policies and
#: applications may add their own attributes freely; these are the ones the
#: substrate and bundled policies know about.
ATTR_SOURCE = "source"
ATTR_DESTINATION = "destination"
ATTR_CREATED_AT = "created_at"
ATTR_KIND = "kind"

#: ``kind`` values with substrate-level meaning.
KIND_MESSAGE = "message"
KIND_ACK = "ack"
KIND_TOMBSTONE = "tombstone"

#: Name of the per-instance content-checksum memo (see
#: :func:`repro.replication.integrity.cached_item_checksum`). The memo is a
#: non-field attribute set with ``object.__setattr__``, so
#: ``dataclasses.replace`` never copies it — any derivation that *could*
#: change replicated content starts clean. Only the two derivations that
#: provably preserve replicated content (:meth:`Item.with_local`,
#: :meth:`Item.without_local`; the checksum excludes host-local attributes)
#: carry it over explicitly.
CHECKSUM_MEMO_ATTRIBUTE = "_content_checksum"


class _OwnedDict(dict):
    """A mapping an :class:`Item` constructor created and owns.

    ``__post_init__`` copies incoming mappings defensively; mappings of
    this type were built inside this module, are never mutated after being
    bound to an item, and can therefore be adopted (and shared between
    items) without another copy.
    """

    __slots__ = ()


def _copy_content_memo(source: "Item", derived: "Item") -> "Item":
    """Carry ``source``'s checksum memo onto a content-identical derivation."""
    memo = getattr(source, CHECKSUM_MEMO_ATTRIBUTE, None)
    if memo is not None:
        object.__setattr__(derived, CHECKSUM_MEMO_ATTRIBUTE, memo)
    return derived


@dataclass(frozen=True)
class Item:
    """One version of one replicated item.

    Instances are immutable; updates produce new instances. Equality and
    hashing consider only ``(item_id, version)`` — two copies of the same
    version on different hosts are "the same item" even if their host-local
    attributes differ, which is exactly the semantics at-most-once delivery
    needs.
    """

    item_id: ItemId
    version: Version
    payload: Any = None
    attributes: Mapping[str, Any] = field(default_factory=dict)
    local_attributes: Mapping[str, Any] = field(default_factory=dict)
    deleted: bool = False

    def __post_init__(self) -> None:
        # Freeze the mapping views so accidental aliasing cannot mutate a
        # stored item; dataclass(frozen=True) only protects the bindings.
        # Mappings this module built itself are adopted as-is — the
        # derivation helpers below would otherwise pay two copies per hop.
        if type(self.attributes) is not _OwnedDict:
            object.__setattr__(self, "attributes", _OwnedDict(self.attributes))
        if type(self.local_attributes) is not _OwnedDict:
            object.__setattr__(
                self, "local_attributes", _OwnedDict(self.local_attributes)
            )

    # -- identity ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Item):
            return NotImplemented
        return self.item_id == other.item_id and self.version == other.version

    def __hash__(self) -> int:
        return hash((self.item_id, self.version))

    # -- attribute access ---------------------------------------------------------

    def attribute(self, name: str, default: Any = None) -> Any:
        """Read a replicated attribute."""
        return self.attributes.get(name, default)

    def local(self, name: str, default: Any = None) -> Any:
        """Read a host-local (non-replicated) attribute."""
        return self.local_attributes.get(name, default)

    @property
    def source(self) -> Any:
        return self.attributes.get(ATTR_SOURCE)

    @property
    def destination(self) -> Any:
        return self.attributes.get(ATTR_DESTINATION)

    @property
    def kind(self) -> str:
        return self.attributes.get(ATTR_KIND, KIND_MESSAGE)

    # -- derivation ---------------------------------------------------------------

    def with_version(self, version: Version, **changes: Any) -> "Item":
        """A new version of this item (a replicated update)."""
        return replace(self, version=version, **changes)

    def with_local(self, **local_changes: Any) -> "Item":
        """Same version, adjusted host-local attributes.

        This is the no-new-version update path: the result compares equal to
        the original, so knowledge and sync behaviour are unaffected.
        Returns ``self`` when every change is a no-op (the value already
        stored, or a delete of an absent key), so hot paths that re-stamp
        unchanged per-copy state allocate nothing.
        """
        merged = _OwnedDict(self.local_attributes)
        changed = False
        for key, value in local_changes.items():
            if value is None:
                if merged.pop(key, None) is not None:
                    changed = True
            elif merged.get(key) != value or key not in merged:
                merged[key] = value
                changed = True
        if not changed:
            return self
        return _copy_content_memo(
            self, replace(self, local_attributes=merged)
        )

    def without_local(self) -> "Item":
        """A copy stripped of host-local attributes, as sent on the wire.

        Host-local metadata must never replicate; the sync layer calls this
        before handing an item to the transport (policies may then attach
        fresh per-copy state for the receiving host, e.g. a decremented TTL).
        """
        if not self.local_attributes:
            return self
        return _copy_content_memo(
            self, replace(self, local_attributes=_OwnedDict())
        )

    def as_tombstone(self, version: Version) -> "Item":
        """A deletion marker for this item.

        Tombstones replicate like ordinary updates so that deletions reach
        every interested replica (the paper's "destination deletes the item,
        causing it to be discarded by forwarding nodes").
        """
        return replace(self, version=version, payload=None, deleted=True)

    def __repr__(self) -> str:
        flags = " deleted" if self.deleted else ""
        return f"Item({self.item_id}@{self.version}{flags})"
