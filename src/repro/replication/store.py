"""Item storage for a replica: the in-filter store and the relay store.

A replica holds items in two logical stores:

* The **item store** holds items matching the replica's filter — the data
  the host actually wants (its own mail, plus relay addresses it opted
  into via a multi-address filter).
* The **relay store** (the generalisation of Cimbiosys's *push-out store*)
  holds items that do *not* match the filter but that a DTN routing policy
  decided this host should carry on behalf of others. Section IV-C of the
  paper extends Cimbiosys's push-out mechanism to exactly this use.

Keeping the stores separate matters for the evaluation: the Figure 10
storage constraint caps only relayed messages ("excluding messages for
which the node itself is the sender or the destination"), and the FIFO
eviction it prescribes applies to the relay store alone.

Both stores index items by :class:`~repro.replication.ids.ItemId` and hold
exactly one (the latest known) version per id.

Beyond the primary id index, every :class:`ItemStore` maintains a
**version index**: per authoring replica, the stored version counters in
sorted order. Because a peer's knowledge is a per-replica prefix plus a
small extras set (see :mod:`repro.replication.versions`), the index lets
:meth:`ItemStore.unknown_items` enumerate exactly the stored items a
given knowledge vector does *not* cover — a bisect to skip the known
prefix, then a walk of the tail — instead of probing ``contains`` on
every stored item. That query is the sync hot path: one call per sync
session, proportional to what the peer is missing rather than to the
store size.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .errors import UnknownItemError
from .ids import ItemId, ReplicaId
from .items import Item
from .versions import VersionVector

#: Callback invoked when the relay store evicts an item under pressure.
EvictionCallback = Callable[[Item], None]


class ItemStore:
    """A keyed store of the latest known version of each item.

    Insertion order is preserved (Python dicts are ordered), which the relay
    store's FIFO eviction relies on. Alongside the primary dict the store
    keeps the version index (``origin replica → sorted counters``) and a
    monotone per-insertion sequence number used to report query results in
    insertion order; both are maintained incrementally on every mutation.
    """

    __slots__ = (
        "_items",
        "_by_origin",
        "_version_owner",
        "_order",
        "_seq",
        "_snapshot",
        "checksum_cache",
    )

    def __init__(self) -> None:
        self._items: Dict[ItemId, Item] = {}
        #: Optional :class:`~repro.replication.integrity.ChecksumCache`
        #: notified whenever an item (version) leaves this store, so cached
        #: checksums can never outlive the content they describe. The
        #: owning :class:`~repro.replication.replica.Replica` attaches one
        #: cache shared across its three stores.
        self.checksum_cache = None
        #: origin replica → sorted list of stored version counters.
        self._by_origin: Dict[ReplicaId, List[int]] = {}
        #: (origin replica, counter) → item id holding that version.
        self._version_owner: Dict[Tuple[ReplicaId, int], ItemId] = {}
        #: item id → insertion sequence (re-insertion bumps it, like the dict).
        self._order: Dict[ItemId, int] = {}
        self._seq = 0
        #: Cached insertion-order tuple, rebuilt lazily after mutations.
        self._snapshot: Optional[Tuple[Item, ...]] = None

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item_id: ItemId) -> bool:
        return item_id in self._items

    def __iter__(self) -> Iterator[Item]:
        return iter(self.items())

    def get(self, item_id: ItemId) -> Optional[Item]:
        return self._items.get(item_id)

    def require(self, item_id: ItemId) -> Item:
        item = self._items.get(item_id)
        if item is None:
            raise UnknownItemError(item_id)
        return item

    def put(self, item: Item) -> None:
        """Insert or replace the stored version of ``item``.

        Replacing re-inserts at the end of iteration order: a *newer
        version* of a relayed message counts as fresh arrival for FIFO
        purposes.
        """
        previous = self._items.pop(item.item_id, None)
        if previous is not None:
            self._index_remove(previous)
            if (
                self.checksum_cache is not None
                and previous.version != item.version
            ):
                # Version supersession: the old version's content is gone
                # from this store, so its cached checksums must go too.
                self.checksum_cache.forget(previous)
        self._items[item.item_id] = item
        self._index_add(item)
        self._order[item.item_id] = self._seq
        self._seq += 1
        self._snapshot = None

    def update_in_place(self, item: Item) -> None:
        """Replace a stored item without touching its FIFO position.

        Used for host-local attribute adjustments (TTL decrements, copy
        halving) which must not look like fresh arrivals.
        """
        previous = self._items.get(item.item_id)
        if previous is None:
            raise UnknownItemError(item.item_id)
        if previous.version != item.version:
            # Callers adjust host-local state only, so the version should
            # never change here; keep the index and cache right regardless.
            self._index_remove(previous)
            self._index_add(item)
            if self.checksum_cache is not None:
                self.checksum_cache.forget(previous)
        self._items[item.item_id] = item
        self._snapshot = None

    def remove(self, item_id: ItemId) -> Item:
        item = self._items.pop(item_id, None)
        if item is None:
            raise UnknownItemError(item_id)
        self._index_remove(item)
        self._order.pop(item_id, None)
        self._snapshot = None
        if self.checksum_cache is not None:
            self.checksum_cache.forget(item)
        return item

    def discard(self, item_id: ItemId) -> Optional[Item]:
        item = self._items.pop(item_id, None)
        if item is not None:
            self._index_remove(item)
            self._order.pop(item_id, None)
            self._snapshot = None
            if self.checksum_cache is not None:
                self.checksum_cache.forget(item)
        return item

    def oldest(self) -> Optional[Item]:
        """The item at the front of insertion order (FIFO eviction victim)."""
        for item in self._items.values():
            return item
        return None

    def items(self) -> Sequence[Item]:
        """A snapshot of stored items in insertion order.

        The snapshot is an immutable tuple cached until the next mutation,
        so callers that only iterate (eviction strategies, persistence,
        filter re-scans) pay no per-call allocation; it also stays safe to
        iterate while the store is being mutated.
        """
        if self._snapshot is None:
            self._snapshot = tuple(self._items.values())
        return self._snapshot

    def clear(self) -> None:
        if self.checksum_cache is not None:
            for item in self._items.values():
                self.checksum_cache.forget(item)
        self._items.clear()
        self._by_origin.clear()
        self._version_owner.clear()
        self._order.clear()
        self._snapshot = None

    # -- version index -----------------------------------------------------------

    def _index_add(self, item: Item) -> None:
        version = item.version
        counters = self._by_origin.get(version.replica)
        if counters is None:
            self._by_origin[version.replica] = [version.counter]
        elif counters and version.counter > counters[-1]:
            counters.append(version.counter)  # common case: counters ascend
        else:
            insort(counters, version.counter)
        self._version_owner[(version.replica, version.counter)] = item.item_id

    def _index_remove(self, item: Item) -> None:
        version = item.version
        self._version_owner.pop((version.replica, version.counter), None)
        counters = self._by_origin.get(version.replica)
        if counters is None:
            return
        index = bisect_right(counters, version.counter) - 1
        if 0 <= index < len(counters) and counters[index] == version.counter:
            del counters[index]
        if not counters:
            del self._by_origin[version.replica]

    def unknown_items(self, knowledge: VersionVector) -> List[Item]:
        """Stored items whose versions ``knowledge`` does not cover.

        Equivalent to filtering :meth:`items` through
        ``knowledge.contains`` — same items, same insertion order — but
        walks the version index instead: per authoring replica, a bisect
        skips every counter inside the peer's known prefix and only the
        tail (minus the peer's extras) is visited. Cost is proportional to
        the number of *unknown* items, not the store size.
        """
        found: List[Item] = []
        for origin, counters in self._by_origin.items():
            prefix = knowledge.known_counter_prefix(origin)
            if counters[-1] <= prefix:
                continue  # everything from this origin is already known
            extras = knowledge.extra_counters(origin)
            start = bisect_right(counters, prefix)
            for counter in counters[start:]:
                if counter in extras:
                    continue
                found.append(self._items[self._version_owner[(origin, counter)]])
        order = self._order
        found.sort(key=lambda item: order[item.item_id])
        return found


#: An eviction strategy picks the victim among currently stored items.
EvictionStrategy = Callable[[Sequence[Item]], Item]


def evict_fifo(items: Sequence[Item]) -> Item:
    """Drop the item that arrived first (the paper's Figure 10 policy)."""
    return items[0]


def evict_random(items: Sequence[Item]) -> Item:
    """Drop a deterministic pseudo-random victim (seeded by store contents).

    Randomised buffer management is a common DTN baseline; this variant
    hashes the candidate ids so runs stay reproducible without threading
    an RNG through the store.
    """
    index = hash(tuple(str(item.item_id) for item in items)) % len(items)
    return items[index]


def evict_oldest_created(items: Sequence[Item]) -> Item:
    """Drop the message created longest ago (by ``created_at`` attribute).

    Old messages have had the most delivery opportunities already; many
    DTN buffer studies prefer evicting them over recent arrivals. Items
    without a creation timestamp count as oldest.
    """
    return min(
        items,
        key=lambda item: (
            float(item.attribute("created_at", float("-inf"))),
            str(item.item_id),
        ),
    )


EVICTION_STRATEGIES = {
    "fifo": evict_fifo,
    "random": evict_random,
    "oldest-created": evict_oldest_created,
}


@dataclass
class RelayStore:
    """The out-of-filter store, optionally capacity-bounded with eviction.

    ``capacity`` of ``None`` means unbounded (the paper's default runs).
    When a put would exceed capacity, ``strategy`` picks a victim among
    the stored items (FIFO by default — the paper's Figure 10 policy) and
    ``on_evict`` (if set) is told, so the emulation can count drops. A
    capacity of 0 disables relaying entirely. ``strategy`` accepts a
    name from :data:`EVICTION_STRATEGIES` or any callable mapping the
    stored-item sequence to the victim.
    """

    capacity: Optional[int] = None
    on_evict: Optional[EvictionCallback] = None
    strategy: Union[str, EvictionStrategy] = "fifo"
    _store: ItemStore = field(default_factory=ItemStore, init=False)

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 0:
            raise ValueError("relay store capacity must be >= 0 or None")
        if isinstance(self.strategy, str):
            try:
                self.strategy = EVICTION_STRATEGIES[self.strategy]
            except KeyError:
                raise ValueError(
                    f"unknown eviction strategy {self.strategy!r}; "
                    f"known: {', '.join(sorted(EVICTION_STRATEGIES))}"
                ) from None

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, item_id: ItemId) -> bool:
        return item_id in self._store

    def __iter__(self) -> Iterator[Item]:
        return iter(self._store)

    def get(self, item_id: ItemId) -> Optional[Item]:
        return self._store.get(item_id)

    def put(self, item: Item) -> bool:
        """Store a relayed item, evicting FIFO if needed.

        Returns ``True`` if the item ended up stored, ``False`` if capacity
        is zero (nothing can be relayed).
        """
        if self.capacity == 0:
            return False
        already_held = item.item_id in self._store
        if (
            self.capacity is not None
            and not already_held
            and len(self._store) >= self.capacity
        ):
            candidates = self._store.items()
            if candidates:
                victim = self.strategy(candidates)  # type: ignore[operator]
                self._store.remove(victim.item_id)
                if self.on_evict is not None:
                    self.on_evict(victim)
        self._store.put(item)
        return True

    def update_in_place(self, item: Item) -> None:
        self._store.update_in_place(item)

    def discard(self, item_id: ItemId) -> Optional[Item]:
        return self._store.discard(item_id)

    def items(self) -> Sequence[Item]:
        return self._store.items()

    def unknown_items(self, knowledge: VersionVector) -> List[Item]:
        """See :meth:`ItemStore.unknown_items`."""
        return self._store.unknown_items(knowledge)

    def attach_checksum_cache(self, cache: Any) -> None:
        """Route this store's invalidations into a replica-wide cache."""
        self._store.checksum_cache = cache

    def clear(self) -> None:
        self._store.clear()
