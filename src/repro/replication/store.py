"""Item storage for a replica: the in-filter store and the relay store.

A replica holds items in two logical stores:

* The **item store** holds items matching the replica's filter — the data
  the host actually wants (its own mail, plus relay addresses it opted
  into via a multi-address filter).
* The **relay store** (the generalisation of Cimbiosys's *push-out store*)
  holds items that do *not* match the filter but that a DTN routing policy
  decided this host should carry on behalf of others. Section IV-C of the
  paper extends Cimbiosys's push-out mechanism to exactly this use.

Keeping the stores separate matters for the evaluation: the Figure 10
storage constraint caps only relayed messages ("excluding messages for
which the node itself is the sender or the destination"), and the FIFO
eviction it prescribes applies to the relay store alone.

Both stores index items by :class:`~repro.replication.ids.ItemId` and hold
exactly one (the latest known) version per id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Union

from .errors import UnknownItemError
from .ids import ItemId
from .items import Item

#: Callback invoked when the relay store evicts an item under pressure.
EvictionCallback = Callable[[Item], None]


class ItemStore:
    """A keyed store of the latest known version of each item.

    Insertion order is preserved (Python dicts are ordered), which the relay
    store's FIFO eviction relies on.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: Dict[ItemId, Item] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item_id: ItemId) -> bool:
        return item_id in self._items

    def __iter__(self) -> Iterator[Item]:
        return iter(list(self._items.values()))

    def get(self, item_id: ItemId) -> Optional[Item]:
        return self._items.get(item_id)

    def require(self, item_id: ItemId) -> Item:
        item = self._items.get(item_id)
        if item is None:
            raise UnknownItemError(item_id)
        return item

    def put(self, item: Item) -> None:
        """Insert or replace the stored version of ``item``.

        Replacing re-inserts at the end of iteration order: a *newer
        version* of a relayed message counts as fresh arrival for FIFO
        purposes.
        """
        self._items.pop(item.item_id, None)
        self._items[item.item_id] = item

    def update_in_place(self, item: Item) -> None:
        """Replace a stored item without touching its FIFO position.

        Used for host-local attribute adjustments (TTL decrements, copy
        halving) which must not look like fresh arrivals.
        """
        if item.item_id not in self._items:
            raise UnknownItemError(item.item_id)
        self._items[item.item_id] = item

    def remove(self, item_id: ItemId) -> Item:
        item = self._items.pop(item_id, None)
        if item is None:
            raise UnknownItemError(item_id)
        return item

    def discard(self, item_id: ItemId) -> Optional[Item]:
        return self._items.pop(item_id, None)

    def oldest(self) -> Optional[Item]:
        """The item at the front of insertion order (FIFO eviction victim)."""
        for item in self._items.values():
            return item
        return None

    def items(self) -> List[Item]:
        """A snapshot list of stored items in insertion order."""
        return list(self._items.values())

    def clear(self) -> None:
        self._items.clear()


#: An eviction strategy picks the victim among currently stored items.
EvictionStrategy = Callable[[List[Item]], Item]


def evict_fifo(items: List[Item]) -> Item:
    """Drop the item that arrived first (the paper's Figure 10 policy)."""
    return items[0]


def evict_random(items: List[Item]) -> Item:
    """Drop a deterministic pseudo-random victim (seeded by store contents).

    Randomised buffer management is a common DTN baseline; this variant
    hashes the candidate ids so runs stay reproducible without threading
    an RNG through the store.
    """
    index = hash(tuple(str(item.item_id) for item in items)) % len(items)
    return items[index]


def evict_oldest_created(items: List[Item]) -> Item:
    """Drop the message created longest ago (by ``created_at`` attribute).

    Old messages have had the most delivery opportunities already; many
    DTN buffer studies prefer evicting them over recent arrivals. Items
    without a creation timestamp count as oldest.
    """
    return min(
        items,
        key=lambda item: (
            float(item.attribute("created_at", float("-inf"))),
            str(item.item_id),
        ),
    )


EVICTION_STRATEGIES = {
    "fifo": evict_fifo,
    "random": evict_random,
    "oldest-created": evict_oldest_created,
}


@dataclass
class RelayStore:
    """The out-of-filter store, optionally capacity-bounded with eviction.

    ``capacity`` of ``None`` means unbounded (the paper's default runs).
    When a put would exceed capacity, ``strategy`` picks a victim among
    the stored items (FIFO by default — the paper's Figure 10 policy) and
    ``on_evict`` (if set) is told, so the emulation can count drops. A
    capacity of 0 disables relaying entirely. ``strategy`` accepts a
    name from :data:`EVICTION_STRATEGIES` or any callable mapping the
    stored-item list to the victim.
    """

    capacity: Optional[int] = None
    on_evict: Optional[EvictionCallback] = None
    strategy: Union[str, EvictionStrategy] = "fifo"
    _store: ItemStore = field(default_factory=ItemStore, init=False)

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 0:
            raise ValueError("relay store capacity must be >= 0 or None")
        if isinstance(self.strategy, str):
            try:
                self.strategy = EVICTION_STRATEGIES[self.strategy]
            except KeyError:
                raise ValueError(
                    f"unknown eviction strategy {self.strategy!r}; "
                    f"known: {', '.join(sorted(EVICTION_STRATEGIES))}"
                ) from None

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, item_id: ItemId) -> bool:
        return item_id in self._store

    def __iter__(self) -> Iterator[Item]:
        return iter(self._store)

    def get(self, item_id: ItemId) -> Optional[Item]:
        return self._store.get(item_id)

    def put(self, item: Item) -> bool:
        """Store a relayed item, evicting FIFO if needed.

        Returns ``True`` if the item ended up stored, ``False`` if capacity
        is zero (nothing can be relayed).
        """
        if self.capacity == 0:
            return False
        already_held = item.item_id in self._store
        if (
            self.capacity is not None
            and not already_held
            and len(self._store) >= self.capacity
        ):
            candidates = self._store.items()
            if candidates:
                victim = self.strategy(candidates)  # type: ignore[operator]
                self._store.remove(victim.item_id)
                if self.on_evict is not None:
                    self.on_evict(victim)
        self._store.put(item)
        return True

    def update_in_place(self, item: Item) -> None:
        self._store.update_in_place(item)

    def discard(self, item_id: ItemId) -> Optional[Item]:
        return self._store.discard(item_id)

    def items(self) -> List[Item]:
        return self._store.items()

    def clear(self) -> None:
        self._store.clear()
