"""Checkpointing replica state to disk.

Cimbiosys replicas survive restarts: the item stores, knowledge, filter,
and version counters persist, and Section V-A of the paper adds the
requirement that routing policies "can define persistent data structures
which are serialized to disk and retrieved whenever a synchronization
operation is invoked". This module provides both halves:

* :func:`replica_to_state` / :func:`replica_from_state` — a complete,
  JSON-representable snapshot of a replica (all three stores in FIFO
  order, knowledge, filter, id-factory counters);
* :func:`save_replica` / :func:`load_replica` — the same, to/from a file,
  optionally bundling a routing policy's persistent state alongside
  (policies expose ``persistent_state()`` / ``restore_state()``; see
  :class:`repro.dtn.policy.DTNPolicy`).

Restoring produces a replica that is protocol-indistinguishable from the
one saved: same knowledge, same stored versions, same future ids — so a
host can check-point between encounters and resume where it left off.
"""

from __future__ import annotations

import json
import pathlib
import warnings
from typing import Any, Dict, Optional, Union

from .codec import (
    CodecError,
    decode_filter,
    decode_item,
    decode_knowledge,
    encode_filter,
    encode_item,
    encode_knowledge,
)
from .ids import ReplicaId
from .replica import Replica
from .store import EVICTION_STRATEGIES

#: Format marker so future layout changes can be detected on load.
STATE_FORMAT = "repro.replica-state.v1"


def _eviction_strategy_name(replica: Replica) -> Optional[str]:
    """The registered name of the relay store's eviction strategy.

    Custom callables have no serialisable name and checkpoint as None;
    loading falls back to the default (FIFO) strategy. That silently
    changes eviction behaviour across a crash-restart, so checkpointing
    an unregistered strategy warns — register the callable in
    :data:`~repro.replication.store.EVICTION_STRATEGIES` to keep it.
    """
    strategy = replica._relay.strategy
    for name, registered in EVICTION_STRATEGIES.items():
        if registered is strategy:
            return name
    warnings.warn(
        f"replica {replica.replica_id.name!r} uses an eviction strategy "
        f"({strategy!r}) not registered in EVICTION_STRATEGIES; the "
        "checkpoint cannot name it and a restore will fall back to FIFO. "
        "Register the strategy under a name to preserve it across restarts.",
        stacklevel=3,
    )
    return None


def replica_to_state(replica: Replica) -> Dict[str, Any]:
    """Snapshot a replica into a JSON-representable dict."""
    return {
        "format": STATE_FORMAT,
        "replica": replica.replica_id.name,
        "filter": encode_filter(replica.filter),
        "relay_capacity": replica._relay.capacity,
        "relay_eviction": _eviction_strategy_name(replica),
        "knowledge": encode_knowledge(replica.knowledge),
        "ids": replica._ids.snapshot(),
        "in_filter": [encode_item(item) for item in replica._store.items()],
        "outbox": [encode_item(item) for item in replica._outbox.items()],
        "relay": [encode_item(item) for item in replica._relay.items()],
    }


def replica_from_state(state: Dict[str, Any]) -> Replica:
    """Rebuild a replica from :func:`replica_to_state` output.

    Store contents are restored directly (observers do not fire — the
    items were already reported stored in the previous life).
    """
    if state.get("format") != STATE_FORMAT:
        raise CodecError(
            f"unrecognised replica state format: {state.get('format')!r}"
        )
    replica = Replica(
        ReplicaId(state["replica"]),
        decode_filter(state["filter"]),
        relay_capacity=state.get("relay_capacity"),
        relay_eviction=state.get("relay_eviction") or "fifo",
    )
    replica._ids.restore(state["ids"])
    replica.knowledge = decode_knowledge(state["knowledge"])
    for encoded in state["in_filter"]:
        replica._store.put(decode_item(encoded))
    for encoded in state["outbox"]:
        replica._outbox.put(decode_item(encoded))
    for encoded in state["relay"]:
        replica._relay.put(decode_item(encoded))
    return replica


def amnesiac_replica_state(state: Dict[str, Any]) -> Dict[str, Any]:
    """The state an *amnesiac* restart of ``state``'s replica boots from.

    Everything is lost except identity: the filter configuration (the
    node still knows who it is and what it subscribes to) and — crucially
    — the id-factory counters. Reusing version serials after forgetting
    the items they named would collide with copies of the old items still
    circulating in the network, so an amnesiac node resumes authoring
    from its pre-crash counter even though its stores and knowledge come
    back empty.
    """
    if state.get("format") != STATE_FORMAT:
        raise CodecError(
            f"unrecognised replica state format: {state.get('format')!r}"
        )
    fresh = replica_to_state(
        Replica(
            ReplicaId(state["replica"]),
            decode_filter(state["filter"]),
            relay_capacity=state.get("relay_capacity"),
            relay_eviction=state.get("relay_eviction") or "fifo",
        )
    )
    fresh["ids"] = state["ids"]
    return fresh


def save_replica(
    replica: Replica,
    path: Union[str, pathlib.Path],
    policy_state: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a replica checkpoint (plus optional policy state) to ``path``."""
    document = {"replica_state": replica_to_state(replica)}
    if policy_state is not None:
        document["policy_state"] = policy_state
    pathlib.Path(path).write_text(json.dumps(document, sort_keys=True))


def load_replica(
    path: Union[str, pathlib.Path],
) -> tuple[Replica, Optional[Dict[str, Any]]]:
    """Load a checkpoint; returns (replica, policy_state-or-None)."""
    document = json.loads(pathlib.Path(path).read_text())
    try:
        replica_state = document["replica_state"]
    except (TypeError, KeyError):
        raise CodecError(f"not a replica checkpoint: {path}") from None
    return replica_from_state(replica_state), document.get("policy_state")
