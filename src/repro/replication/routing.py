"""The pluggable routing-policy interface (the paper's ``IDTNPolicy``).

Section V of the paper extends the replication platform with a three-method
interface that lets DTN routing protocols decide which *out-of-filter* items
a sync source should forward to the target, and in what order:

* :meth:`RoutingPolicy.generate_req` — called on the **target** (the sync
  initiator); returns opaque routing state to embed in the sync request
  (e.g. PROPHET's delivery-predictability vector).
* :meth:`RoutingPolicy.process_req` — called on the **source** when the
  request arrives; typically persists the peer's routing state.
* :meth:`RoutingPolicy.to_send` — called on the source once per stored item
  that the target does not know and whose filter does not match; returns a
  :class:`Priority` to include the item in the batch or ``None`` to skip it.

The platform (this module and :mod:`repro.replication.sync`) defines the
interface; concrete protocols live in :mod:`repro.dtn`. This mirrors the
paper's layering, where Cimbiosys exposes ``IDTNPolicy`` and the four case
studies implement it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import IntEnum
from functools import total_ordering
from typing import Any, Optional

from repro._compat import DATACLASS_SLOTS

from .filters import Filter
from .ids import ReplicaId
from .items import Item


class PriorityClass(IntEnum):
    """Coarse transmission-priority bands, per the paper's priority design.

    ``FILTER_MATCH`` is reserved for the sync engine: items matching the
    target's filter ("messages addressed directly to the neighbour", in
    MaxProp's phrasing) always transmit first. Policies use the bands below
    it.
    """

    FILTER_MATCH = 100
    HIGHEST = 40
    HIGH = 30
    NORMAL = 20
    LOW = 10
    LOWEST = 0


@total_ordering
@dataclass(frozen=True, **DATACLASS_SLOTS)
class Priority:
    """A transmission priority: a class band plus a real-valued cost tiebreak.

    Sorting is by *descending* class then *ascending* cost — lower cost wins
    inside a band (MaxProp's path costs are "lower is better"). The
    comparison operators implement "transmits earlier than".
    """

    class_: PriorityClass
    cost: float = 0.0

    def sort_key(self) -> tuple:
        return (-int(self.class_), self.cost)

    def __lt__(self, other: "Priority") -> bool:
        if not isinstance(other, Priority):
            return NotImplemented
        return self.sort_key() < other.sort_key()


#: Convenience instance for "send whenever there is room, no preference".
NORMAL_PRIORITY = Priority(PriorityClass.NORMAL)


@dataclass
class SyncContext:
    """What a policy may know about the sync it is participating in.

    ``local`` and ``remote`` identify the two replicas from the policy
    host's point of view; ``now`` is the emulation clock (seconds). The
    platform builds one context per sync session per side.
    """

    local: ReplicaId
    remote: ReplicaId
    now: float


class RoutingPolicy(ABC):
    """Base class for pluggable DTN routing policies.

    One policy instance is attached to one replica and lives as long as the
    replica does; whatever state it accumulates across syncs (encounter
    histories, predictability vectors) is its "persistent routing state" in
    the paper's terms.

    Subclasses must implement :meth:`to_send`; the request hooks default to
    no-ops because the two simplest protocols (Epidemic, Spray and Wait)
    need neither.
    """

    #: Human-readable protocol name, used in experiment reports.
    name: str = "policy"

    def generate_req(self, context: SyncContext) -> Any:
        """Produce routing state for a sync request this replica initiates.

        Called on the *target* side. The returned value is treated as an
        opaque payload by the platform and handed to the source's
        :meth:`process_req`. Return ``None`` when the protocol sends
        nothing.
        """
        return None

    def process_req(self, routing_state: Any, context: SyncContext) -> None:
        """Consume the routing state of an incoming sync request.

        Called on the *source* side before any ``to_send`` decisions, so
        the state can inform them.
        """

    @abstractmethod
    def to_send(
        self, item: Item, target_filter: Filter, context: SyncContext
    ) -> Optional[Priority]:
        """Decide whether to forward an out-of-filter ``item`` to the target.

        Return a :class:`Priority` to include the item in the batch, or
        ``None`` to leave it out. The platform never calls this for items
        that match the target's filter — those are always sent, at
        :attr:`PriorityClass.FILTER_MATCH`.
        """

    def on_encounter_start(self, context: SyncContext) -> None:
        """Hook invoked once per *encounter* (before the pair of syncs).

        Protocols that age or bump state per meeting (PROPHET, MaxProp)
        use this so that the two back-to-back syncs of one encounter update
        state only once, matching Section V-C3 of the paper.
        """

    def on_items_sent(self, items: list[Item], context: SyncContext) -> None:
        """Hook invoked on the source once delivery is confirmed.

        ``items`` holds exactly the batch entries the channel actually
        carried to the target, each once — over a lossy transport a cut
        suffix never appears here, and a duplicated entry appears once.
        Gives copy-budget protocols (Spray and Wait) a place to adjust the
        locally stored copies of forwarded items, and single-copy
        protocols (First Contact) a safe point to release theirs.
        """

    def prepare_outgoing(self, item: Item, context: SyncContext) -> Item:
        """Last-touch transform of an item as it is placed into the batch.

        The default strips host-local attributes (they must not replicate).
        Policies override to attach per-copy state for the receiving host
        (a decremented TTL, half the copy budget).
        """
        return item.without_local()

    def source_budget(self, max_items: Optional[int]) -> Optional[int]:
        """The batch-size cap this source is *willing* to honour.

        ``max_items`` is the platform's cap for the session (bandwidth
        budget, or ``None`` for unlimited); the return value replaces
        it.  The default is honest — send everything the cap allows.
        Selfish behaviours (``repro.churn.freeride``) override this to
        under-serve peers: unlike :meth:`to_send`, which is never asked
        about filter-matching items, this cap governs the whole batch.
        """
        return max_items


class NullRoutingPolicy(RoutingPolicy):
    """The no-forwarding policy: unmodified Cimbiosys behaviour.

    Only items matching the target's filter are transferred; this is the
    paper's baseline (``cimbiosys`` lines in Figures 5–10, ``k = 0``).
    """

    name = "cimbiosys"

    def to_send(
        self, item: Item, target_filter: Filter, context: SyncContext
    ) -> Optional[Priority]:
        return None
