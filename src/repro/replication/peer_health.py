"""Per-peer health tracking: healthy → suspect → quarantined, and back.

A replica that keeps detecting protocol violations from the same peer —
corrupt payloads, replayed frames, fabricated knowledge — should stop
spending contact time on it. This module implements the three-state
tracker the emulator consults before each encounter:

* **healthy** — sync freely.
* **suspect** — the peer has accumulated ``suspect_threshold`` strikes;
  syncing continues, but the state is observable and a clean streak of
  ``recovery_probes`` encounters clears it back to healthy.
* **quarantined** — strikes reached ``quarantine_threshold``. Sync
  attempts are refused until an exponential-backoff window (with seeded
  jitter, so simultaneous quarantines do not re-probe in lockstep)
  expires; then the peer gets *recovery probes* — if ``recovery_probes``
  consecutive probe encounters come back clean, the peer is restored to
  healthy; one more violation re-quarantines it with a longer backoff.

The tracker is deliberately deterministic: jitter is drawn from its own
seeded RNG, and draws happen only when a quarantine is actually imposed,
so a run without violations consumes no randomness at all (the zero-fault
equivalence guarantee extends through this layer).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

HEALTHY = "healthy"
SUSPECT = "suspect"
QUARANTINED = "quarantined"

PEER_STATES = (HEALTHY, SUSPECT, QUARANTINED)


@dataclass
class PeerRecord:
    """Everything the tracker knows about one peer."""

    state: str = HEALTHY
    strikes: int = 0
    clean_streak: int = 0
    quarantines: int = 0
    next_probe: float = 0.0
    probing: bool = False
    # Reciprocity ledger: items this replica sent to the peer vs items
    # the peer sent back.  Fed by record_exchange; consulted by the
    # reciprocal() gate when a trust threshold is armed.
    given: int = 0
    taken: int = 0


class PeerHealthTracker:
    """One replica's view of its peers' trustworthiness.

    ``record_outcome(peer, strikes, now)`` is called once per completed
    encounter with the number of violations attributed to ``peer`` during
    it; ``allowed(peer, now)`` gates the *next* encounter. Both are O(1).
    """

    def __init__(
        self,
        suspect_threshold: int = 3,
        quarantine_threshold: int = 6,
        backoff_base: float = 120.0,
        backoff_factor: float = 2.0,
        backoff_max: float = 3600.0,
        jitter: float = 0.1,
        recovery_probes: int = 2,
        seed: int = 0,
        reciprocity_threshold: float = 0.0,
        reciprocity_min_taken: int = 25,
    ) -> None:
        if suspect_threshold < 1:
            raise ValueError("suspect_threshold must be >= 1")
        if quarantine_threshold < suspect_threshold:
            raise ValueError(
                "quarantine_threshold must be >= suspect_threshold"
            )
        if backoff_base <= 0:
            raise ValueError("backoff_base must be positive")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if backoff_max < backoff_base:
            raise ValueError("backoff_max must be >= backoff_base")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if recovery_probes < 1:
            raise ValueError("recovery_probes must be >= 1")
        if reciprocity_threshold < 0.0:
            raise ValueError("reciprocity_threshold must be >= 0")
        if reciprocity_min_taken < 0:
            raise ValueError("reciprocity_min_taken must be >= 0")
        self.suspect_threshold = suspect_threshold
        self.quarantine_threshold = quarantine_threshold
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.recovery_probes = recovery_probes
        self.reciprocity_threshold = reciprocity_threshold
        self.reciprocity_min_taken = reciprocity_min_taken
        self._rng = random.Random(seed)
        self._peers: Dict[str, PeerRecord] = {}

    # -- queries --------------------------------------------------------------------

    def state(self, peer: str) -> str:
        record = self._peers.get(peer)
        return record.state if record is not None else HEALTHY

    def record(self, peer: str) -> PeerRecord:
        """The full record for ``peer`` (created healthy on first access)."""
        return self._peers.setdefault(peer, PeerRecord())

    def peers(self) -> List[str]:
        return sorted(self._peers)

    def allowed(self, peer: str, now: float) -> bool:
        """May we attempt a sync with ``peer`` at ``now``?

        Healthy and suspect peers are always allowed. A quarantined peer
        is refused until its backoff window expires; the first allowed
        attempt after expiry is a *recovery probe* (marked on the record
        so :meth:`record_outcome` knows clean results count toward
        restoration).
        """
        record = self._peers.get(peer)
        if record is None or record.state != QUARANTINED:
            return True
        if now >= record.next_probe:
            record.probing = True
            return True
        return False

    # -- reciprocity (trust scoring) ------------------------------------------------

    def reciprocity(self, peer: str) -> float:
        """This replica's trust score for ``peer``: items the peer sent
        us over items it took from us, add-one smoothed so a brand-new
        peer starts at exactly 1.0 (neutral).

        ``given``/``taken`` are from *our* point of view (``given`` is
        what we sent the peer), so a peer we only ever upload to —
        ``given`` high, ``taken`` zero — scores toward zero, and a
        generous peer scores above 1.
        """
        record = self._peers.get(peer)
        if record is None:
            return 1.0
        return (record.taken + 1) / (record.given + 1)

    def reciprocal(self, peer: str) -> bool:
        """Does ``peer`` pull its weight (tit-for-tat admission gate)?

        Disabled (always True) when ``reciprocity_threshold`` is zero.
        A peer we have given fewer than ``reciprocity_min_taken`` items
        is still inside its grace window — refusing a stranger before
        any history exists would deadlock two honest nodes.
        """
        if self.reciprocity_threshold <= 0.0:
            return True
        record = self._peers.get(peer)
        if record is None or record.given < self.reciprocity_min_taken:
            return True
        return self.reciprocity(peer) >= self.reciprocity_threshold

    def record_exchange(self, peer: str, given: int = 0, taken: int = 0) -> None:
        """Fold one sync's transfer totals into the reciprocity ledger.

        ``given`` = items this replica sent to ``peer``; ``taken`` =
        items ``peer`` sent to this replica.  Item counts are the
        substrate's transfer unit (each batch entry is one replicated
        item), so they are the fair-exchange currency here too.
        """
        record = self.record(peer)
        record.given += given
        record.taken += taken

    # -- updates --------------------------------------------------------------------

    def record_outcome(self, peer: str, strikes: int, now: float) -> List[str]:
        """Fold one encounter's violation count into ``peer``'s health.

        Returns the state transitions taken, as ``"from->to"`` labels (at
        most two per call — a single bad encounter can push a healthy peer
        through suspect straight into quarantine).
        """
        record = self.record(peer)
        transitions: List[str] = []
        if strikes > 0:
            record.clean_streak = 0
            record.strikes += strikes
            if record.state == QUARANTINED:
                if record.probing:
                    # Failed recovery probe: back to the penalty box, with
                    # a longer window.
                    record.probing = False
                    record.quarantines += 1
                    record.next_probe = now + self._backoff(record.quarantines)
                    transitions.append(f"{QUARANTINED}->{QUARANTINED}")
                return transitions
            if (
                record.state == HEALTHY
                and record.strikes >= self.suspect_threshold
            ):
                record.state = SUSPECT
                transitions.append(f"{HEALTHY}->{SUSPECT}")
            if (
                record.state == SUSPECT
                and record.strikes >= self.quarantine_threshold
            ):
                record.state = QUARANTINED
                record.probing = False
                record.quarantines += 1
                record.next_probe = now + self._backoff(record.quarantines)
                transitions.append(f"{SUSPECT}->{QUARANTINED}")
            return transitions

        record.clean_streak += 1
        if record.state == QUARANTINED:
            if record.probing and record.clean_streak >= self.recovery_probes:
                record.state = HEALTHY
                record.strikes = 0
                record.probing = False
                transitions.append(f"{QUARANTINED}->{HEALTHY}")
        elif record.state == SUSPECT:
            if record.clean_streak >= self.recovery_probes:
                record.state = HEALTHY
                record.strikes = 0
                transitions.append(f"{SUSPECT}->{HEALTHY}")
        return transitions

    def _backoff(self, quarantines: int) -> float:
        """The backoff delay for the ``quarantines``-th quarantine.

        Exponential in the number of quarantines, capped, then jittered by
        up to ±``jitter`` (one seeded RNG draw — the only randomness in
        the tracker, consumed exclusively when a quarantine is imposed).
        """
        delay = min(
            self.backoff_base * self.backoff_factor ** (quarantines - 1),
            self.backoff_max,
        )
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (self._rng.random() * 2.0 - 1.0)
        return delay
