"""Replica event callbacks.

The messaging application and the emulation's metrics collector both need
to observe what happens inside a replica — most importantly the moment an
item *matching the replica's filter* first arrives (a delivery, in DTN
terms). Rather than having the replica know about applications, it exposes
a small observer interface.

Observers must be cheap and must not mutate the replica re-entrantly during
a sync; they are notification hooks, not extension points (DTN routing
extension goes through :mod:`repro.dtn.policy` instead).
"""

from __future__ import annotations

from typing import Protocol

from .items import Item


class ReplicaObserver(Protocol):
    """Receives notifications about a replica's store activity.

    All methods have default-compatible no-op semantics; implement only the
    ones you care about (see :class:`BaseReplicaObserver`).
    """

    def on_store(self, item: Item, matched_filter: bool) -> None:
        """An item version was written to a store.

        ``matched_filter`` is True when the item landed in the in-filter
        store (for the messaging app this is a *delivery* if the replica is
        a destination), False when it landed in the relay store.
        """

    def on_evict(self, item: Item) -> None:
        """A relayed item was evicted under storage pressure."""

    def on_delete(self, item: Item) -> None:
        """An item was locally deleted (a tombstone will replicate)."""


class BaseReplicaObserver:
    """No-op observer; subclass and override what you need."""

    def on_store(self, item: Item, matched_filter: bool) -> None:  # noqa: D102
        pass

    def on_evict(self, item: Item) -> None:  # noqa: D102
        pass

    def on_delete(self, item: Item) -> None:  # noqa: D102
        pass


class ObserverList(BaseReplicaObserver):
    """Fans notifications out to a list of observers, in registration order."""

    def __init__(self) -> None:
        self._observers: list[ReplicaObserver] = []

    def register(self, observer: ReplicaObserver) -> None:
        self._observers.append(observer)

    def unregister(self, observer: ReplicaObserver) -> None:
        self._observers.remove(observer)

    def on_store(self, item: Item, matched_filter: bool) -> None:
        for observer in self._observers:
            observer.on_store(item, matched_filter)

    def on_evict(self, item: Item) -> None:
        for observer in self._observers:
            observer.on_evict(item)

    def on_delete(self, item: Item) -> None:
        for observer in self._observers:
            observer.on_delete(item)
