"""Content-based filters — the selection predicate of filtered replication.

A filter is a predicate over item *attributes* (the replicated metadata).
Each replica declares one filter; during synchronisation the source sends
exactly the unknown items that match the target's filter, plus whatever
extra items the active DTN policy chooses (Section V of the paper).

Filters must be **serialisable by value**: they travel inside sync requests,
so they are plain data, never closures. The small algebra below covers
everything the paper needs:

* :class:`AddressFilter` — "messages addressed to me" (the basic DTN app);
* :class:`MultiAddressFilter` — "me plus these k other hosts" (Section IV-B,
  evaluated in Figures 5 and 6);
* :class:`AllFilter` / :class:`NothingFilter` — flooding / sink extremes;
* :class:`AttributeFilter` — generic equality test on any attribute;
* :class:`AndFilter` / :class:`OrFilter` / :class:`NotFilter` — combinators.

The one structural rule, enforced by :func:`validate_host_filter`, comes
straight from the paper: *a host's filter must select messages addressed to
the host itself* — otherwise eventual filter consistency cannot deliver its
own mail.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, FrozenSet, Iterable, Tuple

from .errors import InvalidFilterError
from .items import ATTR_DESTINATION, Item


class Filter(ABC):
    """Predicate over an item's replicated attributes.

    Implementations must be immutable value objects (hashable, comparable)
    so that filters can be embedded in sync requests and compared cheaply.
    """

    @abstractmethod
    def matches(self, item: Item) -> bool:
        """True if ``item`` should be replicated at a host with this filter."""

    # Combinator sugar -----------------------------------------------------------

    def __and__(self, other: "Filter") -> "Filter":
        return AndFilter((self, other))

    def __or__(self, other: "Filter") -> "Filter":
        return OrFilter((self, other))

    def __invert__(self) -> "Filter":
        return NotFilter(self)


@dataclass(frozen=True)
class AllFilter(Filter):
    """Matches every item. A host with this filter replicates everything,
    turning the substrate into epidemic flooding (the paper's "in the limit"
    case for multi-address filters)."""

    def matches(self, item: Item) -> bool:
        return True


@dataclass(frozen=True)
class NothingFilter(Filter):
    """Matches no item. Useful for pure-relay experiment controls."""

    def matches(self, item: Item) -> bool:
        return False


@dataclass(frozen=True)
class AddressFilter(Filter):
    """Matches items whose destination attribute equals ``address``.

    Destinations may be a single address or a collection (multicast); both
    are handled.
    """

    address: str

    def __post_init__(self) -> None:
        if not self.address:
            raise InvalidFilterError("AddressFilter requires a non-empty address")

    def matches(self, item: Item) -> bool:
        return _destination_matches(item, frozenset((self.address,)))


@dataclass(frozen=True)
class MultiAddressFilter(Filter):
    """Matches items addressed to any of a set of addresses.

    This is the Section IV-B mechanism: a host lists its own address plus
    the addresses of other hosts it is willing to relay for. ``own_address``
    is kept separate so the structural rule (own address always included)
    is explicit and checkable.
    """

    own_address: str
    relay_addresses: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.own_address:
            raise InvalidFilterError("MultiAddressFilter requires own_address")
        object.__setattr__(self, "relay_addresses", frozenset(self.relay_addresses))

    @property
    def addresses(self) -> FrozenSet[str]:
        return self.relay_addresses | {self.own_address}

    def matches(self, item: Item) -> bool:
        return _destination_matches(item, self.addresses)


@dataclass(frozen=True)
class AttributeFilter(Filter):
    """Matches items whose ``name`` attribute equals ``value``."""

    name: str
    value: Any

    def matches(self, item: Item) -> bool:
        return item.attribute(self.name) == self.value


@dataclass(frozen=True)
class AndFilter(Filter):
    """Conjunction of sub-filters (empty conjunction matches everything)."""

    operands: Tuple[Filter, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def matches(self, item: Item) -> bool:
        return all(operand.matches(item) for operand in self.operands)


@dataclass(frozen=True)
class OrFilter(Filter):
    """Disjunction of sub-filters (empty disjunction matches nothing)."""

    operands: Tuple[Filter, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def matches(self, item: Item) -> bool:
        return any(operand.matches(item) for operand in self.operands)


@dataclass(frozen=True)
class NotFilter(Filter):
    """Negation of a sub-filter."""

    operand: Filter

    def matches(self, item: Item) -> bool:
        return not self.operand.matches(item)


def _destination_matches(item: Item, addresses: FrozenSet[str]) -> bool:
    """Shared destination test handling unicast and multicast items."""
    destination = item.attribute(ATTR_DESTINATION)
    if destination is None:
        return False
    if isinstance(destination, str):
        return destination in addresses
    if isinstance(destination, Iterable):
        return any(d in addresses for d in destination)
    return False


def covers_address(filter_: Filter, address: str, probe_item_factory) -> bool:
    """Best-effort structural check that ``filter_`` selects mail for ``address``.

    ``probe_item_factory`` builds a representative item addressed to
    ``address``; the check simply evaluates the filter on it. Structural
    inspection short-circuits the common cases.
    """
    if isinstance(filter_, AllFilter):
        return True
    if isinstance(filter_, AddressFilter):
        return filter_.address == address
    if isinstance(filter_, MultiAddressFilter):
        return address in filter_.addresses
    return bool(filter_.matches(probe_item_factory(address)))


def validate_host_filter(filter_: Filter, own_address: str, probe_item_factory) -> None:
    """Enforce the paper's rule: a host's filter must include its own address.

    Raises :class:`InvalidFilterError` when the filter demonstrably fails to
    select a message addressed to the host itself.
    """
    if not covers_address(filter_, own_address, probe_item_factory):
        raise InvalidFilterError(
            f"host filter must select messages addressed to {own_address!r}"
        )
