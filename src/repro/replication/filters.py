"""Content-based filters — the selection predicate of filtered replication.

A filter is a predicate over item *attributes* (the replicated metadata).
Each replica declares one filter; during synchronisation the source sends
exactly the unknown items that match the target's filter, plus whatever
extra items the active DTN policy chooses (Section V of the paper).

Filters must be **serialisable by value**: they travel inside sync requests,
so they are plain data, never closures. The small algebra below covers
everything the paper needs:

* :class:`AddressFilter` — "messages addressed to me" (the basic DTN app);
* :class:`MultiAddressFilter` — "me plus these k other hosts" (Section IV-B,
  evaluated in Figures 5 and 6);
* :class:`AllFilter` / :class:`NothingFilter` — flooding / sink extremes;
* :class:`AttributeFilter` — generic equality test on any attribute;
* :class:`AndFilter` / :class:`OrFilter` / :class:`NotFilter` — combinators.

The one structural rule, enforced by :func:`validate_host_filter`, comes
straight from the paper: *a host's filter must select messages addressed to
the host itself* — otherwise eventual filter consistency cannot deliver its
own mail.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Tuple

from .errors import InvalidFilterError
from .ids import ItemId, Version
from .items import ATTR_DESTINATION, Item


class Filter(ABC):
    """Predicate over an item's replicated attributes.

    Implementations must be immutable value objects (hashable, comparable)
    so that filters can be embedded in sync requests and compared cheaply.
    """

    @abstractmethod
    def matches(self, item: Item) -> bool:
        """True if ``item`` should be replicated at a host with this filter."""

    # Identity -------------------------------------------------------------------

    def fingerprint(self) -> str:
        """A stable, content-derived identity for this filter.

        Two filters with equal content produce equal fingerprints — across
        processes, re-decodes, and re-constructions — so a fingerprint can
        key a match cache: a host whose filter is rebuilt identically at a
        day boundary keeps its cached matches, while any change to the
        selected address set yields a fresh fingerprint and the cache
        misses cleanly (it can never serve a stale match).

        The fingerprint is derived structurally from the dataclass fields
        (sets are ordered canonically). Computed once and memoised on the
        instance, which is safe because filters are immutable.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is None:
            cached = self._compute_fingerprint()
            object.__setattr__(self, "_fingerprint_cache", cached)
        return cached

    def _compute_fingerprint(self) -> str:
        if dataclasses.is_dataclass(self):
            parts = ",".join(
                f"{f.name}={_fingerprint_value(getattr(self, f.name))}"
                for f in dataclasses.fields(self)
            )
            return f"{type(self).__name__}({parts})"
        # Non-dataclass subclasses fall back to repr; override
        # _compute_fingerprint if their repr is not value-stable.
        return f"{type(self).__name__}:{self!r}"

    # Combinator sugar -----------------------------------------------------------

    def __and__(self, other: "Filter") -> "Filter":
        return AndFilter((self, other))

    def __or__(self, other: "Filter") -> "Filter":
        return OrFilter((self, other))

    def __invert__(self) -> "Filter":
        return NotFilter(self)


@dataclass(frozen=True)
class AllFilter(Filter):
    """Matches every item. A host with this filter replicates everything,
    turning the substrate into epidemic flooding (the paper's "in the limit"
    case for multi-address filters)."""

    def matches(self, item: Item) -> bool:
        return True


@dataclass(frozen=True)
class NothingFilter(Filter):
    """Matches no item. Useful for pure-relay experiment controls."""

    def matches(self, item: Item) -> bool:
        return False


@dataclass(frozen=True)
class AddressFilter(Filter):
    """Matches items whose destination attribute equals ``address``.

    Destinations may be a single address or a collection (multicast); both
    are handled.
    """

    address: str

    def __post_init__(self) -> None:
        if not self.address:
            raise InvalidFilterError("AddressFilter requires a non-empty address")

    def matches(self, item: Item) -> bool:
        return _destination_matches(item, frozenset((self.address,)))


@dataclass(frozen=True)
class MultiAddressFilter(Filter):
    """Matches items addressed to any of a set of addresses.

    This is the Section IV-B mechanism: a host lists its own address plus
    the addresses of other hosts it is willing to relay for. ``own_address``
    is kept separate so the structural rule (own address always included)
    is explicit and checkable.
    """

    own_address: str
    relay_addresses: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.own_address:
            raise InvalidFilterError("MultiAddressFilter requires own_address")
        object.__setattr__(self, "relay_addresses", frozenset(self.relay_addresses))

    @property
    def addresses(self) -> FrozenSet[str]:
        return self.relay_addresses | {self.own_address}

    def matches(self, item: Item) -> bool:
        return _destination_matches(item, self.addresses)


@dataclass(frozen=True)
class AttributeFilter(Filter):
    """Matches items whose ``name`` attribute equals ``value``."""

    name: str
    value: Any

    def matches(self, item: Item) -> bool:
        return item.attribute(self.name) == self.value


@dataclass(frozen=True)
class AndFilter(Filter):
    """Conjunction of sub-filters (empty conjunction matches everything)."""

    operands: Tuple[Filter, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def matches(self, item: Item) -> bool:
        return all(operand.matches(item) for operand in self.operands)


@dataclass(frozen=True)
class OrFilter(Filter):
    """Disjunction of sub-filters (empty disjunction matches nothing)."""

    operands: Tuple[Filter, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "operands", tuple(self.operands))

    def matches(self, item: Item) -> bool:
        return any(operand.matches(item) for operand in self.operands)


@dataclass(frozen=True)
class NotFilter(Filter):
    """Negation of a sub-filter."""

    operand: Filter

    def matches(self, item: Item) -> bool:
        return not self.operand.matches(item)


def _destination_matches(item: Item, addresses: FrozenSet[str]) -> bool:
    """Shared destination test handling unicast and multicast items."""
    destination = item.attribute(ATTR_DESTINATION)
    if destination is None:
        return False
    if isinstance(destination, str):
        return destination in addresses
    if isinstance(destination, Iterable):
        return any(d in addresses for d in destination)
    return False


def _fingerprint_value(value: Any) -> str:
    """Canonical text form of one filter field for fingerprinting."""
    if isinstance(value, Filter):
        return value.fingerprint()
    if isinstance(value, (frozenset, set)):
        return "{" + ",".join(sorted(repr(v) for v in value)) + "}"
    if isinstance(value, tuple):
        return "(" + ",".join(_fingerprint_value(v) for v in value) + ")"
    return repr(value)


_CACHE_MISS = object()


class FilterMatchCache:
    """Memoised filter-match decisions for one replica's stored items.

    During trace replay the same peers meet over and over, so a sync
    source re-evaluates the same ``(target filter, stored item)`` pairs at
    every encounter. This cache keys results on
    ``Filter.fingerprint() × item id`` and validates each entry against
    the stored item's *version*: an item update mints a new version, so a
    stale result can never be served — the version mismatch invalidates
    the whole per-item entry. Day-boundary filter reassignments need no
    invalidation at all: a changed filter has a new fingerprint and simply
    misses.

    Owners must call :meth:`forget` when an item leaves the store
    (eviction, expunge, replacement) so the cache's footprint tracks the
    store's; :class:`~repro.replication.replica.Replica` wires this into
    its removal paths.
    """

    __slots__ = ("_by_item", "hits", "misses", "invalidations")

    def __init__(self) -> None:
        self._by_item: Dict[ItemId, Tuple[Version, Dict[str, bool]]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def matches(self, filter_: Filter, item: Item) -> bool:
        """``filter_.matches(item)``, memoised."""
        entry = self._by_item.get(item.item_id)
        if entry is None or entry[0] != item.version:
            if entry is not None:
                self.invalidations += 1
            entry = (item.version, {})
            self._by_item[item.item_id] = entry
        fingerprint = filter_.fingerprint()
        cached = entry[1].get(fingerprint, _CACHE_MISS)
        if cached is _CACHE_MISS:
            self.misses += 1
            result = filter_.matches(item)
            entry[1][fingerprint] = result
            return result
        self.hits += 1
        return cached  # type: ignore[return-value]

    def forget(self, item_id: ItemId) -> None:
        """Drop all cached decisions for an item that left the store."""
        if self._by_item.pop(item_id, None) is not None:
            self.invalidations += 1

    def clear(self) -> None:
        self._by_item.clear()

    def __len__(self) -> int:
        return len(self._by_item)


def covers_address(filter_: Filter, address: str, probe_item_factory) -> bool:
    """Best-effort structural check that ``filter_`` selects mail for ``address``.

    ``probe_item_factory`` builds a representative item addressed to
    ``address``; the check simply evaluates the filter on it. Structural
    inspection short-circuits the common cases.
    """
    if isinstance(filter_, AllFilter):
        return True
    if isinstance(filter_, AddressFilter):
        return filter_.address == address
    if isinstance(filter_, MultiAddressFilter):
        return address in filter_.addresses
    return bool(filter_.matches(probe_item_factory(address)))


def validate_host_filter(filter_: Filter, own_address: str, probe_item_factory) -> None:
    """Enforce the paper's rule: a host's filter must include its own address.

    Raises :class:`InvalidFilterError` when the filter demonstrably fails to
    select a message addressed to the host itself.
    """
    if not covers_address(filter_, own_address, probe_item_factory):
        raise InvalidFilterError(
            f"host filter must select messages addressed to {own_address!r}"
        )
