"""Exception hierarchy for the replication substrate.

All errors raised by :mod:`repro.replication` derive from
:class:`ReplicationError`, so callers can catch substrate failures with a
single ``except`` clause while still being able to distinguish specific
failure modes.
"""

from __future__ import annotations


class ReplicationError(Exception):
    """Base class for all replication-substrate errors."""


class UnknownItemError(ReplicationError, KeyError):
    """An operation referenced an item id that the store does not hold."""

    def __init__(self, item_id: object) -> None:
        super().__init__(f"unknown item: {item_id!r}")
        self.item_id = item_id


class DuplicateDeliveryError(ReplicationError):
    """A sync attempted to deliver a version the target already knows.

    This error indicates a protocol bug: the knowledge exchange at the start
    of a sync is supposed to filter such versions out at the source.
    """


class InvalidFilterError(ReplicationError):
    """A filter definition was structurally invalid (e.g. empty address set)."""


class SyncProtocolError(ReplicationError):
    """The pairwise synchronisation protocol was driven out of order."""


class PolicyError(ReplicationError):
    """A DTN routing policy misbehaved (bad priority, bad request payload)."""
