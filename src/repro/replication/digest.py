"""Bloom-filter knowledge digests — compact knowledge on the wire.

A sync request normally opens with the target's full knowledge (its
version vector), whose wire size grows with the number of out-of-order
counters retained. For well-connected workloads the vector compacts to a
handful of prefixes, but under fragmentation (interrupted transfers,
partitioned relay paths) the extras dominate and the request becomes the
most expensive frame of the encounter.

A :class:`KnowledgeDigest` replaces the exact vector with a compressed
Bloom filter over every (replica, counter) pair the target knows. The
error is strictly one-sided:

* **No false negatives.** A version the target knows is always a member,
  so the source never transmits an item the target already has —
  at-most-once delivery is preserved unconditionally, and the digest path
  can never trigger a :class:`~repro.replication.errors.DuplicateDeliveryError`.
* **Bounded false positives.** With probability ≈ ``fp_rate`` per unknown
  version, the source wrongly concludes the target already knows an item
  and *suppresses* the transmission. Suppression is never silent loss:
  the target's knowledge does not cover the item, so every later request
  it sends (under a fresh digest salt, or in exact mode) re-exposes the
  gap and the item is re-offered. Per contact the miss probability is
  ``fp_rate``; across contacts it decays geometrically, because each
  session's digest is salted independently.

The salt is the decorrelation mechanism and its construction matters: the
per-version bit positions are derived from a *keyed* BLAKE2b hash, so
changing the salt re-randomises every position. (A linear checksum such
as CRC32 would shift all same-length keys by a constant under a salt
change, making the false-positive set salt-invariant — a suppressed item
would then be suppressed at every later contact, turning a bounded delay
into a livelock.)

Negotiated fallback: the target only ships a digest when its estimated
wire size undercuts the exact encoding (compact contiguous knowledge
always wins, heavily fragmented knowledge never does), so arming digests
can only reduce request metadata. ``DigestConfig(force=True)`` overrides
the negotiation for tests and benchmarks that must exercise the digest
path unconditionally.

Accounting: the source-side :class:`SuppressionLedger` remembers, per
peer, which stored versions a digest suppressed. Knowledge is monotone
and the digest has no false negatives, so if one of those versions is
*later sent* to the same peer, the target provably did not know it when
it was suppressed — the suppression was a false positive. The ledger
surfaces exactly those proofs as the ``fp_resend`` counter (an
undercount when the target learns the item via a third replica first,
but every count it does emit is a certain FP, never a guess).
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import math
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro._compat import DATACLASS_SLOTS

from .ids import ReplicaId, Version
from .versions import VersionVector

#: Bits of the BLAKE2b output split into the double-hashing pair.
_HASH_BYTES = 16

#: Fabrication probes: counters above the source's last authored counter
#: tested for membership. An honest digest hits each with probability
#: ``fp_rate``; all of them only with probability ``fp_rate**16`` —
#: negligible even at the loosest permitted rate — so a full sweep of
#: hits marks the digest as fabricated (e.g. saturated bits).
FABRICATION_PROBES = 16

#: Hex digits kept from the digest frame's own integrity checksum
#: (matches the item-checksum truncation in :mod:`.integrity`).
_CHECKSUM_LENGTH = 16

#: Fixed JSON framing cost (keys, params, checksum) on top of the
#: base64 bit payload, used by the negotiation estimate.
_FRAME_OVERHEAD = 120


def bloom_parameters(count: int, fp_rate: float) -> "tuple[int, int]":
    """Optimal (bits, hashes) for ``count`` members at ``fp_rate``.

    Standard sizing: ``m = 1.44 · n · log2(1/p)`` bits and
    ``k = (m/n) · ln 2`` hash functions, floored at one byte and one
    hash so the degenerate empty/near-empty cases stay well-formed.
    """
    if count <= 0:
        return 8, 1
    m = max(8, math.ceil(1.44 * count * math.log2(1.0 / fp_rate)))
    k = max(1, round((m / count) * math.log(2)))
    return m, k


def estimated_digest_wire_size(count: int, fp_rate: float) -> int:
    """Upper estimate of a digest's wire size, for negotiation.

    A near-optimally filled Bloom bitmap is incompressible, so the
    estimate assumes zlib adds only its framing and base64 its 4/3
    expansion. Used *before* building the digest: when even this bound
    cannot beat the exact encoding, the build is skipped entirely.
    """
    m, _ = bloom_parameters(count, fp_rate)
    raw = (m + 7) // 8
    encoded = 4 * math.ceil((raw + 12) / 3)
    return encoded + _FRAME_OVERHEAD


def _digest_checksum(
    m: int, k: int, salt: int, count: int, fp_rate: float, bits: bytes
) -> str:
    """Integrity checksum over a digest's parameters and bitmap."""
    head = f"{m}|{k}|{salt}|{count}|{fp_rate!r}|".encode("utf-8")
    return hashlib.sha256(head + bits).hexdigest()[:_CHECKSUM_LENGTH]


@dataclass(frozen=True, **DATACLASS_SLOTS)
class DigestConfig:
    """Tuning knobs for the knowledge-digest mode of the sync protocol.

    ``fp_rate`` is the per-version false-positive probability the Bloom
    filter is sized for; lower rates cost more bits per known version
    (``1.44 · log2(1/p)``). ``force`` disables the size negotiation and
    always ships a digest — for tests and benchmarks only, since forcing
    can *inflate* request metadata when exact knowledge is compact.
    """

    fp_rate: float = 0.05
    force: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.fp_rate < 0.5:
            raise ValueError(
                f"fp_rate must be in (0, 0.5), got {self.fp_rate!r}"
            )


@dataclass(frozen=True, **DATACLASS_SLOTS)
class KnowledgeDigest:
    """A salted, compressed Bloom summary of one replica's knowledge.

    ``bits`` is the raw bitmap (``ceil(m/8)`` bytes, little-endian bit
    order within each byte); the wire frame carries it zlib-compressed
    and base64-encoded. ``checksum`` covers the parameters and the raw
    bitmap, so in-flight damage to either is detected before the digest
    is consulted — a digest cannot be *clamped* the way an exact vector
    can, so the receiving side rejects rather than repairs.
    """

    m: int
    k: int
    salt: int
    count: int
    fp_rate: float
    bits: bytes
    checksum: str

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls, vector: VersionVector, fp_rate: float, salt: int
    ) -> "KnowledgeDigest":
        """Digest every version covered by ``vector``."""
        count = vector.size_in_versions()
        m, k = bloom_parameters(count, fp_rate)
        salt &= 0xFFFFFFFFFFFFFFFF
        bitmap = bytearray((m + 7) // 8)
        salt_key = salt.to_bytes(8, "big")
        for version in vector.versions():
            h1, h2 = _hash_pair(version, salt_key)
            for i in range(k):
                index = (h1 + i * h2) % m
                bitmap[index >> 3] |= 1 << (index & 7)
        bits = bytes(bitmap)
        return cls(
            m=m,
            k=k,
            salt=salt,
            count=count,
            fp_rate=fp_rate,
            bits=bits,
            checksum=_digest_checksum(m, k, salt, count, fp_rate, bits),
        )

    def with_bits(self, bits: bytes, restamp: bool) -> "KnowledgeDigest":
        """A copy with a replaced bitmap — the fault models' tampering hook.

        ``restamp=True`` recomputes the checksum over the new bitmap
        (a consistent forgery, caught only by the fabrication probes);
        ``restamp=False`` keeps the stale checksum (transit damage,
        caught by :meth:`verify`).
        """
        checksum = (
            _digest_checksum(
                self.m, self.k, self.salt, self.count, self.fp_rate, bits
            )
            if restamp
            else self.checksum
        )
        return KnowledgeDigest(
            m=self.m,
            k=self.k,
            salt=self.salt,
            count=self.count,
            fp_rate=self.fp_rate,
            bits=bits,
            checksum=checksum,
        )

    # -- membership --------------------------------------------------------------

    def might_contain(self, version: Version) -> bool:
        """Bloom membership: False is definite, True may be an FP."""
        h1, h2 = _hash_pair(version, self.salt.to_bytes(8, "big"))
        bits = self.bits
        m = self.m
        for i in range(self.k):
            index = (h1 + i * h2) % m
            if not bits[index >> 3] >> (index & 7) & 1:
                return False
        return True

    # -- integrity ---------------------------------------------------------------

    def verify(self) -> bool:
        """True when the checksum matches the parameters and bitmap."""
        return self.checksum == _digest_checksum(
            self.m, self.k, self.salt, self.count, self.fp_rate, self.bits
        )

    # -- wire format -------------------------------------------------------------

    def to_wire(self) -> Dict[str, object]:
        """The JSON-representable digest frame."""
        return {
            "m": self.m,
            "k": self.k,
            "salt": self.salt,
            "count": self.count,
            "fp": self.fp_rate,
            "bits": base64.b64encode(zlib.compress(self.bits)).decode("ascii"),
            "checksum": self.checksum,
        }

    @classmethod
    def from_wire(cls, data: object) -> "KnowledgeDigest":
        """Decode a digest frame; raises ``ValueError`` on any malformation.

        (The codec layer wraps this into its typed
        :class:`~repro.replication.codec.CodecError`.) Shape is validated
        here — parameters in range, bitmap length consistent with ``m`` —
        but checksum *verification* is left to the protocol layer, so a
        damaged digest quarantines one request instead of failing decode.
        """
        if not isinstance(data, dict):
            raise ValueError(f"bad digest frame: {data!r}")
        try:
            m = int(data["m"])
            k = int(data["k"])
            salt = int(data["salt"])
            count = int(data["count"])
            fp_rate = float(data["fp"])
            encoded = data["bits"]
            checksum = data["checksum"]
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"bad digest frame: {data!r}") from error
        if not isinstance(encoded, str) or not isinstance(checksum, str):
            raise ValueError(f"bad digest frame: {data!r}")
        if m < 8 or k < 1 or salt < 0 or count < 0:
            raise ValueError(
                f"digest parameters out of range: m={m} k={k} "
                f"salt={salt} count={count}"
            )
        if not 0.0 < fp_rate < 1.0:
            raise ValueError(f"digest fp rate out of range: {fp_rate!r}")
        try:
            bits = zlib.decompress(base64.b64decode(encoded, validate=True))
        except (binascii.Error, ValueError, zlib.error) as error:
            raise ValueError("undecodable digest bitmap") from error
        if len(bits) != (m + 7) // 8:
            raise ValueError(
                f"digest bitmap is {len(bits)} bytes, expected "
                f"{(m + 7) // 8} for m={m}"
            )
        return cls(
            m=m,
            k=k,
            salt=salt,
            count=count,
            fp_rate=fp_rate,
            bits=bits,
            checksum=checksum,
        )

    def wire_size(self) -> int:
        """Bytes this digest occupies in a sync request (compact JSON)."""
        return len(
            json.dumps(
                self.to_wire(), separators=(",", ":"), sort_keys=True
            ).encode()
        )


def _hash_pair(version: Version, salt_key: bytes) -> "tuple[int, int]":
    """The double-hashing pair for one version under one salt.

    Keyed BLAKE2b makes the pair — and therefore every derived bit
    position — cryptographically independent across salts, which is what
    guarantees fresh false-positive sets per session (see module
    docstring for why a linear hash would not).
    """
    key = f"{version.replica.name}:{version.counter}".encode("utf-8")
    raw = hashlib.blake2b(key, digest_size=_HASH_BYTES, key=salt_key).digest()
    h1 = int.from_bytes(raw[:8], "big")
    h2 = int.from_bytes(raw[8:], "big") | 1
    return h1, h2


class SuppressionLedger:
    """Per-peer memory of digest-suppressed versions, proving FPs on re-send.

    The ledger records the stored versions a digest suppressed for each
    peer. Because knowledge is monotone and the digest has no false
    negatives, a recorded version that is later *sent* to the same peer
    (any mode) was provably unknown to that peer at suppression time —
    a certain false positive, counted once and forgotten. Recorded
    versions whose items have left the local store are pruned on the
    next recording, so the ledger is bounded by store size per peer.

    Purely an accounting structure: it never influences batch selection,
    and losing it (e.g. across a crash-restart) only undercounts
    ``fp_resend``, never affects delivery.
    """

    __slots__ = ("_suppressed",)

    def __init__(self) -> None:
        self._suppressed: Dict[ReplicaId, Set[Version]] = {}

    def record(
        self,
        peer: ReplicaId,
        suppressed: Iterable[Version],
        stored: Set[Version],
    ) -> None:
        """Record this session's suppressions, pruning departed versions."""
        tracked = self._suppressed.get(peer)
        merged = set(suppressed) if tracked is None else (tracked & stored)
        if tracked is not None:
            merged.update(suppressed)
        if merged:
            self._suppressed[peer] = merged
        else:
            self._suppressed.pop(peer, None)

    def note_sent(self, peer: ReplicaId, sent: Iterable[Version]) -> int:
        """Count (and forget) previously suppressed versions now sent."""
        tracked = self._suppressed.get(peer)
        if not tracked:
            return 0
        proven = tracked.intersection(sent)
        if proven:
            tracked -= proven
            if not tracked:
                del self._suppressed[peer]
        return len(proven)

    def tracked_count(self, peer: ReplicaId) -> int:
        """How many suppressed versions are currently tracked for ``peer``."""
        return len(self._suppressed.get(peer, ()))
