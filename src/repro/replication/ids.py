"""Identifier types for replicas, items, and item versions.

The substrate names three kinds of things:

* **Replicas** — one per participating device. A :class:`ReplicaId` wraps a
  short human-readable string (``"bus-07"``, ``"alice-phone"``).
* **Items** — the replicated data units (messages, in the DTN application).
  An :class:`ItemId` is unique across the whole system; by convention it is
  minted by the replica that created the item.
* **Versions** — every create/update of an item produces a new
  :class:`Version`, the pair ``(replica, counter)`` where ``counter`` is the
  authoring replica's monotonically increasing update counter. Version
  vectors (knowledge) are sets of versions compressed per replica; see
  :mod:`repro.replication.versions`.

All three are immutable, hashable, and totally ordered so they can be used
as dict keys and sorted deterministically — determinism matters because the
emulation must be exactly reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class ReplicaId:
    """Identity of a replica (one per device/host).

    The wrapped ``name`` must be non-empty. Replica ids are compared and
    sorted by name, which gives deterministic iteration orders throughout
    the substrate.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ReplicaId name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class ItemId:
    """Globally unique identity of a replicated item.

    ``origin`` is the replica that created the item and ``serial`` is that
    replica's creation counter. The pair is unique as long as each replica
    numbers its creations monotonically, which :class:`IdFactory` enforces.
    """

    origin: ReplicaId
    serial: int

    def __post_init__(self) -> None:
        if self.serial < 0:
            raise ValueError("ItemId serial must be non-negative")

    def __str__(self) -> str:
        return f"{self.origin.name}#{self.serial}"


@dataclass(frozen=True, order=True)
class Version:
    """A single authored version: ``(replica, counter)``.

    ``counter`` values are per-replica and strictly increasing, so the set
    of versions authored by one replica is always a contiguous or gappy
    subset of the integers, compressible to ranges in a version vector.
    """

    replica: ReplicaId
    counter: int

    def __post_init__(self) -> None:
        if self.counter < 1:
            raise ValueError("Version counter starts at 1")

    def __str__(self) -> str:
        return f"{self.replica.name}:{self.counter}"


@dataclass
class IdFactory:
    """Mints item ids and versions for one replica.

    A replica owns exactly one factory. The factory guarantees that item
    serials and version counters are each strictly increasing, which is the
    substrate-wide uniqueness invariant. The counters are plain integers so
    a replica's state (including the factory) can be check-pointed to disk
    and restored (see :mod:`repro.replication.persistence`).
    """

    replica: ReplicaId
    _next_serial: int = field(default=0, init=False, repr=False)
    _version_counter: int = field(default=0, init=False, repr=False)

    def next_item_id(self) -> ItemId:
        """Return a fresh :class:`ItemId` originating at this replica."""
        item_id = ItemId(self.replica, self._next_serial)
        self._next_serial += 1
        return item_id

    def next_version(self) -> Version:
        """Return the next :class:`Version` authored by this replica."""
        self._version_counter += 1
        return Version(self.replica, self._version_counter)

    @property
    def last_counter(self) -> int:
        """The highest version counter issued so far (0 if none)."""
        return self._version_counter

    def snapshot(self) -> dict:
        """Counter state for persistence."""
        return {
            "next_serial": self._next_serial,
            "version_counter": self._version_counter,
        }

    def restore(self, state: dict) -> None:
        """Restore counters from :meth:`snapshot` output.

        Counters may only move forward — restoring an older snapshot onto
        a factory that has already minted beyond it would break global
        uniqueness, so that is rejected.
        """
        next_serial = int(state["next_serial"])
        version_counter = int(state["version_counter"])
        if next_serial < self._next_serial or version_counter < self._version_counter:
            raise ValueError("cannot rewind an id factory")
        self._next_serial = next_serial
        self._version_counter = version_counter
