"""Peer-to-peer filtered replication (PFR) substrate.

This package is a from-scratch Python implementation of the externally
visible behaviour of Cimbiosys (Ramasubramanian et al., NSDI'09) as used by
"Peer-to-peer Data Replication Meets Delay Tolerant Networking"
(ICDCS 2011): versioned items, content-based filters, version-vector
knowledge, pairwise synchronisation with eventual filter consistency and
at-most-once delivery, and the pluggable DTN routing-policy extension from
Section V of the paper.

Typical use::

    from repro.replication import (
        Replica, ReplicaId, AddressFilter, SyncEndpoint, EncounterSession,
    )

    alice = Replica(ReplicaId("alice"), AddressFilter("alice"))
    bob = Replica(ReplicaId("bob"), AddressFilter("bob"))
    alice.create_item("hi bob", {"destination": "bob"})
    EncounterSession(first=SyncEndpoint(alice), second=SyncEndpoint(bob)).run()
    assert any(i.payload == "hi bob" for i in bob.stored_items())

(``perform_sync`` / ``perform_encounter`` remain as deprecated shims over
:class:`~repro.replication.session.SyncSession` /
:class:`~repro.replication.session.EncounterSession`.)
"""

from .codec import (
    CodecError,
    decode_batch,
    decode_batch_entry,
    decode_batch_frame,
    decode_filter,
    decode_item,
    decode_knowledge,
    decode_knowledge_digest,
    decode_sync_request,
    digest_wire_size,
    encode_batch,
    encode_batch_entry,
    encode_batch_frame,
    encode_filter,
    encode_item,
    encode_knowledge,
    encode_knowledge_digest,
    encode_sync_request,
    knowledge_wire_size,
    register_routing_codec,
    wire_size,
)
from .digest import (
    DigestConfig,
    KnowledgeDigest,
    SuppressionLedger,
    bloom_parameters,
    estimated_digest_wire_size,
)
from .integrity import (
    VIOLATION_CHECKSUM_MISMATCH,
    VIOLATION_DIGEST,
    VIOLATION_KINDS,
    VIOLATION_KNOWLEDGE_FABRICATION,
    VIOLATION_MALFORMED_ENTRY,
    VIOLATION_REPLAY,
    VIOLATION_VERSION_CONFLICT,
    ProtocolViolation,
    frame_checksum,
    item_checksum,
)
from .peer_health import (
    HEALTHY,
    PEER_STATES,
    QUARANTINED,
    SUSPECT,
    PeerHealthTracker,
    PeerRecord,
)
from .hierarchy import FilterTree, PushUpPolicy
from .persistence import (
    load_replica,
    replica_from_state,
    replica_to_state,
    save_replica,
)
from .errors import (
    DuplicateDeliveryError,
    InvalidFilterError,
    PolicyError,
    ReplicationError,
    SyncProtocolError,
    UnknownItemError,
)
from .events import BaseReplicaObserver, ObserverList, ReplicaObserver
from .filters import (
    AddressFilter,
    AllFilter,
    AndFilter,
    AttributeFilter,
    Filter,
    MultiAddressFilter,
    NotFilter,
    NothingFilter,
    OrFilter,
    validate_host_filter,
)
from .ids import IdFactory, ItemId, ReplicaId, Version
from .items import (
    ATTR_CREATED_AT,
    ATTR_DESTINATION,
    ATTR_KIND,
    ATTR_SOURCE,
    KIND_ACK,
    KIND_MESSAGE,
    KIND_TOMBSTONE,
    Item,
)
from .replica import Replica
from .routing import (
    NORMAL_PRIORITY,
    NullRoutingPolicy,
    Priority,
    PriorityClass,
    RoutingPolicy,
    SyncContext,
)
from .session import EncounterSession, SessionConfig, SyncSession, Transport
from .store import ItemStore, RelayStore
from .sync import (
    BatchEntry,
    SyncEndpoint,
    SyncRequest,
    SyncStats,
    build_batch,
    build_request,
    perform_encounter,
    perform_sync,
    validate_request_digest,
    validate_request_knowledge,
)
from .versions import VersionVector

__all__ = [
    "ATTR_CREATED_AT",
    "ATTR_DESTINATION",
    "ATTR_KIND",
    "ATTR_SOURCE",
    "AddressFilter",
    "AllFilter",
    "AndFilter",
    "AttributeFilter",
    "BaseReplicaObserver",
    "BatchEntry",
    "CodecError",
    "DigestConfig",
    "DuplicateDeliveryError",
    "EncounterSession",
    "Filter",
    "FilterTree",
    "HEALTHY",
    "IdFactory",
    "InvalidFilterError",
    "Item",
    "ItemId",
    "ItemStore",
    "KIND_ACK",
    "KIND_MESSAGE",
    "KIND_TOMBSTONE",
    "KnowledgeDigest",
    "MultiAddressFilter",
    "NORMAL_PRIORITY",
    "NotFilter",
    "NothingFilter",
    "NullRoutingPolicy",
    "ObserverList",
    "OrFilter",
    "PEER_STATES",
    "PeerHealthTracker",
    "PeerRecord",
    "PolicyError",
    "Priority",
    "ProtocolViolation",
    "PushUpPolicy",
    "PriorityClass",
    "QUARANTINED",
    "RelayStore",
    "Replica",
    "ReplicaId",
    "ReplicaObserver",
    "ReplicationError",
    "RoutingPolicy",
    "SUSPECT",
    "SessionConfig",
    "SuppressionLedger",
    "SyncContext",
    "SyncEndpoint",
    "SyncProtocolError",
    "SyncRequest",
    "SyncSession",
    "SyncStats",
    "Transport",
    "UnknownItemError",
    "VIOLATION_CHECKSUM_MISMATCH",
    "VIOLATION_DIGEST",
    "VIOLATION_KINDS",
    "VIOLATION_KNOWLEDGE_FABRICATION",
    "VIOLATION_MALFORMED_ENTRY",
    "VIOLATION_REPLAY",
    "VIOLATION_VERSION_CONFLICT",
    "Version",
    "VersionVector",
    "bloom_parameters",
    "build_batch",
    "build_request",
    "decode_batch",
    "decode_batch_entry",
    "decode_batch_frame",
    "decode_filter",
    "decode_item",
    "decode_knowledge",
    "decode_knowledge_digest",
    "decode_sync_request",
    "digest_wire_size",
    "encode_batch",
    "encode_batch_entry",
    "encode_batch_frame",
    "encode_filter",
    "encode_item",
    "encode_knowledge",
    "encode_knowledge_digest",
    "encode_sync_request",
    "estimated_digest_wire_size",
    "frame_checksum",
    "item_checksum",
    "knowledge_wire_size",
    "load_replica",
    "perform_encounter",
    "perform_sync",
    "register_routing_codec",
    "replica_from_state",
    "replica_to_state",
    "save_replica",
    "validate_host_filter",
    "validate_request_digest",
    "validate_request_knowledge",
    "wire_size",
]
