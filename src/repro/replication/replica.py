"""The replica: one device's view of the replicated collection.

A :class:`Replica` ties together the pieces defined elsewhere in this
package:

* a :class:`~repro.replication.filters.Filter` declaring which items the
  host wants (its in-filter data),
* *knowledge* (a :class:`~repro.replication.versions.VersionVector`)
  summarising every item version the replica has ever received or authored,
* three stores:

  - the **in-filter store** — items matching the filter (the host's own
    mail, plus any relay addresses in a multi-address filter),
  - the **outbox** — items this replica authored that do *not* match its
    own filter (a message you send is usually addressed to someone else);
    Cimbiosys's push-out store plays this role,
  - the **relay store** — out-of-filter items accepted from peers because a
    DTN routing policy chose to carry them; this is the only store subject
    to the Figure 10 storage cap, matching the paper's "excluding messages
    for which the node itself is the sender or the destination".

The replica enforces the substrate's two delivery guarantees:

* **at-most-once** — :meth:`apply_remote` refuses any version already
  covered by knowledge (the sync layer should never send one; doing so is
  a protocol bug and raises),
* **eventual filter consistency** — versions are only added to knowledge
  when actually received or authored, so an unknown in-filter item is
  always accepted at the next opportunity.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterator, List, Mapping, Optional

from .digest import SuppressionLedger
from .errors import DuplicateDeliveryError, UnknownItemError
from .events import ObserverList, ReplicaObserver
from .filters import Filter, FilterMatchCache
from .ids import IdFactory, ItemId, ReplicaId, Version
from .integrity import ChecksumCache
from .items import Item
from .store import ItemStore, RelayStore
from .versions import VersionVector


def _wins(incoming: Item, stored: Item) -> bool:
    """Deterministic conflict resolution between two versions of one item.

    Deletion dominates (the paper's destination-deletes-the-item flow must
    not be resurrected by a stale copy); otherwise the higher
    ``(counter, replica)`` version wins — a deterministic last-writer-wins
    rule that every replica resolves identically.
    """
    if incoming.deleted != stored.deleted:
        return incoming.deleted
    incoming_key = (incoming.version.counter, incoming.version.replica)
    stored_key = (stored.version.counter, stored.version.replica)
    return incoming_key > stored_key


class Replica:
    """One host's replication state and the operations on it."""

    def __init__(
        self,
        replica_id: ReplicaId,
        filter_: Filter,
        relay_capacity: Optional[int] = None,
        relay_eviction: object = "fifo",
    ) -> None:
        self.replica_id = replica_id
        self._filter = filter_
        self._ids = IdFactory(replica_id)
        self.knowledge = VersionVector.empty()
        self._store = ItemStore()
        self._outbox = ItemStore()
        self._relay = RelayStore(
            capacity=relay_capacity,
            on_evict=self._notify_evict,
            strategy=relay_eviction,
        )
        self.observers = ObserverList()
        #: Memoised peer-filter match decisions for stored items; the sync
        #: layer consults it when building batches for repeat encounters.
        self.filter_cache = FilterMatchCache()
        #: Content-addressed checksum memoisation, shared across the three
        #: stores so every eviction/removal/supersession path invalidates
        #: it (see :class:`~repro.replication.integrity.ChecksumCache`).
        self.checksum_cache = ChecksumCache()
        self._store.checksum_cache = self.checksum_cache
        self._outbox.checksum_cache = self.checksum_cache
        self._relay.attach_checksum_cache(self.checksum_cache)
        #: Per-peer memory of digest-suppressed versions; proves false
        #: positives when a suppressed version is later sent (the
        #: ``fp_resend`` counter). Accounting only — never consulted for
        #: batch selection, and losing it (crash-restart) merely
        #: undercounts.
        self.suppression_ledger = SuppressionLedger()
        self._digest_sessions = 0

    # -- configuration ---------------------------------------------------------

    @property
    def filter(self) -> Filter:
        return self._filter

    def set_filter(self, new_filter: Filter) -> None:
        """Replace the replica's filter.

        Relayed or outboxed items that match the new filter move into the
        in-filter store (and are reported as stored with
        ``matched_filter=True`` — a delivery, if the application considers
        them addressed here). Items in the in-filter store that no longer
        match are demoted to the relay store.
        """
        self._filter = new_filter
        for item in self._relay.items():
            if new_filter.matches(item):
                self._relay.discard(item.item_id)
                self._store.put(item)
                self.observers.on_store(item, matched_filter=True)
        for item in self._outbox.items():
            if new_filter.matches(item):
                self._outbox.discard(item.item_id)
                self._store.put(item)
                self.observers.on_store(item, matched_filter=True)
        for item in self._store.items():
            if not new_filter.matches(item):
                self._store.discard(item.item_id)
                if item.version.replica == self.replica_id:
                    self._outbox.put(item)
                else:
                    self._relay.put(item)

    def set_relay_capacity(self, capacity: Optional[int]) -> None:
        """Adjust the relay-store cap (Figure 10's storage constraint)."""
        self._relay.capacity = capacity

    def register_observer(self, observer: ReplicaObserver) -> None:
        self.observers.register(observer)

    # -- authoring ----------------------------------------------------------------

    def create_item(
        self,
        payload: Any = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> Item:
        """Author a new item at this replica.

        The item gets a fresh id and version; its version is recorded in
        knowledge immediately (a replica always knows what it authored).
        """
        item = Item(
            item_id=self._ids.next_item_id(),
            version=self._ids.next_version(),
            payload=payload,
            attributes=dict(attributes or {}),
        )
        self.knowledge.add(item.version)
        self._place_authored(item)
        return item

    def update_item(
        self,
        item_id: ItemId,
        payload: Any = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> Item:
        """Author a new version of an existing item."""
        current = self._find(item_id)
        if current is None:
            raise UnknownItemError(item_id)
        new_attributes = dict(current.attributes)
        if attributes:
            new_attributes.update(attributes)
        updated = current.with_version(
            self._ids.next_version(),
            payload=payload if payload is not None else current.payload,
            attributes=new_attributes,
            local_attributes={},
        )
        self.knowledge.add(updated.version)
        self._replace(updated)
        return updated

    def delete_item(self, item_id: ItemId) -> Item:
        """Delete an item by authoring a replicating tombstone.

        The tombstone keeps the item's attributes (so filters still route
        it) but drops the payload; as it spreads, forwarding nodes replace
        their stored copies, freeing buffer space — the paper's
        acknowledgement-free cleanup.
        """
        current = self._find(item_id)
        if current is None:
            raise UnknownItemError(item_id)
        tombstone = current.as_tombstone(self._ids.next_version())
        self.knowledge.add(tombstone.version)
        self._replace(tombstone)
        self.observers.on_delete(tombstone)
        return tombstone

    @property
    def last_authored_counter(self) -> int:
        """The highest version counter this replica has ever issued.

        Protocol validation uses this as the upper bound on what any peer
        can legitimately claim to know about this replica's own versions:
        a sync request whose knowledge exceeds it is fabricated.
        """
        return self._ids.last_counter

    def next_digest_salt(self) -> int:
        """A fresh salt for the next knowledge digest this replica builds.

        Deterministic (replica name × monotone session counter, no
        process-global state) yet unique per session, so consecutive
        digests decorrelate their false-positive sets — the property
        that turns an FP into a one-contact delay instead of a
        permanent suppression.
        """
        self._digest_sessions += 1
        name_mix = zlib.crc32(self.replica_id.name.encode("utf-8"))
        return ((name_mix << 20) ^ self._digest_sessions) & 0xFFFFFFFFFFFFFFFF

    # -- receiving -------------------------------------------------------------------

    def apply_remote(self, item: Item) -> bool:
        """Accept an item received during a sync.

        Returns ``True`` if the item matched this replica's filter (for the
        messaging application, a potential delivery). Raises
        :class:`DuplicateDeliveryError` if the version is already known —
        the source is required to filter against our knowledge, so a
        duplicate indicates a protocol violation, not a benign race.
        """
        if self.knowledge.contains(item.version):
            raise DuplicateDeliveryError(
                f"{self.replica_id} already knows {item.version}"
            )
        self.knowledge.add(item.version)

        stored = self._find(item.item_id)
        if stored is not None and not _wins(item, stored):
            # Stale concurrent version: knowledge now covers it, but the
            # stored (winning) copy is untouched.
            return False

        matched = self._filter.matches(item)
        if stored is not None:
            self._remove_everywhere(item.item_id)
        if matched:
            self._store.put(item)
        else:
            self._relay.put(item)
        self.observers.on_store(item, matched_filter=matched)
        return matched

    # -- host-local adjustments -----------------------------------------------------

    def adjust_local(self, item: Item) -> None:
        """Replace a stored item with a host-local-attribute variant.

        The replacement must carry the same id and version (``with_local``
        guarantees this); the operation does not touch knowledge, versions,
        or FIFO positions — it is invisible to the replication protocol,
        matching the paper's internal no-new-version update interface.
        """
        for store in (self._store, self._outbox):
            if item.item_id in store:
                stored = store.get(item.item_id)
                assert stored is not None
                if stored.version != item.version:
                    raise UnknownItemError(item.item_id)
                store.update_in_place(item)
                return
        if item.item_id in self._relay:
            stored = self._relay.get(item.item_id)
            assert stored is not None
            if stored.version != item.version:
                raise UnknownItemError(item.item_id)
            self._relay.update_in_place(item)
            return
        raise UnknownItemError(item.item_id)

    def expunge(self, item_id: ItemId) -> None:
        """Drop an item locally *without* replicating a deletion.

        Knowledge still covers its version, so the item will not be
        re-accepted; used by application-level cleanup that should not
        generate tombstone traffic.
        """
        self._remove_everywhere(item_id)

    # -- queries ------------------------------------------------------------------------

    def stored_items(self) -> Iterator[Item]:
        """All items this replica holds, across all three stores."""
        yield from self._store
        yield from self._outbox
        yield from self._relay

    @property
    def stored_count(self) -> int:
        """Total items held across all three stores."""
        return len(self._store) + len(self._outbox) + len(self._relay)

    def items_unknown_to(self, knowledge: VersionVector) -> List[Item]:
        """Stored items whose versions the given knowledge does not cover.

        This is the sync hot path: instead of scanning every stored item
        and probing ``knowledge.contains``, each store's version index
        enumerates only the counters above the peer's known prefix (see
        :meth:`~repro.replication.store.ItemStore.unknown_items`). The
        result is identical to :meth:`items_unknown_to_scan` — same items,
        same order — at a cost proportional to what the peer is missing.
        """
        return (
            self._store.unknown_items(knowledge)
            + self._outbox.unknown_items(knowledge)
            + self._relay.unknown_items(knowledge)
        )

    def items_unknown_to_scan(self, knowledge: VersionVector) -> List[Item]:
        """Reference full-scan implementation of :meth:`items_unknown_to`.

        Kept as the executable specification the version index must match
        (the equivalence tests assert it) and as the baseline the
        ``repro bench sync`` micro-benchmark measures against.
        """
        return [
            item for item in self.stored_items() if not knowledge.contains(item.version)
        ]

    def get_item(self, item_id: ItemId) -> Optional[Item]:
        return self._find(item_id)

    def holds(self, item_id: ItemId) -> bool:
        return self._find(item_id) is not None

    @property
    def in_filter_count(self) -> int:
        return len(self._store)

    @property
    def outbox_count(self) -> int:
        return len(self._outbox)

    @property
    def relay_count(self) -> int:
        return len(self._relay)

    def storage_footprint(self) -> Dict[str, int]:
        """Per-store item counts plus knowledge size, for the metrics layer."""
        return {
            "in_filter": len(self._store),
            "outbox": len(self._outbox),
            "relay": len(self._relay),
            "knowledge_entries": self.knowledge.size_in_entries(),
            "knowledge_extras": self.knowledge.size_in_extras(),
        }

    # -- internals -------------------------------------------------------------------------

    def _place_authored(self, item: Item) -> None:
        if self._filter.matches(item):
            self._store.put(item)
            self.observers.on_store(item, matched_filter=True)
        else:
            self._outbox.put(item)
            self.observers.on_store(item, matched_filter=False)

    def _replace(self, item: Item) -> None:
        self._remove_everywhere(item.item_id)
        if self._filter.matches(item):
            self._store.put(item)
        elif item.version.replica == self.replica_id:
            self._outbox.put(item)
        else:
            self._relay.put(item)

    def _find(self, item_id: ItemId) -> Optional[Item]:
        for store in (self._store, self._outbox):
            item = store.get(item_id)
            if item is not None:
                return item
        return self._relay.get(item_id)

    def _remove_everywhere(self, item_id: ItemId) -> None:
        self._store.discard(item_id)
        self._outbox.discard(item_id)
        self._relay.discard(item_id)
        self.filter_cache.forget(item_id)

    def _notify_evict(self, item: Item) -> None:
        self.filter_cache.forget(item.item_id)
        self.observers.on_evict(item)

    def __repr__(self) -> str:
        return (
            f"Replica({self.replica_id}, in_filter={len(self._store)}, "
            f"outbox={len(self._outbox)}, relay={len(self._relay)})"
        )
