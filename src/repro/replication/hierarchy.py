"""Filter hierarchies: Cimbiosys's tree topology and push-out flow.

Cimbiosys organises replicas in a *filter tree*: each replica's filter
selects a subset of its parent's, with an all-selecting root. Items that
do not match a replica's own filter are pushed **up** toward the parent
(the push-out store), and matching items flow **down** into the subtrees
whose filters select them; one up-pass plus one down-pass makes the whole
collection eventually filter-consistent even though most replicas only
ever talk to their parent.

This module reproduces that mechanism *on top of the DTN policy
interface* — the same plug the paper uses for routing protocols also
expresses Cimbiosys's own out-of-filter propagation:

* :class:`PushUpPolicy` — forwards out-of-filter items only when the sync
  target is this replica's parent;
* :class:`FilterTree` — the topology: parent/child registration with a
  subset sanity check, and :meth:`FilterTree.sync_round`, which runs one
  bottom-up then one top-down wave of parent↔child encounters (one round
  delivers any item across the tree: up to the root, down to every
  interested subtree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import InvalidFilterError, SyncProtocolError
from .filters import AddressFilter, AllFilter, Filter, MultiAddressFilter
from .items import Item
from .replica import Replica
from .routing import Priority, PriorityClass, RoutingPolicy, SyncContext
from .session import SyncSession
from .sync import SyncEndpoint, SyncStats


class PushUpPolicy(RoutingPolicy):
    """Forward out-of-filter items to the parent, and only to the parent.

    This is Cimbiosys's push-out store expressed as a forwarding policy:
    everything a replica holds but does not want flows toward the root,
    where the all-selecting filter accepts it and the down-flow can find
    the interested subtree.
    """

    name = "push-up"

    def __init__(self, parent: Optional[str]) -> None:
        #: The parent replica's name; None at the root (push nothing).
        self.parent = parent

    def to_send(
        self, item: Item, target_filter: Filter, context: SyncContext
    ) -> Optional[Priority]:
        if self.parent is not None and context.remote.name == self.parent:
            return Priority(PriorityClass.NORMAL)
        return None


def _filter_subsumes(parent: Filter, child: Filter) -> bool:
    """Best-effort structural check that ``parent`` selects ⊇ ``child``.

    Exact subsumption is undecidable for arbitrary predicates; the
    common concrete cases are checked and anything else is accepted
    (the tree still works — unmatched items simply keep flowing up).
    """
    if isinstance(parent, AllFilter):
        return True
    child_addresses = None
    if isinstance(child, AddressFilter):
        child_addresses = {child.address}
    elif isinstance(child, MultiAddressFilter):
        child_addresses = set(child.addresses)
    parent_addresses = None
    if isinstance(parent, AddressFilter):
        parent_addresses = {parent.address}
    elif isinstance(parent, MultiAddressFilter):
        parent_addresses = set(parent.addresses)
    if child_addresses is not None and parent_addresses is not None:
        return child_addresses <= parent_addresses
    return True


@dataclass
class _TreeNode:
    replica: Replica
    endpoint: SyncEndpoint
    parent: Optional[str]
    children: List[str] = field(default_factory=list)
    depth: int = 0


class FilterTree:
    """A Cimbiosys-style synchronisation tree over replicas."""

    def __init__(self) -> None:
        self._nodes: Dict[str, _TreeNode] = {}
        self._root: Optional[str] = None

    # -- construction -----------------------------------------------------------

    def add_root(self, replica: Replica) -> SyncEndpoint:
        """Install the root replica. Its filter must select everything."""
        if self._root is not None:
            raise SyncProtocolError("the tree already has a root")
        if not isinstance(replica.filter, AllFilter):
            raise InvalidFilterError("the tree root must use AllFilter")
        name = replica.replica_id.name
        endpoint = SyncEndpoint(replica, PushUpPolicy(parent=None))
        self._nodes[name] = _TreeNode(replica, endpoint, parent=None, depth=0)
        self._root = name
        return endpoint

    def add_child(self, replica: Replica, parent: str) -> SyncEndpoint:
        """Attach a replica under ``parent``.

        The child's filter must (structurally) select a subset of the
        parent's; violations that the check can detect raise.
        """
        if self._root is None:
            raise SyncProtocolError("add a root before adding children")
        parent_node = self._nodes.get(parent)
        if parent_node is None:
            raise SyncProtocolError(f"unknown parent: {parent!r}")
        name = replica.replica_id.name
        if name in self._nodes:
            raise SyncProtocolError(f"duplicate tree node: {name!r}")
        if not _filter_subsumes(parent_node.replica.filter, replica.filter):
            raise InvalidFilterError(
                f"{name!r}'s filter is not a subset of {parent!r}'s"
            )
        endpoint = SyncEndpoint(replica, PushUpPolicy(parent=parent))
        self._nodes[name] = _TreeNode(
            replica,
            endpoint,
            parent=parent,
            depth=parent_node.depth + 1,
        )
        parent_node.children.append(name)
        return endpoint

    # -- queries ------------------------------------------------------------------

    @property
    def root(self) -> Optional[str]:
        return self._root

    def names(self) -> List[str]:
        return sorted(self._nodes)

    def depth_of(self, name: str) -> int:
        return self._nodes[name].depth

    def endpoint_of(self, name: str) -> SyncEndpoint:
        return self._nodes[name].endpoint

    def replica_of(self, name: str) -> Replica:
        return self._nodes[name].replica

    # -- synchronisation -----------------------------------------------------------

    def _edges_bottom_up(self) -> List[tuple]:
        edges = [
            (name, node.parent)
            for name, node in self._nodes.items()
            if node.parent is not None
        ]
        edges.sort(key=lambda edge: (-self._nodes[edge[0]].depth, edge[0]))
        return edges

    def sync_round(self, now: float = 0.0) -> List[SyncStats]:
        """One full propagation wave: everyone pushes up, then pulls down.

        Up-pass (deepest edges first): each parent pulls from its child —
        in-filter items plus the child's push-out overflow. Down-pass
        (shallowest first): each child pulls its in-filter items from its
        parent. After one round, any item authored anywhere is at every
        replica whose filter selects it.
        """
        stats: List[SyncStats] = []
        edges = self._edges_bottom_up()
        for child, parent in edges:
            stats.append(
                SyncSession(
                    source=self._nodes[child].endpoint,
                    target=self._nodes[parent].endpoint,
                    now=now,
                ).run()
            )
        for child, parent in reversed(edges):
            stats.append(
                SyncSession(
                    source=self._nodes[parent].endpoint,
                    target=self._nodes[child].endpoint,
                    now=now,
                ).run()
            )
        return stats

    def converge(self, rounds: int = 2, now: float = 0.0) -> List[SyncStats]:
        """Run multiple rounds (one suffices for fresh items; two also
        settle items that were mid-tree when the round started)."""
        stats: List[SyncStats] = []
        for round_index in range(rounds):
            stats.extend(self.sync_round(now=now + round_index))
        return stats
