"""The DTN messaging application built on the replication substrate.

Section IV-A of the paper: "To send a message, a host creates an item
representing the message and submits it to the replication layer. Each
host's filter ... is set to select the messages addressed to it. Hosts
synchronize when connections become available, and eventual consistency
guarantees that each message is delivered." This module is that
application — deliberately thin, because the substrate does the work.

A :class:`MessagingApp` wraps one replica. It watches the replica's store
events; when an item addressed to one of the host's *current* addresses
arrives (including the filter-change path, when a user boards a new bus and
relayed mail starts matching), it records a delivery exactly once per
message and invokes any registered delivery callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional

from repro.replication.events import BaseReplicaObserver
from repro.replication.ids import ItemId
from repro.replication.items import Item
from repro.replication.replica import Replica

from .message import Message

DeliveryCallback = Callable[[Message], None]
AddressProvider = Callable[[], FrozenSet[str]]


@dataclass(frozen=True)
class DeliveryReceipt:
    """A message delivery as observed by the application."""

    message: Message


class _StoreWatcher(BaseReplicaObserver):
    def __init__(self, app: "MessagingApp") -> None:
        self._app = app

    def on_store(self, item: Item, matched_filter: bool) -> None:
        if matched_filter:
            self._app._consider_delivery(item)


class MessagingApp:
    """Send and receive messages through a replica.

    ``addresses`` tells the app which addresses this host answers to right
    now (a host may carry several users, and the set may change over time);
    only items destined to a current address count as deliveries, even
    though a multi-address filter also pulls in relayed mail.
    """

    def __init__(
        self,
        replica: Replica,
        addresses: AddressProvider,
        delete_on_receipt: bool = False,
    ) -> None:
        self.replica = replica
        self._addresses = addresses
        self.delete_on_receipt = delete_on_receipt
        self._delivered: Dict[ItemId, Message] = {}
        self._callbacks: List[DeliveryCallback] = []
        replica.register_observer(_StoreWatcher(self))

    # -- sending ------------------------------------------------------------------

    def send(self, destination: str, body: Any, now: float = 0.0) -> Message:
        """Create and submit a message addressed to ``destination``.

        The source address recorded on the message is the host's primary
        (first, sorted) current address.
        """
        addresses = sorted(self._addresses())
        source = addresses[0] if addresses else self.replica.replica_id.name
        item = self.replica.create_item(
            payload=body,
            attributes=Message.attributes_for(source, destination, now),
        )
        message = Message.from_item(item)
        assert message is not None
        return message

    def send_from(
        self, source: str, destination: str, body: Any, now: float = 0.0
    ) -> Message:
        """Send with an explicit source address (a specific local user)."""
        item = self.replica.create_item(
            payload=body,
            attributes=Message.attributes_for(source, destination, now),
        )
        message = Message.from_item(item)
        assert message is not None
        return message

    def send_multicast(
        self, destinations, body: Any, now: float = 0.0
    ) -> Message:
        """Send one message to a set of recipients.

        A single replicated item carries the whole recipient set; each
        recipient's filter matches it, and every host records its own
        delivery exactly once (the knowledge mechanism dedups per host,
        not per recipient set).
        """
        addresses = sorted(self._addresses())
        source = addresses[0] if addresses else self.replica.replica_id.name
        item = self.replica.create_item(
            payload=body,
            attributes=Message.multicast_attributes_for(
                source, destinations, now
            ),
        )
        message = Message.from_item(item)
        assert message is not None
        return message

    # -- receiving -------------------------------------------------------------------

    def on_delivery(self, callback: DeliveryCallback) -> None:
        """Register a callback fired once per delivered message."""
        self._callbacks.append(callback)

    @property
    def delivered_messages(self) -> List[Message]:
        """Messages delivered to this host, in delivery order."""
        return list(self._delivered.values())

    def has_received(self, message_id: ItemId) -> bool:
        return message_id in self._delivered

    def delivery_log(self) -> Dict[ItemId, Message]:
        """Snapshot of the delivered-message log, in delivery order.

        The log is application-durable state: a host that checkpoints and
        restarts must not re-announce old deliveries, so the node layer
        saves this alongside the replica and feeds it back through
        :meth:`restore_delivery_log`.
        """
        return dict(self._delivered)

    def restore_delivery_log(self, log: Dict[ItemId, Message]) -> None:
        """Restore a :meth:`delivery_log` snapshot (no callbacks fire)."""
        self._delivered.update(log)

    def re_scan(self) -> None:
        """Re-check stored items against the current address set.

        Call after the host's address set grows without a filter change
        (normally the node layer changes the filter, which re-fires store
        events; this is a safety net for custom integrations).
        """
        for item in self.replica.stored_items():
            self._consider_delivery(item)

    # -- internals ----------------------------------------------------------------------

    def _consider_delivery(self, item: Item) -> None:
        message = Message.from_item(item)
        if message is None:
            return
        local = self._addresses()
        if not any(address in local for address in message.destinations):
            return
        if item.item_id in self._delivered:
            return
        self._delivered[item.item_id] = message
        for callback in self._callbacks:
            callback(message)
        if self.delete_on_receipt:
            # The paper's cleanup flow: the destination deletes the item,
            # and the tombstone's spread discards forwarded copies.
            self.replica.delete_item(item.item_id)
