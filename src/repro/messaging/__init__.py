"""The DTN messaging application (the paper's Section IV).

Messages are replicated items; a host's filter selects the messages
addressed to it (plus any addresses it volunteers to relay for). The
application inherits reliable, at-most-once, eventually consistent delivery
from the substrate.
"""

from .addressing import (
    flooding_filter,
    random_k_filter,
    relay_set,
    selected_k_filter,
    self_only_filter,
)
from .app import DeliveryCallback, DeliveryReceipt, MessagingApp
from .message import Message

__all__ = [
    "DeliveryCallback",
    "DeliveryReceipt",
    "Message",
    "MessagingApp",
    "flooding_filter",
    "random_k_filter",
    "relay_set",
    "selected_k_filter",
    "self_only_filter",
]
