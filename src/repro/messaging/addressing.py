"""Filter-population strategies for multi-address forwarding (Section IV-B).

The paper's first multi-hop mechanism changes no platform code at all: a
host simply lists addresses other than its own in its filter, volunteering
to carry mail for them. Two strategies are evaluated (Figures 5 and 6):

* **random** — ``k`` addresses drawn uniformly from the other hosts;
* **selected** — the ``k`` addresses belonging to the hosts this host
  encounters most often in the trace (an oracle over the mobility trace,
  as in the paper).

Both strategies here operate on abstract *addresses*; the experiments layer
supplies the candidate pool and, for ``selected``, the encounter-frequency
ranking derived from the mobility trace.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, Mapping, Sequence

from repro.replication.filters import MultiAddressFilter


def self_only_filter(own_address: str) -> MultiAddressFilter:
    """The basic DTN app's filter: only mail addressed to this host (k = 0)."""
    return MultiAddressFilter(own_address=own_address)


def random_k_filter(
    own_address: str,
    candidate_addresses: Iterable[str],
    k: int,
    rng: random.Random,
) -> MultiAddressFilter:
    """``random`` strategy: own address plus ``k`` uniformly chosen others.

    ``rng`` must be a seeded :class:`random.Random` so experiment runs are
    reproducible. If fewer than ``k`` candidates exist, all are taken.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    pool = sorted(set(candidate_addresses) - {own_address})
    chosen = pool if len(pool) <= k else rng.sample(pool, k)
    return MultiAddressFilter(own_address=own_address, relay_addresses=frozenset(chosen))


def selected_k_filter(
    own_address: str,
    encounter_frequency: Mapping[str, float],
    k: int,
) -> MultiAddressFilter:
    """``selected`` strategy: own address plus the ``k`` most-encountered.

    ``encounter_frequency`` maps candidate address → how often this host
    meets the host answering to that address over the whole trace (the
    paper computes this from the trace itself, i.e. with future knowledge).
    Ties break lexicographically for determinism.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    ranked = sorted(
        (address for address in encounter_frequency if address != own_address),
        key=lambda address: (-encounter_frequency[address], address),
    )
    return MultiAddressFilter(
        own_address=own_address, relay_addresses=frozenset(ranked[:k])
    )


def flooding_filter(own_address: str, all_addresses: Sequence[str]) -> MultiAddressFilter:
    """The ``k → everyone`` limit: equivalent to epidemic flooding."""
    return MultiAddressFilter(
        own_address=own_address,
        relay_addresses=frozenset(a for a in all_addresses if a != own_address),
    )


def relay_set(filter_: MultiAddressFilter) -> FrozenSet[str]:
    """The addresses a filter relays for (everything except the host's own)."""
    return filter_.relay_addresses
