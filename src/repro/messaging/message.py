"""Message representation for the DTN application.

A :class:`Message` is the application-level view of a replicated item: the
payload plus the addressing metadata that the substrate's filters route by.
The mapping is the paper's Section IV-A design — "messages are the data
items that are replicated between nodes":

====================  ============================================
Message field         Item representation
====================  ============================================
``source``            replicated attribute ``source``
``destination``       replicated attribute ``destination``
``created_at``        replicated attribute ``created_at``
``body``              item payload
(message identity)    the item id
====================  ============================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from repro.replication.ids import ItemId
from repro.replication.items import (
    ATTR_CREATED_AT,
    ATTR_DESTINATION,
    ATTR_KIND,
    ATTR_SOURCE,
    KIND_MESSAGE,
    Item,
)


@dataclass(frozen=True)
class Message:
    """One application message, as sent or received.

    ``destination`` is a single address (unicast) or a tuple of addresses
    (multicast).
    """

    message_id: ItemId
    source: str
    destination: Union[str, Tuple[str, ...]]
    body: Any
    created_at: float

    @classmethod
    def attributes_for(
        cls, source: str, destination: str, created_at: float
    ) -> Dict[str, Any]:
        """The replicated attribute dict for a new message item."""
        return {
            ATTR_KIND: KIND_MESSAGE,
            ATTR_SOURCE: source,
            ATTR_DESTINATION: destination,
            ATTR_CREATED_AT: created_at,
        }

    @property
    def destinations(self) -> tuple:
        """All destination addresses (one for unicast, several for multicast)."""
        if isinstance(self.destination, str):
            return (self.destination,)
        return tuple(self.destination)

    @property
    def is_multicast(self) -> bool:
        return not isinstance(self.destination, str)

    @classmethod
    def multicast_attributes_for(
        cls, source: str, destinations, created_at: float
    ) -> Dict[str, Any]:
        """Attribute dict for a message with a *set* of recipients.

        The paper's DTNs "deliver a message from a sender to a specific
        recipient or possibly a set of recipients"; a multicast item's
        destination attribute is a tuple and matches every recipient's
        filter.
        """
        recipients = tuple(dict.fromkeys(destinations))  # dedupe, keep order
        if not recipients:
            raise ValueError("multicast needs at least one destination")
        return {
            ATTR_KIND: KIND_MESSAGE,
            ATTR_SOURCE: source,
            ATTR_DESTINATION: recipients,
            ATTR_CREATED_AT: created_at,
        }

    @classmethod
    def from_item(cls, item: Item) -> Optional["Message"]:
        """Decode an item into a message; None for non-message items."""
        if item.deleted or item.attribute(ATTR_KIND, KIND_MESSAGE) != KIND_MESSAGE:
            return None
        source = item.attribute(ATTR_SOURCE)
        destination = item.attribute(ATTR_DESTINATION)
        if not isinstance(source, str):
            return None
        if not isinstance(destination, str):
            if not isinstance(destination, (tuple, list)) or not destination:
                return None
            destination = tuple(destination)
        return cls(
            message_id=item.item_id,
            source=source,
            destination=destination,
            body=item.payload,
            created_at=float(item.attribute(ATTR_CREATED_AT, 0.0)),
        )
