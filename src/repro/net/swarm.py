"""Live swarm orchestration: one OS process per trace host.

:func:`run_swarm` takes the exact :class:`ExperimentConfig` the emulator
runs, spawns one ``repro serve`` subprocess per host in the scaled trace,
and replays the scenario's directive schedule (:mod:`repro.net.schedule`)
over control channels — day-boundary address reassignments, message
injections, and encounters, in the emulator's event order. Encounters
happen as real peer-to-peer sync sessions over unix or TCP sockets
between the server processes; the orchestrator only tells the initiating
side whom to dial.

The orchestrator owns the experiment's single
:class:`~repro.emulation.metrics.MetricsCollector`, fed from directive
replies: sync stats travel back serialized, deliveries are announced by
the node that made them, and end-of-run copy counts come from snapshot
directives. Two deliberate differences from the emulator's collector are
documented where they occur: ``copies_at_delivery`` is unknowable without
a global view, and traffic counters include live-channel checksum work
the emulator's perfect channel skips. The replication *state* — what the
parity harness in :mod:`repro.experiments.parity` compares — is
bit-identical.

Replay is sequential (one directive completes before the next begins).
That is what makes a live run deterministic and parity-comparable: the
trace's encounters are instantaneous points in simulated time, so nothing
is lost by not overlapping them in wall-clock time.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import shutil
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import repro
from repro._compat import keyword_only_dataclass
from repro.emulation.metrics import MetricsCollector
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import run_summary_document
from repro.experiments.scenario import build_scenario
from repro.experiments.store import canonical_json, run_id_for
from repro.replication.codec import decode_item_id
from repro.replication.sync import SyncStats

from .connection import (
    DEFAULT_READ_TIMEOUT,
    PeerConnection,
    ReconnectDialer,
)
from .schedule import ScheduleStep, build_schedule
from .server import PROTOCOL_VERSION

#: Base port for ``transport="tcp"`` swarms; node i listens on base + i.
DEFAULT_BASE_PORT = 42640


@keyword_only_dataclass
@dataclass
class SwarmConfig:
    """Configuration of one live swarm run."""

    experiment: ExperimentConfig
    transport: str = "unix"
    host: str = "127.0.0.1"
    base_port: int = DEFAULT_BASE_PORT
    runtime_dir: Optional[str] = None
    startup_timeout: float = 30.0
    read_timeout: float = DEFAULT_READ_TIMEOUT
    extra_days: int = 0

    def __post_init__(self) -> None:
        if self.transport not in ("unix", "tcp"):
            raise ValueError(
                f"transport must be 'unix' or 'tcp', got {self.transport!r}"
            )
        faults = self.experiment.faults
        if faults is not None and faults.enabled:
            raise ValueError(
                "fault injection is simulation-only; a live swarm runs "
                "over real channels (use the emulator for fault studies)"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment.to_dict(),
            "transport": self.transport,
            "host": self.host,
            "base_port": self.base_port,
            "runtime_dir": self.runtime_dir,
            "startup_timeout": self.startup_timeout,
            "read_timeout": self.read_timeout,
            "extra_days": self.extra_days,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SwarmConfig":
        payload = dict(data)
        payload["experiment"] = ExperimentConfig.from_dict(
            payload["experiment"]
        )
        return cls(**payload)


@dataclass
class SwarmReport:
    """Everything a finished swarm run produced."""

    run_id: str
    fixed_points: Dict[str, Dict[str, Any]]
    metrics: MetricsCollector
    document: Dict[str, Any]
    checkpoints: Dict[str, Optional[str]] = field(default_factory=dict)
    skipped_injections: int = 0
    output_path: Optional[str] = None

    def artifact(self) -> Dict[str, Any]:
        """The on-disk artifact: summary document + full per-run detail.

        Shaped like a RunStore artifact (run id, config, metrics dump)
        but written wherever the caller asks, *not* into a RunStore
        directory — swarm run ids carry a ``swarm-`` prefix precisely so
        they can never collide with (or masquerade as) the emulator
        artifacts that sweeps resume from.
        """
        return {
            "run_id": self.run_id,
            "document": self.document,
            "metrics": self.metrics.to_dict(),
            "fixed_points": self.fixed_points,
        }


class _Node:
    """Orchestrator-side handle on one serve subprocess."""

    def __init__(self, name: str, address: str) -> None:
        self.name = name
        self.address = address
        self.process: Optional[asyncio.subprocess.Process] = None
        self.control: Optional[PeerConnection] = None


class _Swarm:
    def __init__(self, config: SwarmConfig) -> None:
        self.config = config
        self.scenario = build_scenario(config.experiment)
        self.steps, self.end_time = build_schedule(
            self.scenario, extra_days=config.extra_days
        )
        self.metrics = MetricsCollector()
        self.skipped_injections = 0
        self._user_location: Dict[str, str] = {}
        self._owns_runtime_dir = config.runtime_dir is None
        # Unix socket paths must stay short (the kernel caps sun_path at
        # ~100 bytes), hence a fresh short tempdir rather than anything
        # under the repo or a deep CWD.
        self.runtime_dir = pathlib.Path(
            config.runtime_dir or tempfile.mkdtemp(prefix="repro-swarm-")
        )
        self.nodes: Dict[str, _Node] = {}
        for index, name in enumerate(sorted(self.scenario.nodes)):
            if config.transport == "unix":
                address = f"unix:{self.runtime_dir / (name + '.sock')}"
            else:
                address = f"tcp:{config.host}:{config.base_port + index}"
            self.nodes[name] = _Node(name, address)

    # -- process management ---------------------------------------------------

    async def start(self) -> None:
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        config_path = self.runtime_dir / "experiment.json"
        config_path.write_text(
            json.dumps(self.config.experiment.to_dict(), indent=2)
        )
        state_dir = self.runtime_dir / "state"
        env = dict(os.environ)
        package_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        for node in self.nodes.values():
            node.process = await asyncio.create_subprocess_exec(
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--config",
                str(config_path),
                "--node",
                node.name,
                "--listen",
                node.address,
                "--state-dir",
                str(state_dir),
                env=env,
            )
        await self._connect_all()

    async def _connect_all(self) -> None:
        # The dialer drives redial pacing through the peer-health state
        # machine; generous attempts because N interpreters are cold-
        # starting concurrently.
        deadline = (
            asyncio.get_running_loop().time() + self.config.startup_timeout
        )
        for node in self.nodes.values():
            dialer = ReconnectDialer(
                max_attempts=200, read_timeout=self.config.read_timeout
            )
            while True:
                if node.process is not None and node.process.returncode is not None:
                    raise RuntimeError(
                        f"serve process for {node.name!r} exited with "
                        f"{node.process.returncode} during startup"
                    )
                try:
                    node.control = await dialer.dial(node.name, node.address)
                    break
                except (ConnectionError, OSError):
                    if asyncio.get_running_loop().time() > deadline:
                        raise RuntimeError(
                            f"could not reach {node.name!r} at "
                            f"{node.address} within "
                            f"{self.config.startup_timeout:.0f}s"
                        )
            await node.control.send(
                {
                    "type": "hello",
                    "node": "orchestrator",
                    "protocol": PROTOCOL_VERSION,
                }
            )
            hello = await node.control.receive()
            if hello.get("type") != "hello" or hello.get("node") != node.name:
                raise RuntimeError(
                    f"unexpected greeting from {node.name!r}: {hello!r}"
                )

    async def stop(self, persist: bool = True) -> Dict[str, Optional[str]]:
        checkpoints: Dict[str, Optional[str]] = {}
        for node in self.nodes.values():
            if node.control is not None:
                try:
                    await node.control.send(
                        {"type": "shutdown", "persist": persist}
                    )
                    reply = await node.control.receive()
                    checkpoints[node.name] = reply.get("checkpoint")
                except (ConnectionError, asyncio.TimeoutError, OSError):
                    checkpoints[node.name] = None
                await node.control.close()
                node.control = None
        for node in self.nodes.values():
            if node.process is None:
                continue
            try:
                await asyncio.wait_for(node.process.wait(), timeout=10.0)
            except asyncio.TimeoutError:
                node.process.kill()
                await node.process.wait()
            node.process = None
        return checkpoints

    async def kill(self) -> None:
        """Hard cleanup after a failure: close channels, kill processes."""
        for node in self.nodes.values():
            if node.control is not None:
                await node.control.close()
                node.control = None
            if node.process is not None and node.process.returncode is None:
                node.process.kill()
                await node.process.wait()
                node.process = None

    def cleanup_runtime_dir(self) -> None:
        if self._owns_runtime_dir:
            shutil.rmtree(self.runtime_dir, ignore_errors=True)

    # -- directive replay -----------------------------------------------------

    async def _command(
        self, node: _Node, message: Dict[str, Any], expected: str
    ) -> Dict[str, Any]:
        assert node.control is not None
        await node.control.send(message)
        reply = await node.control.receive()
        if reply.get("type") == "error":
            raise RuntimeError(
                f"{node.name} rejected {message.get('type')!r}: "
                f"{reply.get('error')}"
            )
        if reply.get("type") != expected:
            raise RuntimeError(
                f"{node.name} answered {reply.get('type')!r} to "
                f"{message.get('type')!r}"
            )
        return reply

    def _record_deliveries(self, deliveries: Any) -> None:
        # ``copies_at_delivery`` stays None on the live path: counting
        # live copies network-wide at the instant of delivery needs the
        # emulator's global view. The summary's mean-copies figure
        # ignores None records; every other per-message metric (delay,
        # delivery ratio) is exact.
        for event in deliveries or ():
            self.metrics.record_delivery(
                decode_item_id(event["message_id"]),
                float(event["time"]),
                event["node"],
                None,
            )

    async def _replay_step(self, step: ScheduleStep) -> None:
        if step.kind == "assign":
            day_map = step.payload["addresses"]
            # Mirror Emulator._apply_assignment: every node gets its (or
            # an empty) user set, and the user->node view is rebuilt.
            for name, node in self.nodes.items():
                reply = await self._command(
                    node,
                    {
                        "type": "assign",
                        "time": step.time,
                        "addresses": day_map.get(name, []),
                    },
                    "assign-ok",
                )
                self._record_deliveries(reply.get("deliveries"))
            self._user_location = {
                user: name
                for name, users in day_map.items()
                for user in users
            }
        elif step.kind == "inject":
            source = step.payload["source"]
            if source in self.nodes:
                node_name: Optional[str] = source
            else:
                node_name = self._user_location.get(source)
            if node_name is None:
                self.skipped_injections += 1
                return
            node = self.nodes[node_name]
            reply = await self._command(
                node,
                {
                    "type": "inject",
                    "time": step.time,
                    "source": source,
                    "destination": step.payload["destination"],
                    "body": step.payload["body"],
                },
                "inject-ok",
            )
            self.metrics.record_injection(
                decode_item_id(reply["message_id"]),
                source,
                step.payload["destination"],
                step.time,
                node_name,
            )
            self._record_deliveries(reply.get("deliveries"))
        elif step.kind == "encounter":
            assert step.first is not None and step.second is not None
            first = self.nodes[step.first]
            second = self.nodes[step.second]
            reply = await self._command(
                first,
                {
                    "type": "encounter",
                    "time": step.time,
                    "peer": second.name,
                    "address": second.address,
                    "budget": step.budget,
                },
                "encounter-ok",
            )
            self.metrics.record_encounter()
            for stats in reply["syncs"]:
                self.metrics.record_sync(SyncStats.from_dict(stats))
            self._record_deliveries(reply.get("deliveries"))
        else:
            raise ValueError(f"unknown schedule step kind {step.kind!r}")

    async def replay(self) -> None:
        for step in self.steps:
            await self._replay_step(step)

    # -- end of run -----------------------------------------------------------

    async def collect(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot every node; finalise metrics from the global view."""
        fixed_points: Dict[str, Dict[str, Any]] = {}
        held: Dict[str, set] = {}
        evictions = 0
        for name in sorted(self.nodes):
            reply = await self._command(
                self.nodes[name], {"type": "snapshot"}, "snapshot-ok"
            )
            fixed_points[name] = reply["fixed_point"]
            held[name] = set(reply["held"])
            evictions += int(reply.get("evictions", 0))
        self.metrics.evictions = evictions
        self.metrics.end_time = self.end_time
        for record in self.metrics.records.values():
            key = str(record.message_id)
            record.copies_at_end = sum(
                1 for ids in held.values() if key in ids
            )
        return fixed_points


async def _run_swarm(
    config: SwarmConfig, output: Optional[str]
) -> SwarmReport:
    swarm = _Swarm(config)
    try:
        await swarm.start()
        await swarm.replay()
        fixed_points = await swarm.collect()
        checkpoints = await swarm.stop(persist=True)
    except BaseException:
        await swarm.kill()
        raise
    finally:
        swarm.cleanup_runtime_dir()

    experiment = config.experiment
    run_id = f"swarm-{run_id_for(experiment)}"
    document = run_summary_document(
        kind="swarm",
        label=experiment.label(),
        scale=experiment.scale,
        summary=swarm.metrics.summary(),
        extra={
            "run_id": run_id,
            "transport": config.transport,
            "nodes": len(swarm.nodes),
            "skipped_injections": swarm.skipped_injections,
        },
    )
    report = SwarmReport(
        run_id=run_id,
        fixed_points=fixed_points,
        metrics=swarm.metrics,
        document=document,
        checkpoints=checkpoints,
        skipped_injections=swarm.skipped_injections,
    )
    if output:
        path = pathlib.Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(canonical_json(report.artifact()) + "\n")
        report.output_path = str(path)
    return report


def run_swarm(
    config: SwarmConfig, output: Optional[str] = None
) -> SwarmReport:
    """Run a live swarm to completion; optionally write the artifact.

    Synchronous wrapper (spawning, replay, and teardown all happen on a
    private event loop) so callers — the CLI, the parity harness, tests —
    need no asyncio plumbing of their own.
    """
    return asyncio.run(_run_swarm(config, output))
