"""Live swarm orchestration: one OS process per trace host.

:func:`run_swarm` takes the exact :class:`ExperimentConfig` the emulator
runs, spawns one ``repro serve`` subprocess per host in the scaled trace,
and replays the scenario's directive schedule (:mod:`repro.net.schedule`)
over control channels — day-boundary address reassignments, message
injections, and encounters, in the emulator's event order. Encounters
happen as real peer-to-peer sync sessions over unix or TCP sockets
between the server processes; the orchestrator only tells the initiating
side whom to dial.

The orchestrator owns the experiment's single
:class:`~repro.emulation.metrics.MetricsCollector`, fed from directive
replies: sync stats travel back serialized, deliveries are announced by
the node that made them, and end-of-run copy counts come from snapshot
directives. Two deliberate differences from the emulator's collector are
documented where they occur: ``copies_at_delivery`` is unknowable without
a global view, and traffic counters include live-channel checksum work
the emulator's perfect channel skips. The replication *state* — what the
parity harness in :mod:`repro.experiments.parity` compares — is
bit-identical.

Replay is sequential (one directive completes before the next begins).
That is what makes a live run deterministic and parity-comparable: the
trace's encounters are instantaneous points in simulated time, so nothing
is lost by not overlapping them in wall-clock time.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import shutil
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

import repro
from repro._compat import keyword_only_dataclass
from repro.churn import LifecycleEvent, LifecycleTracker, ReciprocityLedger
from repro.emulation.metrics import MetricsCollector
from repro.experiments.config import ExperimentConfig
from repro.experiments.parity import replica_fixed_point
from repro.experiments.report import run_summary_document
from repro.experiments.scenario import build_scenario
from repro.experiments.store import canonical_json, run_id_for
from repro.replication.codec import decode_item_id
from repro.replication.persistence import load_replica
from repro.replication.sync import SyncStats

from .connection import (
    DEFAULT_READ_TIMEOUT,
    PeerConnection,
    ReconnectDialer,
)
from .schedule import ScheduleStep, build_schedule
from .server import PROTOCOL_VERSION

#: Base port for ``transport="tcp"`` swarms; node i listens on base + i.
DEFAULT_BASE_PORT = 42640


@keyword_only_dataclass
@dataclass
class SwarmConfig:
    """Configuration of one live swarm run."""

    experiment: ExperimentConfig
    transport: str = "unix"
    host: str = "127.0.0.1"
    base_port: int = DEFAULT_BASE_PORT
    runtime_dir: Optional[str] = None
    startup_timeout: float = 30.0
    read_timeout: float = DEFAULT_READ_TIMEOUT
    extra_days: int = 0

    def __post_init__(self) -> None:
        if self.transport not in ("unix", "tcp"):
            raise ValueError(
                f"transport must be 'unix' or 'tcp', got {self.transport!r}"
            )
        faults = self.experiment.faults
        if faults is not None and faults.enabled:
            raise ValueError(
                "fault injection is simulation-only; a live swarm runs "
                "over real channels (use the emulator for fault studies)"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment.to_dict(),
            "transport": self.transport,
            "host": self.host,
            "base_port": self.base_port,
            "runtime_dir": self.runtime_dir,
            "startup_timeout": self.startup_timeout,
            "read_timeout": self.read_timeout,
            "extra_days": self.extra_days,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SwarmConfig":
        payload = dict(data)
        payload["experiment"] = ExperimentConfig.from_dict(
            payload["experiment"]
        )
        return cls(**payload)


@dataclass
class SwarmReport:
    """Everything a finished swarm run produced."""

    run_id: str
    fixed_points: Dict[str, Dict[str, Any]]
    metrics: MetricsCollector
    document: Dict[str, Any]
    checkpoints: Dict[str, Optional[str]] = field(default_factory=dict)
    skipped_injections: int = 0
    output_path: Optional[str] = None

    def artifact(self) -> Dict[str, Any]:
        """The on-disk artifact: summary document + full per-run detail.

        Shaped like a RunStore artifact (run id, config, metrics dump)
        but written wherever the caller asks, *not* into a RunStore
        directory — swarm run ids carry a ``swarm-`` prefix precisely so
        they can never collide with (or masquerade as) the emulator
        artifacts that sweeps resume from.
        """
        return {
            "run_id": self.run_id,
            "document": self.document,
            "metrics": self.metrics.to_dict(),
            "fixed_points": self.fixed_points,
        }


class _Node:
    """Orchestrator-side handle on one serve subprocess."""

    def __init__(self, name: str, address: str) -> None:
        self.name = name
        self.address = address
        self.process: Optional[asyncio.subprocess.Process] = None
        self.control: Optional[PeerConnection] = None


class _Swarm:
    def __init__(self, config: SwarmConfig) -> None:
        self.config = config
        self.scenario = build_scenario(config.experiment)
        self.steps, self.end_time = build_schedule(
            self.scenario, extra_days=config.extra_days
        )
        self.metrics = MetricsCollector()
        self.skipped_injections = 0
        self._user_location: Dict[str, str] = {}
        self._current_day_map: Mapping[str, List[str]] = {}
        # Churn: the orchestrator runs the *same* lifecycle/reciprocity
        # trackers the emulator does, against the schedule the scenario
        # derived — so encounter gating, lost injections, and reciprocity
        # admission are identical by construction, while the processes
        # underneath are genuinely killed and respawned.
        self.churn_schedule = self.scenario.churn_schedule
        self.lifecycle: Optional[LifecycleTracker] = None
        self.reciprocity: Optional[ReciprocityLedger] = None
        if self.churn_schedule is not None:
            churn = self.scenario.config.churn
            assert churn is not None
            names = sorted(self.scenario.nodes)
            self.lifecycle = LifecycleTracker(names, self.churn_schedule)
            self.reciprocity = ReciprocityLedger(
                names,
                threshold=churn.reciprocity_threshold,
                min_taken=churn.reciprocity_min_taken,
            )
            self.metrics.arm_churn()
        self._owns_runtime_dir = config.runtime_dir is None
        # Unix socket paths must stay short (the kernel caps sun_path at
        # ~100 bytes), hence a fresh short tempdir rather than anything
        # under the repo or a deep CWD.
        self.runtime_dir = pathlib.Path(
            config.runtime_dir or tempfile.mkdtemp(prefix="repro-swarm-")
        )
        self.nodes: Dict[str, _Node] = {}
        for index, name in enumerate(sorted(self.scenario.nodes)):
            if config.transport == "unix":
                address = f"unix:{self.runtime_dir / (name + '.sock')}"
            else:
                address = f"tcp:{config.host}:{config.base_port + index}"
            self.nodes[name] = _Node(name, address)

    # -- process management ---------------------------------------------------

    async def start(self) -> None:
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        self._config_path = self.runtime_dir / "experiment.json"
        self._config_path.write_text(
            json.dumps(self.config.experiment.to_dict(), indent=2)
        )
        self._state_dir = self.runtime_dir / "state"
        self._env = dict(os.environ)
        package_root = str(pathlib.Path(repro.__file__).resolve().parents[1])
        existing = self._env.get("PYTHONPATH")
        self._env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        for node in self.nodes.values():
            await self._spawn(node)
        await self._connect_all()

    async def _spawn(self, node: _Node, amnesiac: bool = False) -> None:
        argv = [
            "-m",
            "repro",
            "serve",
            "--config",
            str(self._config_path),
            "--node",
            node.name,
            "--listen",
            node.address,
            "--state-dir",
            str(self._state_dir),
        ]
        if amnesiac:
            argv.append("--amnesiac")
        if node.address.startswith("unix:"):
            # A killed process leaves its socket file behind; the respawn
            # must bind the same path.
            pathlib.Path(node.address[len("unix:"):]).unlink(missing_ok=True)
        node.process = await asyncio.create_subprocess_exec(
            sys.executable, *argv, env=self._env
        )

    async def _connect_all(self) -> None:
        deadline = (
            asyncio.get_running_loop().time() + self.config.startup_timeout
        )
        for node in self.nodes.values():
            await self._connect(node, deadline)

    async def _connect(
        self, node: _Node, deadline: Optional[float] = None
    ) -> None:
        # The dialer drives redial pacing through the peer-health state
        # machine; generous attempts because N interpreters are cold-
        # starting concurrently.
        if deadline is None:
            deadline = (
                asyncio.get_running_loop().time()
                + self.config.startup_timeout
            )
        dialer = ReconnectDialer(
            max_attempts=200, read_timeout=self.config.read_timeout
        )
        while True:
            if node.process is not None and node.process.returncode is not None:
                raise RuntimeError(
                    f"serve process for {node.name!r} exited with "
                    f"{node.process.returncode} during startup"
                )
            try:
                node.control = await dialer.dial(node.name, node.address)
                break
            except (ConnectionError, OSError):
                if asyncio.get_running_loop().time() > deadline:
                    raise RuntimeError(
                        f"could not reach {node.name!r} at "
                        f"{node.address} within "
                        f"{self.config.startup_timeout:.0f}s"
                    )
        await node.control.send(
            {
                "type": "hello",
                "node": "orchestrator",
                "protocol": PROTOCOL_VERSION,
            }
        )
        hello = await node.control.receive()
        if hello.get("type") != "hello" or hello.get("node") != node.name:
            raise RuntimeError(
                f"unexpected greeting from {node.name!r}: {hello!r}"
            )

    async def stop(self, persist: bool = True) -> Dict[str, Optional[str]]:
        checkpoints: Dict[str, Optional[str]] = {}
        for node in self.nodes.values():
            if node.control is None:
                # Departed mid-run: its checkpoint (if any) was written
                # on the way down.
                path = getattr(self, "_state_dir", None)
                if path is not None:
                    candidate = path / f"{node.name}.json"
                    checkpoints[node.name] = (
                        str(candidate) if candidate.exists() else None
                    )
            elif node.control is not None:
                try:
                    await node.control.send(
                        {"type": "shutdown", "persist": persist}
                    )
                    reply = await node.control.receive()
                    checkpoints[node.name] = reply.get("checkpoint")
                except (ConnectionError, asyncio.TimeoutError, OSError):
                    checkpoints[node.name] = None
                await node.control.close()
                node.control = None
        for node in self.nodes.values():
            if node.process is None:
                continue
            try:
                await asyncio.wait_for(node.process.wait(), timeout=10.0)
            except asyncio.TimeoutError:
                node.process.kill()
                await node.process.wait()
            node.process = None
        return checkpoints

    async def kill(self) -> None:
        """Hard cleanup after a failure: close channels, kill processes."""
        for node in self.nodes.values():
            if node.control is not None:
                await node.control.close()
                node.control = None
            if node.process is not None and node.process.returncode is None:
                node.process.kill()
                await node.process.wait()
                node.process = None

    def cleanup_runtime_dir(self) -> None:
        if self._owns_runtime_dir:
            shutil.rmtree(self.runtime_dir, ignore_errors=True)

    # -- directive replay -----------------------------------------------------

    async def _command(
        self, node: _Node, message: Dict[str, Any], expected: str
    ) -> Dict[str, Any]:
        assert node.control is not None
        await node.control.send(message)
        reply = await node.control.receive()
        if reply.get("type") == "error":
            raise RuntimeError(
                f"{node.name} rejected {message.get('type')!r}: "
                f"{reply.get('error')}"
            )
        if reply.get("type") != expected:
            raise RuntimeError(
                f"{node.name} answered {reply.get('type')!r} to "
                f"{message.get('type')!r}"
            )
        return reply

    def _record_deliveries(self, deliveries: Any) -> None:
        # ``copies_at_delivery`` stays None on the live path: counting
        # live copies network-wide at the instant of delivery needs the
        # emulator's global view. The summary's mean-copies figure
        # ignores None records; every other per-message metric (delay,
        # delivery ratio) is exact.
        for event in deliveries or ():
            self.metrics.record_delivery(
                decode_item_id(event["message_id"]),
                float(event["time"]),
                event["node"],
                None,
            )

    def _online(self, name: str) -> bool:
        return self.lifecycle is None or self.lifecycle.online(name)

    def _observe_syncs(
        self, a: str, b: str, stats: List[SyncStats], now: float
    ) -> None:
        """Feed one completed encounter into the churn bookkeeping."""
        if self.lifecycle is None:
            return
        self.lifecycle.note_encounter(a, b, now, self.metrics)
        assert self.reciprocity is not None
        for sync_stats in stats:
            self.reciprocity.observe_sync(
                sync_stats.source.name, sync_stats.target.name,
                sync_stats.sent_total,
            )

    async def _replay_step(self, step: ScheduleStep) -> None:
        if step.kind == "assign":
            day_map = step.payload["addresses"]
            self._current_day_map = day_map
            # Mirror Emulator._apply_assignment: every *online* node gets
            # its (or an empty) user set, offline nodes keep their
            # crash-time filter until rejoin, and the user->node view is
            # rebuilt over online nodes only.
            for name, node in self.nodes.items():
                if not self._online(name):
                    continue
                reply = await self._command(
                    node,
                    {
                        "type": "assign",
                        "time": step.time,
                        "addresses": day_map.get(name, []),
                    },
                    "assign-ok",
                )
                self._record_deliveries(reply.get("deliveries"))
            self._user_location = {
                user: name
                for name, users in day_map.items()
                for user in users
                if self._online(name)
            }
        elif step.kind == "inject":
            source = step.payload["source"]
            if source in self.nodes:
                node_name: Optional[str] = source
            else:
                node_name = self._user_location.get(source)
            if node_name is None:
                self.skipped_injections += 1
                return
            if not self._online(node_name):
                # Mirror Emulator._inject: the sending node is down, the
                # message is never born — a counted churn cost.
                self.metrics.record_churn_lost_injection()
                return
            node = self.nodes[node_name]
            reply = await self._command(
                node,
                {
                    "type": "inject",
                    "time": step.time,
                    "source": source,
                    "destination": step.payload["destination"],
                    "body": step.payload["body"],
                },
                "inject-ok",
            )
            self.metrics.record_injection(
                decode_item_id(reply["message_id"]),
                source,
                step.payload["destination"],
                step.time,
                node_name,
            )
            self._record_deliveries(reply.get("deliveries"))
        elif step.kind == "encounter":
            assert step.first is not None and step.second is not None
            if self.lifecycle is not None:
                # Same gate order as Emulator._run_encounter (the role
                # coin was already consumed when the schedule was built).
                if not (
                    self._online(step.first) and self._online(step.second)
                ):
                    self.metrics.record_churn_skip()
                    return
                assert self.reciprocity is not None
                if not self.reciprocity.admit(step.first, step.second):
                    self.metrics.record_reciprocity_refusal()
                    return
            first = self.nodes[step.first]
            second = self.nodes[step.second]
            reply = await self._command(
                first,
                {
                    "type": "encounter",
                    "time": step.time,
                    "peer": second.name,
                    "address": second.address,
                    "budget": step.budget,
                },
                "encounter-ok",
            )
            stats = [SyncStats.from_dict(raw) for raw in reply["syncs"]]
            self.metrics.record_encounter()
            self._observe_syncs(step.first, step.second, stats, step.time)
            for sync_stats in stats:
                self.metrics.record_sync(sync_stats)
            self._record_deliveries(reply.get("deliveries"))
        elif step.kind == "lifecycle":
            await self._apply_lifecycle(step)
        else:
            raise ValueError(f"unknown schedule step kind {step.kind!r}")

    async def _apply_lifecycle(self, step: ScheduleStep) -> None:
        """Apply one churn event against the real process fleet.

        Mirrors ``Emulator._apply_lifecycle``, except the state
        transitions are physical: a graceful leaver checkpoints and exits,
        a crash is an image of durable state followed by SIGKILL, and a
        rejoin is a fresh ``repro serve`` process booting from (all of,
        or — amnesiac — only the id counters of) that checkpoint.
        """
        assert self.lifecycle is not None
        payload = step.payload
        kind = str(payload["kind"])
        name = str(payload["node"])
        node = self.nodes[name]
        now = step.time
        if kind == "leave" and payload.get("partner"):
            await self._run_handoff(name, str(payload["partner"]), now)
        if kind in ("leave", "crash"):
            for user in self._current_day_map.get(name, []):
                if self._user_location.get(user) == name:
                    del self._user_location[user]
        if kind == "leave":
            assert node.control is not None
            await node.control.send({"type": "shutdown", "persist": True})
            await node.control.receive()  # shutdown-ok (checkpoint path)
            await node.control.close()
            node.control = None
            if node.process is not None:
                await node.process.wait()
                node.process = None
        elif kind == "crash":
            # Checkpoint-then-SIGKILL is what "only what reached disk
            # survives" means for a continuously-checkpointing replica;
            # the emulator's frozen-in-place node is the same state.
            await self._command(node, {"type": "checkpoint"}, "checkpoint-ok")
            assert node.control is not None
            await node.control.close()
            node.control = None
            if node.process is not None:
                node.process.kill()
                await node.process.wait()
                node.process = None
        elif kind == "rejoin":
            await self._spawn(node, amnesiac=bool(payload.get("amnesiac")))
            await self._connect(node)
        self.lifecycle.apply(
            LifecycleEvent(
                time=step.time,
                kind=kind,
                node=name,
                partner=payload.get("partner"),
                amnesiac=bool(payload.get("amnesiac")),
            ),
            now,
            self.metrics,
        )
        if kind in ("arrive", "rejoin"):
            users = list(self._current_day_map.get(name, []))
            reply = await self._command(
                node,
                {"type": "assign", "time": now, "addresses": users},
                "assign-ok",
            )
            self._record_deliveries(reply.get("deliveries"))
            for user in users:
                self._user_location[user] = name

    async def _run_handoff(self, leaver: str, partner: str, now: float) -> None:
        """The graceful leaver's final, unbudgeted sync pair."""
        second = self.nodes[partner]
        reply = await self._command(
            self.nodes[leaver],
            {
                "type": "encounter",
                "time": now,
                "peer": partner,
                "address": second.address,
                "budget": None,
            },
            "encounter-ok",
        )
        stats = [SyncStats.from_dict(raw) for raw in reply["syncs"]]
        self.metrics.record_encounter()
        self.metrics.record_churn_handoff()
        self._observe_syncs(leaver, partner, stats, now)
        for sync_stats in stats:
            self.metrics.record_sync(sync_stats)
        self._record_deliveries(reply.get("deliveries"))

    async def replay(self) -> None:
        for step in self.steps:
            await self._replay_step(step)

    # -- end of run -----------------------------------------------------------

    async def collect(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot every node; finalise metrics from the global view."""
        fixed_points: Dict[str, Dict[str, Any]] = {}
        held: Dict[str, set] = {}
        evictions = 0
        for name in sorted(self.nodes):
            node = self.nodes[name]
            if node.control is None:
                # Departed (left or crashed-without-rejoining) node: its
                # process is gone, so snapshot the checkpoint it wrote on
                # the way down — exactly the state the emulator's frozen
                # node holds at end of run. Its eviction counter died
                # with the process; pre-departure evictions on such
                # nodes are the one counter the live path undercounts.
                replica, _ = load_replica(self._state_dir / f"{name}.json")
                fixed_points[name] = replica_fixed_point(replica)
                held[name] = {
                    str(item.item_id)
                    for item in replica.stored_items()
                    if not item.deleted
                }
                continue
            reply = await self._command(
                node, {"type": "snapshot"}, "snapshot-ok"
            )
            fixed_points[name] = reply["fixed_point"]
            held[name] = set(reply["held"])
            evictions += int(reply.get("evictions", 0))
        self.metrics.evictions = evictions
        self.metrics.end_time = self.end_time
        for record in self.metrics.records.values():
            key = str(record.message_id)
            record.copies_at_end = sum(
                1 for ids in held.values() if key in ids
            )
        if self.lifecycle is not None:
            assert self.reciprocity is not None
            node_seconds = self.lifecycle.finalize(self.end_time)
            self.metrics.finalize_churn(
                node_seconds,
                self.lifecycle.departed,
                self.reciprocity.scores(),
            )
        return fixed_points


async def _run_swarm(
    config: SwarmConfig, output: Optional[str]
) -> SwarmReport:
    swarm = _Swarm(config)
    try:
        await swarm.start()
        await swarm.replay()
        fixed_points = await swarm.collect()
        checkpoints = await swarm.stop(persist=True)
    except BaseException:
        await swarm.kill()
        raise
    finally:
        swarm.cleanup_runtime_dir()

    experiment = config.experiment
    run_id = f"swarm-{run_id_for(experiment)}"
    document = run_summary_document(
        kind="swarm",
        label=experiment.label(),
        scale=experiment.scale,
        summary=swarm.metrics.summary(),
        extra={
            "run_id": run_id,
            "transport": config.transport,
            "nodes": len(swarm.nodes),
            "skipped_injections": swarm.skipped_injections,
            "churn": swarm.lifecycle is not None,
        },
    )
    report = SwarmReport(
        run_id=run_id,
        fixed_points=fixed_points,
        metrics=swarm.metrics,
        document=document,
        checkpoints=checkpoints,
        skipped_injections=swarm.skipped_injections,
    )
    if output:
        path = pathlib.Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(canonical_json(report.artifact()) + "\n")
        report.output_path = str(path)
    return report


def run_swarm(
    config: SwarmConfig, output: Optional[str] = None
) -> SwarmReport:
    """Run a live swarm to completion; optionally write the artifact.

    Synchronous wrapper (spawning, replay, and teardown all happen on a
    private event loop) so callers — the CLI, the parity harness, tests —
    need no asyncio plumbing of their own.
    """
    return asyncio.run(_run_swarm(config, output))
