"""Length-prefixed wire framing for the live transport.

A frame is ``MAGIC + 4-byte big-endian payload length + payload``, where
the payload is one UTF-8 canonical-JSON object (the same compact encoding
:mod:`repro.replication.codec` uses for everything else on the wire). The
magic both versions the framing and anchors resynchronisation: a receiver
that finds itself mid-garbage — a partially overwritten buffer, a peer
speaking an older framing, bytes mangled in flight — scans forward to the
next magic and resumes, counting what it skipped instead of dying.

Streams are adversarial by assumption (the PR-4 threat model): a bogus
length field must not make the receiver wait forever or allocate
unboundedly, so lengths above :data:`MAX_FRAME_BYTES` are treated as
corruption, not as instructions. Payloads that decode to non-JSON or to a
non-object are dropped and counted (``corrupt_frames``) — the sync layer
above already treats missing frames as a truncated session and re-offers
at the next contact, the same monotone-progress contract the faults layer
established.

See ``docs/protocol.md`` §9.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List

MAGIC = b"RPR1"
HEADER_SIZE = len(MAGIC) + 4
#: Hard ceiling on one frame's payload. A batch frame at city scale is a
#: few MB; anything claiming more is a corrupt or hostile length field.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class FramingError(ValueError):
    """A message that cannot be framed (not JSON-encodable, or oversized)."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """Encode one message dict as a wire frame.

    Canonical compact JSON (sorted keys, no whitespace) so identical
    messages are byte-identical — the property every checksum in the
    codec layer already relies on.
    """
    if not isinstance(message, dict):
        raise FramingError(
            f"wire messages are JSON objects, got {type(message).__name__}"
        )
    try:
        payload = json.dumps(
            message, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise FramingError(f"message is not JSON-encodable: {error}") from error
    if len(payload) > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame payload of {len(payload)} bytes exceeds "
            f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return MAGIC + struct.pack(">I", len(payload)) + payload


def _magic_prefix_overlap(buffer: bytes) -> int:
    """Longest tail of ``buffer`` that is a proper prefix of MAGIC."""
    for size in range(min(len(buffer), len(MAGIC) - 1), 0, -1):
        if buffer[-size:] == MAGIC[:size]:
            return size
    return 0


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte stream.

    Feed it whatever the socket hands you — single bytes, half frames,
    three frames and a torn header — and it returns each complete message
    exactly once, in order. Garbage between frames is skipped by scanning
    to the next magic (``resyncs`` / ``junk_bytes`` count it); a frame
    whose payload fails JSON decoding is dropped (``corrupt_frames``).

    ``pending`` exposes the buffered byte count so a reader can tell a
    clean EOF from a connection cut mid-frame — the wire-level analogue
    of the truncation fault's interrupted session.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.resyncs = 0
        self.junk_bytes = 0
        self.corrupt_frames = 0

    @property
    def pending(self) -> int:
        """Bytes buffered toward an incomplete frame (0 at a clean point)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Consume ``data``; return every message it completes."""
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while True:
            if not self._resync():
                break
            if len(self._buffer) < HEADER_SIZE:
                break
            (length,) = struct.unpack_from(">I", self._buffer, len(MAGIC))
            if length > MAX_FRAME_BYTES:
                # A hostile/corrupt length field. Skip one byte and rescan:
                # a real frame boundary inside what looked like a header
                # (the magic can legitimately appear in payload bytes that
                # were torn from their own frame) is found, not lost.
                del self._buffer[:1]
                self.junk_bytes += 1
                self.resyncs += 1
                continue
            if len(self._buffer) < HEADER_SIZE + length:
                break
            payload = bytes(self._buffer[HEADER_SIZE:HEADER_SIZE + length])
            del self._buffer[:HEADER_SIZE + length]
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                self.corrupt_frames += 1
                continue
            if not isinstance(message, dict):
                self.corrupt_frames += 1
                continue
            messages.append(message)
        return messages

    def _resync(self) -> bool:
        """Align the buffer on the next magic; False if none is in sight.

        Keeps the longest buffered tail that could still grow into a
        magic, so a magic split across two reads is never thrown away.
        """
        index = self._buffer.find(MAGIC)
        if index == 0:
            return True
        if index > 0:
            self.junk_bytes += index
            self.resyncs += 1
            del self._buffer[:index]
            return True
        keep = _magic_prefix_overlap(bytes(self._buffer))
        dropped = len(self._buffer) - keep
        if dropped:
            self.junk_bytes += dropped
            self.resyncs += 1
            del self._buffer[:dropped]
        return False
