"""Turn a scenario into the directive schedule a live swarm replays.

The discrete-event emulator owns three event kinds — day-boundary user
reassignments, message injections, and encounters — ordered by
``(time, priority band, scheduling order)``. A live swarm replays the very
same events as timed directives over its control channels, so parity with
the emulator rests on this module reproducing that order *exactly*:

* the step list is built in the emulator's scheduling order (assignments
  sorted by day, injections in workload order, encounters in trace order)
  and stable-sorted by ``(time, priority)`` — identical to the engine's
  ``(time, priority, sequence)`` heap order;
* the encounter role coin (which side initiates the first sync) is drawn
  from ``random.Random(encounter_order_seed)`` once per encounter *in
  replay order*, matching the emulator's single draw per executed
  encounter on the fault-free path the live swarm runs.

Anything that would make the draws diverge (sync-failure sampling, fault
injection) is rejected by the swarm before it starts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.emulation.encounters import SECONDS_PER_DAY
from repro.emulation.engine import EventPriority
from repro.experiments.scenario import Scenario


@dataclass
class ScheduleStep:
    """One timed directive in a swarm replay.

    ``kind`` is ``assign`` (payload: ``{node: [users]}``), ``inject``
    (payload: source/destination/body), ``encounter`` (``first`` is
    the coordinator and the first sync's *source*; ``budget`` the
    per-encounter item cap, None for unlimited), or ``lifecycle``
    (payload: the churn event's kind/node/partner/amnesiac — the
    orchestrator kills, restarts, or hands off the named replica).
    """

    time: float
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    first: Optional[str] = None
    second: Optional[str] = None
    budget: Optional[int] = None


def build_schedule(
    scenario: Scenario, extra_days: int = 0
) -> Tuple[List[ScheduleStep], float]:
    """The scenario's full directive schedule, plus the experiment end time.

    Returns the steps in exact emulator execution order, with encounter
    roles already resolved (``first`` initiates and sources the first
    sync).
    """
    config = scenario.config
    emulator = scenario.emulator
    assignments = emulator.assignments
    raw: List[Tuple[float, int, int, ScheduleStep]] = []
    sequence = 0

    for day in sorted(assignments):
        day_map = assignments[day]
        raw.append(
            (
                day * SECONDS_PER_DAY,
                int(EventPriority.CONTROL),
                sequence,
                ScheduleStep(
                    time=day * SECONDS_PER_DAY,
                    kind="assign",
                    payload={
                        "addresses": {
                            node: sorted(users)
                            for node, users in day_map.items()
                        }
                    },
                ),
            )
        )
        sequence += 1
    churn_schedule = scenario.churn_schedule
    if churn_schedule is not None:
        # Same band and relative order as Emulator.schedule_all: lifecycle
        # events ride the CONTROL band, queued after the day assignments.
        for event in churn_schedule.events:
            raw.append(
                (
                    event.time,
                    int(EventPriority.CONTROL),
                    sequence,
                    ScheduleStep(
                        time=event.time,
                        kind="lifecycle",
                        payload={
                            "kind": event.kind,
                            "node": event.node,
                            "partner": event.partner,
                            "amnesiac": event.amnesiac,
                        },
                    ),
                )
            )
            sequence += 1
    for injection in scenario.injections:
        raw.append(
            (
                injection.time,
                int(EventPriority.INJECT),
                sequence,
                ScheduleStep(
                    time=injection.time,
                    kind="inject",
                    payload={
                        "source": injection.source,
                        "destination": injection.destination,
                        "body": injection.body,
                    },
                ),
            )
        )
        sequence += 1
    for encounter in scenario.trace:
        raw.append(
            (
                encounter.time,
                int(EventPriority.ENCOUNTER),
                sequence,
                ScheduleStep(
                    time=encounter.time,
                    kind="encounter",
                    first=encounter.a,
                    second=encounter.b,
                    budget=emulator._encounter_budget(encounter),
                ),
            )
        )
        sequence += 1

    raw.sort(key=lambda entry: entry[:3])
    steps = [step for _, _, _, step in raw]

    # Resolve encounter roles with the emulator's coin, in its draw order.
    rng = random.Random(config.encounter_order_seed)
    for step in steps:
        if step.kind != "encounter":
            continue
        order = rng.random() < 0.5
        if not order:
            step.first, step.second = step.second, step.first

    last_day = max(
        [encounter.day for encounter in scenario.trace]
        + list(assignments.keys())
        + [0]
    )
    end_time = (last_day + 1 + extra_days) * SECONDS_PER_DAY
    return steps, end_time
