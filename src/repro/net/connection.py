"""Framed connections over asyncio streams, with health-driven redial.

One :class:`PeerConnection` wraps an asyncio reader/writer pair in the
:mod:`repro.net.framing` codec: ``send`` writes one frame, ``receive``
returns the next decoded message, applying a per-read timeout so a stalled
peer cannot wedge the process. EOF raises :class:`ConnectionClosed`, whose
``mid_frame`` flag distinguishes a clean close from a connection cut
mid-frame — the live analogue of the truncation fault, and what the parity
tests lean on.

Addresses are strings — ``unix:/path/to.sock`` or ``tcp:host:port`` — so
the CLI, config files, and wire messages all name endpoints the same way.

:class:`ReconnectDialer` puts the PR-4 peer-health state machine in charge
of redial pacing: every failed dial is an outcome with one strike, every
success an outcome with zero, and while the tracker quarantines the peer
the dialer sleeps until the tracker's own ``next_probe`` — so transport
backoff and protocol-level misbehaviour share one notion of "leave that
peer alone for a while".
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, Optional, Tuple

from repro.replication.peer_health import PeerHealthTracker

from .framing import FrameDecoder, encode_frame

#: How much to ask the socket for per read; frames span reads freely.
READ_CHUNK = 65536

#: Default per-receive timeout (seconds). Generous — control directives
#: can legitimately take a while when the peer is mid-encounter.
DEFAULT_READ_TIMEOUT = 30.0


class ConnectionClosed(ConnectionError):
    """The peer closed (or the network cut) the connection.

    ``mid_frame`` is True when the stream ended with a partial frame
    buffered — the transfer was interrupted, not completed.
    """

    def __init__(self, message: str, mid_frame: bool = False) -> None:
        super().__init__(message)
        self.mid_frame = mid_frame


def parse_address(address: str) -> Tuple[str, Any]:
    """Parse ``unix:/path`` or ``tcp:host:port`` into (scheme, operand)."""
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError(f"empty unix socket path in {address!r}")
        return "unix", path
    if address.startswith("tcp:"):
        rest = address[len("tcp:"):]
        host, separator, port = rest.rpartition(":")
        if not separator or not host:
            raise ValueError(
                f"tcp address must be tcp:host:port, got {address!r}"
            )
        return "tcp", (host, int(port))
    raise ValueError(
        f"unsupported address {address!r}; expected unix:/path or "
        f"tcp:host:port"
    )


def format_address(scheme: str, operand: Any) -> str:
    if scheme == "unix":
        return f"unix:{operand}"
    if scheme == "tcp":
        host, port = operand
        return f"tcp:{host}:{port}"
    raise ValueError(f"unsupported scheme {scheme!r}")


class PeerConnection:
    """One framed, timeout-guarded connection to a peer process."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.read_timeout = read_timeout
        self._decoder = FrameDecoder()
        self._inbox: list = []

    @property
    def decoder(self) -> FrameDecoder:
        """The framing decoder (its counters are diagnostics)."""
        return self._decoder

    async def send(self, message: Dict[str, Any]) -> None:
        self.writer.write(encode_frame(message))
        await self.writer.drain()

    async def receive(
        self, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Return the next message, waiting at most ``timeout`` seconds.

        Raises :class:`asyncio.TimeoutError` on expiry and
        :class:`ConnectionClosed` on EOF (``mid_frame`` set when the
        stream died inside a frame).
        """
        if timeout is None:
            timeout = self.read_timeout
        deadline = time.monotonic() + timeout
        while not self._inbox:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise asyncio.TimeoutError(
                    f"no frame within {timeout:.1f}s"
                )
            data = await asyncio.wait_for(
                self.reader.read(READ_CHUNK), timeout=remaining
            )
            if not data:
                raise ConnectionClosed(
                    "peer closed the connection",
                    mid_frame=self._decoder.pending > 0,
                )
            self._inbox.extend(self._decoder.feed(data))
        return self._inbox.pop(0)

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def open_connection(
    address: str, read_timeout: float = DEFAULT_READ_TIMEOUT
) -> PeerConnection:
    """Dial ``address`` once; raises ``OSError`` on failure."""
    scheme, operand = parse_address(address)
    if scheme == "unix":
        reader, writer = await asyncio.open_unix_connection(operand)
    else:
        host, port = operand
        reader, writer = await asyncio.open_connection(host, port)
    return PeerConnection(reader, writer, read_timeout=read_timeout)


class ReconnectDialer:
    """Dial peers with reconnect backoff from the peer-health tracker.

    The tracker (:mod:`repro.replication.peer_health`) already encodes
    strike thresholds, exponential quarantine windows, and recovery
    probes; the dialer just feeds it dial outcomes and obeys its
    ``allowed``/``next_probe`` verdicts. A connection refused N times in
    a row therefore backs off on exactly the curve a misbehaving sync
    peer does.
    """

    def __init__(
        self,
        tracker: Optional[PeerHealthTracker] = None,
        max_attempts: int = 8,
        read_timeout: float = DEFAULT_READ_TIMEOUT,
        clock=time.monotonic,
    ) -> None:
        self.tracker = tracker if tracker is not None else PeerHealthTracker()
        self.max_attempts = max_attempts
        self.read_timeout = read_timeout
        self.clock = clock
        self.attempts = 0
        self.redials = 0

    async def dial(self, peer: str, address: str) -> PeerConnection:
        """Connect to ``peer`` at ``address``, retrying with backoff."""
        last_error: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            now = self.clock()
            if not self.tracker.allowed(peer, now):
                wait = max(0.0, self.tracker.record(peer).next_probe - now)
                # The tracker's quarantine windows are sized for multi-day
                # emulated time; on a live dial loop, cap the sleep so a
                # swarm starting up converges in wall-clock seconds.
                await asyncio.sleep(min(wait, 0.05 * (attempt + 1)))
            try:
                connection = await open_connection(
                    address, read_timeout=self.read_timeout
                )
            except OSError as error:
                last_error = error
                self.attempts += 1
                self.redials += 1
                self.tracker.record_outcome(peer, 1, self.clock())
                await asyncio.sleep(0.02 * (attempt + 1))
                continue
            self.attempts += 1
            self.tracker.record_outcome(peer, 0, self.clock())
            return connection
        raise ConnectionError(
            f"could not reach {peer} at {address} after "
            f"{self.max_attempts} attempts: {last_error}"
        )
