"""One replica as a networked daemon: the ``repro serve`` process.

A :class:`NodeServer` owns exactly one emulated node — replica, routing
policy, messaging app — built from the *same* scenario construction the
emulator uses (:func:`~repro.experiments.scenario.build_scenario`), so a
swarm of N servers starts from state identical to an N-node emulation.

It listens on one address for two kinds of framed connections:

* **control** — the swarm orchestrator's channel: timed directives
  (``assign``, ``inject``, ``encounter``, ``snapshot``, ``status``,
  ``shutdown``) that replay a trace schedule against the live node;
* **peer** — another node dialing in to run an encounter. The sync flow
  is the transport-agnostic
  :class:`~repro.replication.session.SyncSession`, driven stepwise: the
  request, batch frame, and stats travel as
  :mod:`repro.replication.codec` encodings inside
  :mod:`repro.net.framing` frames.

Simulated time is carried *on the directives* (the live swarm replays a
multi-day trace in wall-clock seconds); the node tracks the high-water
mark and stamps it on policy hooks and delivery records, which is what
keeps time-dependent routing state (PROPHET aging, MaxProp estimates)
bit-equal to the emulator's.

Protocol framing and the message sequence are specified in
``docs/protocol.md`` §9; operational usage in ``docs/deployment.md``.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import signal
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro._compat import keyword_only_dataclass
from repro.experiments.config import ExperimentConfig
from repro.experiments.parity import replica_fixed_point
from repro.experiments.report import run_summary_document
from repro.experiments.scenario import build_scenario
from repro.messaging.app import MessagingApp
from repro.replication.codec import (
    CodecError,
    decode_batch_frame,
    decode_sync_request,
    encode_batch_frame,
    encode_item_id,
    encode_sync_request,
)
from repro.replication.digest import DigestConfig
from repro.replication.errors import SyncProtocolError
from repro.replication.events import BaseReplicaObserver
from repro.replication.filters import MultiAddressFilter
from repro.replication.ids import ReplicaId
from repro.replication.items import Item
from repro.replication.persistence import load_replica, save_replica
from repro.replication.routing import SyncContext
from repro.replication.session import SessionConfig, SyncSession
from repro.replication.sync import SyncEndpoint, SyncStats

from .connection import (
    DEFAULT_READ_TIMEOUT,
    ConnectionClosed,
    PeerConnection,
    open_connection,
    parse_address,
)

PROTOCOL_VERSION = 1


@keyword_only_dataclass
@dataclass
class ServeConfig:
    """Configuration of one ``repro serve`` daemon."""

    node: str
    listen: str
    experiment: ExperimentConfig
    state_dir: Optional[str] = None
    read_timeout: float = DEFAULT_READ_TIMEOUT
    #: Rejoin after losing everything but identity: ignore the stores,
    #: knowledge, and policy state in any on-disk checkpoint and restore
    #: only the id-factory counters (see
    #: :func:`~repro.replication.persistence.amnesiac_replica_state`).
    amnesiac: bool = False

    def __post_init__(self) -> None:
        if not self.node:
            raise ValueError("a serve daemon needs a node name")
        parse_address(self.listen)  # validate early
        faults = self.experiment.faults
        if faults is not None and faults.enabled:
            raise ValueError(
                "live mode runs over real channels; fault injection is a "
                "simulation-only feature (run the emulator for faults)"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "listen": self.listen,
            "experiment": self.experiment.to_dict(),
            "state_dir": self.state_dir,
            "read_timeout": self.read_timeout,
            "amnesiac": self.amnesiac,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServeConfig":
        return cls(
            node=data["node"],
            listen=data["listen"],
            experiment=ExperimentConfig.from_dict(data["experiment"]),
            state_dir=data.get("state_dir"),
            read_timeout=data.get("read_timeout", DEFAULT_READ_TIMEOUT),
            amnesiac=bool(data.get("amnesiac", False)),
        )


class _EvictionCounter(BaseReplicaObserver):
    def __init__(self) -> None:
        self.count = 0

    def on_evict(self, item: Item) -> None:
        self.count += 1


class NodeServer:
    """One live replica process, serving control and peer connections."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        scenario = build_scenario(config.experiment)
        if config.node not in scenario.nodes:
            raise ValueError(
                f"node {config.node!r} is not in the trace "
                f"(hosts: {sorted(scenario.nodes)})"
            )
        self.node = scenario.nodes[config.node]
        self.name = config.node
        experiment = config.experiment
        self.session_config = SessionConfig(
            digest=(
                DigestConfig(fp_rate=experiment.digest_fp_rate)
                if experiment.knowledge_digest
                else None
            ),
        )
        #: Simulated-time high-water mark, advanced by directive times.
        self.sim_now = 0.0
        self.encounters = 0
        self._deliveries: List[Dict[str, Any]] = []
        self._evictions = _EvictionCounter()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._restore_checkpoint()
        self._wire_node()

    # -- state plumbing -------------------------------------------------------

    @property
    def checkpoint_path(self) -> Optional[pathlib.Path]:
        if self.config.state_dir is None:
            return None
        return pathlib.Path(self.config.state_dir) / f"{self.name}.json"

    def _restore_checkpoint(self) -> None:
        path = self.checkpoint_path
        if path is None or not path.exists():
            return
        if self.config.amnesiac:
            # An amnesiac rejoin boots from the scenario-fresh replica the
            # constructor just built (empty stores/knowledge, pristine
            # policy) and salvages only the id-factory counters — reusing
            # version serials after forgetting the items they named would
            # collide with still-circulating copies. This matches
            # EmulatedNode.amnesiac_restart: the emulator's filter is
            # likewise re-derived from the current assignment, not the
            # checkpoint.
            document = json.loads(path.read_text())
            try:
                replica_state = document["replica_state"]
            except (TypeError, KeyError):
                raise CodecError(f"not a replica checkpoint: {path}") from None
            if replica_state.get("replica") != self.name:
                raise ValueError(
                    f"checkpoint {path} belongs to "
                    f"{replica_state.get('replica')!r}, not {self.name!r}"
                )
            self.node.replica._ids.restore(replica_state["ids"])
            return
        replica, policy_state = load_replica(path)
        if replica.replica_id.name != self.name:
            raise ValueError(
                f"checkpoint {path} belongs to "
                f"{replica.replica_id.name!r}, not {self.name!r}"
            )
        node = self.node
        node.replica = replica
        # Re-derive the in-memory assigned-user set from the restored
        # filter so a later ``assign`` directive sees the same
        # no-op/rebuild decisions the emulator's long-lived node object
        # would (its assigned set survives a simulated crash in memory,
        # matching the checkpoint's filter exactly).
        restored_filter = replica.filter
        if isinstance(restored_filter, MultiAddressFilter):
            node._assigned_addresses = (
                restored_filter.relay_addresses - node.static_relay_addresses
            )
        node.policy.bind(node.replica, node.addresses)
        if policy_state is not None:
            node.policy.restore_state(policy_state)
        node.app = MessagingApp(
            node.replica, node.addresses,
            delete_on_receipt=node.delete_on_receipt,
        )
        node.endpoint = SyncEndpoint(node.replica, node.policy)

    def _wire_node(self) -> None:
        self.node.replica.register_observer(self._evictions)
        self.node.app.on_delivery(self._on_delivery)

    def _on_delivery(self, message) -> None:
        self._deliveries.append(
            {
                "message_id": encode_item_id(message.message_id),
                "time": self.sim_now,
                "node": self.name,
            }
        )

    def _drain_deliveries(self) -> List[Dict[str, Any]]:
        drained, self._deliveries = self._deliveries, []
        return drained

    def _advance(self, time: Any) -> float:
        if isinstance(time, (int, float)):
            self.sim_now = max(self.sim_now, float(time))
        return self.sim_now

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        scheme, operand = parse_address(self.config.listen)
        if scheme == "unix":
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=operand
            )
        else:
            host, port = operand
            self._server = await asyncio.start_server(
                self._on_connection, host, port
            )
        self._stopped = asyncio.Event()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        await self._stopped.wait()
        self._server.close()
        await self._server.wait_closed()

    def request_shutdown(self, persist: bool = True) -> Optional[str]:
        """Persist (optionally) and arrange for ``serve_forever`` to return."""
        checkpoint = None
        path = self.checkpoint_path
        if persist and path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            save_replica(
                self.node.replica,
                path,
                policy_state=self.node.policy.persistent_state(),
            )
            checkpoint = str(path)
        if self._stopped is not None:
            self._stopped.set()
        return checkpoint

    # -- connection handling --------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = PeerConnection(
            reader, writer, read_timeout=self.config.read_timeout
        )
        try:
            hello = await connection.receive()
            if hello.get("type") != "hello":
                await connection.send(
                    {"type": "error", "error": "expected hello"}
                )
                return
            await connection.send(
                {
                    "type": "hello",
                    "node": self.name,
                    "protocol": PROTOCOL_VERSION,
                }
            )
            await self._serve_connection(connection)
        except (ConnectionClosed, asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            await connection.close()

    async def _serve_connection(self, connection: PeerConnection) -> None:
        while True:
            try:
                message = await connection.receive()
            except asyncio.TimeoutError:
                continue  # idle control channel; keep listening
            except ConnectionClosed:
                return
            kind = message.get("type")
            try:
                if kind == "encounter-open":
                    await self._serve_encounter(connection, message)
                elif kind == "shutdown":
                    checkpoint = self.request_shutdown(
                        persist=bool(message.get("persist", True))
                    )
                    await connection.send(
                        {"type": "shutdown-ok", "checkpoint": checkpoint}
                    )
                    return
                else:
                    reply = self._handle_directive(kind, message)
                    if reply is None:
                        reply = await self._handle_async_directive(
                            kind, message
                        )
                    await connection.send(reply)
            except (ConnectionClosed, asyncio.TimeoutError):
                raise
            except Exception as error:  # report, don't die mid-swarm
                await connection.send(
                    {
                        "type": "error",
                        "error": f"{type(error).__name__}: {error}",
                    }
                )

    # -- control directives ---------------------------------------------------

    def _handle_directive(
        self, kind: Optional[str], message: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        if kind == "status":
            return {"type": "status-ok", "document": self.status_document()}
        if kind == "assign":
            self._advance(message.get("time"))
            self.node.assign_addresses(message.get("addresses", ()))
            return {
                "type": "assign-ok",
                "deliveries": self._drain_deliveries(),
            }
        if kind == "inject":
            self._advance(message.get("time"))
            sent = self.node.send(
                message["source"],
                message["destination"],
                message.get("body"),
                now=self.sim_now,
            )
            return {
                "type": "inject-ok",
                "message_id": encode_item_id(sent.message_id),
                "deliveries": self._drain_deliveries(),
            }
        if kind == "checkpoint":
            # Persist without stopping: the orchestrator images a node's
            # durable state the instant before it kills the process, which
            # is what "only what reached disk survives the crash" means
            # for a continuously-checkpointing replica.
            path = self.checkpoint_path
            if path is None:
                return {
                    "type": "error",
                    "error": "no state_dir configured; cannot checkpoint",
                }
            path.parent.mkdir(parents=True, exist_ok=True)
            save_replica(
                self.node.replica,
                path,
                policy_state=self.node.policy.persistent_state(),
            )
            return {"type": "checkpoint-ok", "checkpoint": str(path)}
        if kind == "snapshot":
            return {
                "type": "snapshot-ok",
                "fixed_point": replica_fixed_point(self.node.replica),
                "held": sorted(
                    str(item.item_id)
                    for item in self.node.replica.stored_items()
                    if not item.deleted
                ),
                "evictions": self._evictions.count,
            }
        return None

    async def _handle_async_directive(
        self, kind: Optional[str], message: Dict[str, Any]
    ) -> Dict[str, Any]:
        if kind == "encounter":
            stats, deliveries = await self._coordinate_encounter(
                peer=message["peer"],
                address=message["address"],
                time=float(message.get("time", self.sim_now)),
                budget=message.get("budget"),
            )
            return {
                "type": "encounter-ok",
                "syncs": [record.to_dict() for record in stats],
                "deliveries": deliveries,
            }
        return {"type": "error", "error": f"unknown directive {kind!r}"}

    def status_document(self) -> Dict[str, Any]:
        experiment = self.config.experiment
        return run_summary_document(
            kind="serve",
            label=experiment.label(),
            scale=experiment.scale,
            summary={
                "node": self.name,
                "sim_now": self.sim_now,
                "stored_items": self.node.replica.stored_count,
                "delivered_messages": len(self.node.app.delivered_messages()),
                "encounters": self.encounters,
                "evictions": self._evictions.count,
                "protocol": PROTOCOL_VERSION,
            },
        )

    # -- encounters -----------------------------------------------------------

    def _knowledge_guard(self):
        """Snapshot knowledge; returns a closure asserting monotonicity."""
        before = self.node.replica.knowledge.copy()

        def check() -> None:
            if not self.node.replica.knowledge.dominates(before):
                raise SyncProtocolError(
                    f"version vector of {self.name!r} regressed during a "
                    f"live encounter"
                )

        return check

    async def _coordinate_encounter(
        self,
        peer: str,
        address: str,
        time: float,
        budget: Optional[int],
    ) -> Tuple[List[SyncStats], List[Dict[str, Any]]]:
        """Run one encounter as the initiating side (first sync's source).

        Mirrors :class:`~repro.replication.session.EncounterSession.run`
        with the second endpoint living in another process: both sides
        fire ``on_encounter_start`` once, sync 1 flows this → peer,
        sync 2 peer → this, and the peer's second-sync budget is what
        remains of the shared per-encounter cap.
        """
        self._advance(time)
        check = self._knowledge_guard()
        remote = ReplicaId(peer)
        endpoint = self.node.endpoint
        connection = await open_connection(
            address, read_timeout=self.config.read_timeout
        )
        try:
            await connection.send(
                {
                    "type": "hello",
                    "node": self.name,
                    "protocol": PROTOCOL_VERSION,
                }
            )
            hello = await connection.receive()
            if hello.get("type") != "hello" or hello.get("node") != peer:
                raise SyncProtocolError(
                    f"dialed {peer!r} at {address} but got {hello!r}"
                )
            self.node.policy.on_encounter_start(
                SyncContext(
                    local=endpoint.replica_id, remote=remote, now=time
                )
            )
            await connection.send(
                {
                    "type": "encounter-open",
                    "initiator": self.name,
                    "time": time,
                    "budget": budget,
                }
            )
            # Sync 1: we are the source; the peer opens with its request.
            opening = await self._expect(connection, "sync-request")
            request = decode_sync_request(opening["request"])
            source_session = SyncSession(
                source=endpoint,
                peer=remote,
                now=time,
                config=self.session_config,
            )
            batch, stats_a = source_session.build_response(
                request, max_items=budget
            )
            stamped = source_session.stamp(batch)
            await connection.send(
                {
                    "type": "sync-batch",
                    "frame": encode_batch_frame(stamped),
                    "stats": stats_a.to_dict(),
                }
            )
            ack = await self._expect(connection, "sync-ack")
            stats_a = SyncStats.from_dict(ack["stats"])
            # The ack proves the whole checksummed frame was applied
            # intact — the confirmed set is the full batch.
            source_session.confirm_sent(stamped)
            # Sync 2: roles swap; spend what is left of the budget.
            remaining = (
                max(0, budget - stats_a.sent_total)
                if budget is not None
                else None
            )
            target_session = SyncSession(
                target=endpoint,
                peer=remote,
                now=time,
                config=self.session_config,
            )
            await connection.send(
                {
                    "type": "sync-request",
                    "request": encode_sync_request(
                        target_session.build_request()
                    ),
                    "budget": remaining,
                }
            )
            delivery = await self._expect(connection, "sync-batch")
            stats_b = SyncStats.from_dict(delivery["stats"])
            stats_b = target_session.apply(
                decode_batch_frame(delivery["frame"]), stats=stats_b
            )
            await connection.send(
                {"type": "sync-ack", "stats": stats_b.to_dict()}
            )
            done = await self._expect(connection, "encounter-done")
        finally:
            await connection.close()
        check()
        self.encounters += 1
        deliveries = self._drain_deliveries() + list(
            done.get("deliveries", ())
        )
        return [stats_a, stats_b], deliveries

    async def _serve_encounter(
        self, connection: PeerConnection, opening: Dict[str, Any]
    ) -> None:
        """Run one encounter as the dialed side (first sync's target)."""
        time = float(opening.get("time", self.sim_now))
        self._advance(time)
        check = self._knowledge_guard()
        initiator = ReplicaId(str(opening["initiator"]))
        endpoint = self.node.endpoint
        self.node.policy.on_encounter_start(
            SyncContext(local=endpoint.replica_id, remote=initiator, now=time)
        )
        # Sync 1: we are the target.
        target_session = SyncSession(
            target=endpoint,
            peer=initiator,
            now=time,
            config=self.session_config,
        )
        await connection.send(
            {
                "type": "sync-request",
                "request": encode_sync_request(target_session.build_request()),
            }
        )
        delivery = await self._expect(connection, "sync-batch")
        stats_a = SyncStats.from_dict(delivery["stats"])
        stats_a = target_session.apply(
            decode_batch_frame(delivery["frame"]), stats=stats_a
        )
        await connection.send({"type": "sync-ack", "stats": stats_a.to_dict()})
        # Sync 2: we are the source, under the initiator's remaining budget.
        opening2 = await self._expect(connection, "sync-request")
        request = decode_sync_request(opening2["request"])
        source_session = SyncSession(
            source=endpoint,
            peer=initiator,
            now=time,
            config=self.session_config,
        )
        batch, stats_b = source_session.build_response(
            request, max_items=opening2.get("budget")
        )
        stamped = source_session.stamp(batch)
        await connection.send(
            {
                "type": "sync-batch",
                "frame": encode_batch_frame(stamped),
                "stats": stats_b.to_dict(),
            }
        )
        await self._expect(connection, "sync-ack")
        source_session.confirm_sent(stamped)
        check()
        self.encounters += 1
        await connection.send(
            {
                "type": "encounter-done",
                "deliveries": self._drain_deliveries(),
            }
        )

    async def _expect(
        self, connection: PeerConnection, expected: str
    ) -> Dict[str, Any]:
        message = await connection.receive()
        kind = message.get("type")
        if kind == "error":
            raise SyncProtocolError(
                f"peer reported: {message.get('error')!r}"
            )
        if kind != expected:
            raise SyncProtocolError(
                f"expected {expected!r} from peer, got {kind!r}"
            )
        return message


async def run_server(config: ServeConfig) -> None:
    """Build the node, bind the listener, and serve until shutdown.

    SIGINT/SIGTERM trigger the same graceful path as a ``shutdown``
    directive: checkpoint (when a state dir is configured), then stop.
    """
    server = NodeServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass  # platforms without signal support in the loop
    await server.serve_forever()
