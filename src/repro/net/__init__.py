"""Live deployment mode: replicas as real networked processes.

The discrete-event emulator squeezes a multi-day DTN deployment into one
process; this package runs the same protocol for real. Each replica is an
OS process (:mod:`repro.net.server`, started by ``repro serve``) speaking
length-prefixed JSON frames (:mod:`repro.net.framing`) over TCP or unix
sockets (:mod:`repro.net.connection`), and a swarm orchestrator
(:mod:`repro.net.swarm`, ``repro swarm``) spawns N of them and replays a
trace schedule (:mod:`repro.net.schedule`) as timed encounter directives
over a control channel.

The sync flow itself is the transport-agnostic
:class:`~repro.replication.session.SyncSession` — the same object the
emulator drives — which is what makes convergence parity
(:mod:`repro.experiments.parity`) a meaningful assertion rather than a
second implementation agreeing with itself.

See ``docs/deployment.md`` for usage and ``docs/protocol.md`` §9 for the
wire format.
"""

from .connection import (
    ConnectionClosed,
    PeerConnection,
    ReconnectDialer,
    format_address,
    open_connection,
    parse_address,
)
from .framing import MAX_FRAME_BYTES, FrameDecoder, FramingError, encode_frame
from .schedule import ScheduleStep, build_schedule
from .server import NodeServer, ServeConfig
from .swarm import SwarmConfig, SwarmReport, run_swarm

__all__ = [
    "ConnectionClosed",
    "FrameDecoder",
    "FramingError",
    "MAX_FRAME_BYTES",
    "NodeServer",
    "PeerConnection",
    "ReconnectDialer",
    "ScheduleStep",
    "ServeConfig",
    "SwarmConfig",
    "SwarmReport",
    "build_schedule",
    "encode_frame",
    "format_address",
    "open_connection",
    "parse_address",
    "run_swarm",
]
