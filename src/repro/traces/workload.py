"""Message-injection schedules (Section VI-A of the paper).

"Messages were injected during a two-hour period in the morning
(8:00am–10:00am) of each day, at two-minute intervals. Message injection is
stopped after the eighth day to allow for eventual convergence. A total of
490 messages were injected during each experiment."

:func:`build_injection_schedule` reproduces that: a target total of
messages spread over the first ``injection_days`` days of the trace at
fixed intervals starting at the window start, with (sender, recipient)
pairs drawn from an e-mail workload model. Senders are always users riding
a bus on the injection day (otherwise the message could not be submitted
to any replica); recipients are unrestricted, matching the paper — a
recipient not riding that day simply picks the message up on a later day.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Mapping, Sequence

from repro.emulation.encounters import SECONDS_PER_DAY
from repro.emulation.network import Injection

from .enron import EmailWorkloadModel
from .mapping import host_of, users_on_day


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the injection schedule; defaults match the paper.

    ``addressing`` selects how (sender, recipient) user pairs become
    injections:

    * ``"bus"`` (default, the paper's model): the message is authored at
      the bus carrying the sender that day and *addressed to the bus*
      carrying the recipient that day — "messages sent between users are
      routed through a network of vehicular nodes". Filters stay static.
    * ``"user"``: the message is addressed to the recipient's user
      address; delivery happens when it reaches whichever bus hosts the
      user at that moment (requires the emulator to apply the daily
      assignment schedule so filters track users). A richer model than
      the paper's, exercised by the library's dynamic-filter support.
    """

    target_total: int = 490
    injection_days: int = 8
    window_start_hour: float = 8.0
    interval_seconds: float = 120.0
    seed: int = 99
    addressing: str = "bus"

    def __post_init__(self) -> None:
        if self.target_total < 1:
            raise ValueError("target_total must be >= 1")
        if self.injection_days < 1:
            raise ValueError("injection_days must be >= 1")
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.addressing not in ("bus", "user"):
            raise ValueError("addressing must be 'bus' or 'user'")


def build_injection_schedule(
    model: EmailWorkloadModel,
    assignments: Mapping[int, Mapping[str, frozenset]],
    config: WorkloadConfig = WorkloadConfig(),
) -> List[Injection]:
    """Create the list of timed injections for an experiment.

    The total is dealt round-robin over the injection days that actually
    have riders; days without assignments are skipped (a bus-less day can
    carry no senders). Messages on one day are spaced ``interval_seconds``
    apart from the window start.
    """
    rng = random.Random(config.seed)
    candidate_days = [
        day
        for day in sorted(assignments)
        if day < config.injection_days and users_on_day(assignments, day)
    ]
    if not candidate_days:
        raise ValueError("no injection day has any assigned users")

    per_day = {day: config.target_total // len(candidate_days) for day in candidate_days}
    for day in candidate_days[: config.target_total % len(candidate_days)]:
        per_day[day] += 1

    injections: List[Injection] = []
    sequence = 0
    for day in candidate_days:
        riders = users_on_day(assignments, day)
        day_start = day * SECONDS_PER_DAY + config.window_start_hour * 3600.0
        for slot in range(per_day[day]):
            sender, recipient = model.draw_pair(rng)
            attempts = 0
            while sender not in riders:
                sender, recipient = model.draw_pair(rng)
                attempts += 1
                if attempts > 1000:
                    # Degenerate model/assignment combination: fall back to
                    # any rider as sender, keep the drawn recipient.
                    sender = sorted(riders)[0]
                    break
            if recipient == sender:
                others = [u for u in model.users if u != sender]
                recipient = rng.choice(others)
            time = day_start + slot * config.interval_seconds
            if config.addressing == "bus":
                source_bus = host_of(assignments, day, sender)
                destination_bus = host_of(assignments, day, recipient)
                assert source_bus is not None  # sender is a rider by choice
                if destination_bus is None:
                    # Recipient not riding today: address the bus that will
                    # next host them; fall back to their user address.
                    destination_bus = _next_host(assignments, day, recipient)
                injections.append(
                    Injection(
                        time=time,
                        source=source_bus,
                        destination=destination_bus or recipient,
                        body=f"msg-{sequence:04d}",
                    )
                )
            else:
                injections.append(
                    Injection(
                        time=time,
                        source=sender,
                        destination=recipient,
                        body=f"msg-{sequence:04d}",
                    )
                )
            sequence += 1
    return injections


def _next_host(
    assignments: Mapping[int, Mapping[str, frozenset]], day: int, user: str
) -> str | None:
    """The bus that hosts ``user`` on the earliest day ≥ ``day``."""
    for later_day in sorted(d for d in assignments if d >= day):
        bus = host_of(assignments, later_day, user)
        if bus is not None:
            return bus
    return None


def injection_days_used(injections: Sequence[Injection]) -> List[int]:
    """The distinct days on which the schedule injects, sorted."""
    return sorted({int(injection.time // SECONDS_PER_DAY) for injection in injections})
