"""Enron-style e-mail communication workloads.

The paper uses the UC Berkeley Enron e-mail dataset purely "to determine
which node sends messages to which other nodes" — a matrix of who-mails-
whom. Since the dataset cannot ship here, this module provides:

* :class:`EmailWorkloadModel` — an abstract source of (sender, recipient)
  pairs over a fixed user population;
* :func:`generate_enron_model` — a seeded synthetic model matching the
  well-known shape of the Enron corpus: heavy-tailed sender activity
  (a few prolific senders, a long tail), heavy-tailed recipient
  popularity, and strong contact locality (most of a sender's mail goes
  to a small personal contact set);
* :func:`parse_pairs_csv` — loads real data in ``sender,recipient`` CSV
  form into an :class:`EmpiricalEmailModel`, so the genuine dataset drops
  in unchanged.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


def user_name(index: int) -> str:
    return f"user{index:03d}"


class EmailWorkloadModel(ABC):
    """A source of (sender, recipient) message pairs."""

    @property
    @abstractmethod
    def users(self) -> Sequence[str]:
        """The full user population, deterministic order."""

    @abstractmethod
    def draw_pair(self, rng: random.Random) -> Tuple[str, str]:
        """Draw one (sender, recipient) pair; sender ≠ recipient."""


def _zipf_weights(count: int, exponent: float) -> List[float]:
    return [1.0 / (rank + 1) ** exponent for rank in range(count)]


@dataclass
class SyntheticEmailModel(EmailWorkloadModel):
    """Heavy-tailed who-mails-whom model.

    ``contact_sets[u]`` is the sender's personal address book; a draw picks
    the sender Zipf-weighted, then the recipient from the contact set with
    probability ``contact_locality`` and from global Zipf popularity
    otherwise.
    """

    _users: List[str]
    sender_weights: List[float]
    recipient_weights: List[float]
    contact_sets: Dict[str, List[str]]
    contact_locality: float = 0.8

    @property
    def users(self) -> Sequence[str]:
        return self._users

    def draw_pair(self, rng: random.Random) -> Tuple[str, str]:
        sender = rng.choices(self._users, weights=self.sender_weights, k=1)[0]
        contacts = self.contact_sets.get(sender, [])
        if contacts and rng.random() < self.contact_locality:
            recipient = rng.choice(contacts)
        else:
            recipient = rng.choices(
                self._users, weights=self.recipient_weights, k=1
            )[0]
        while recipient == sender:
            recipient = rng.choice(self._users)
        return sender, recipient


def generate_enron_model(
    n_users: int = 100,
    seed: int = 7,
    sender_exponent: float = 1.1,
    recipient_exponent: float = 0.9,
    mean_contacts: int = 6,
    contact_locality: float = 0.8,
) -> SyntheticEmailModel:
    """Build a synthetic Enron-like communication model."""
    if n_users < 2:
        raise ValueError("need at least two users")
    rng = random.Random(seed)
    users = [user_name(i) for i in range(n_users)]
    recipient_weights = _zipf_weights(n_users, recipient_exponent)
    contact_sets: Dict[str, List[str]] = {}
    for user in users:
        size = max(1, min(n_users - 1, int(rng.expovariate(1.0 / mean_contacts)) + 1))
        others = [u for u in users if u != user]
        contact_sets[user] = rng.sample(others, min(size, len(others)))
    return SyntheticEmailModel(
        _users=users,
        sender_weights=_zipf_weights(n_users, sender_exponent),
        recipient_weights=recipient_weights,
        contact_sets=contact_sets,
        contact_locality=contact_locality,
    )


@dataclass
class EmpiricalEmailModel(EmailWorkloadModel):
    """Draws uniformly from an observed list of (sender, recipient) pairs."""

    pairs: List[Tuple[str, str]]

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("empirical model needs at least one pair")
        for sender, recipient in self.pairs:
            if sender == recipient:
                raise ValueError(f"self-addressed pair: {sender}")

    @property
    def users(self) -> Sequence[str]:
        names = set()
        for sender, recipient in self.pairs:
            names.add(sender)
            names.add(recipient)
        return sorted(names)

    def draw_pair(self, rng: random.Random) -> Tuple[str, str]:
        return rng.choice(self.pairs)


def parse_pairs_csv(lines: Iterable[str]) -> EmpiricalEmailModel:
    """Parse ``sender,recipient`` CSV lines (header optional, # comments ok)."""
    pairs: List[Tuple[str, str]] = []
    for line_number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = [part.strip() for part in line.split(",")]
        if parts[:2] == ["sender", "recipient"]:
            continue
        if len(parts) < 2 or not parts[0] or not parts[1]:
            raise ValueError(f"line {line_number}: expected 'sender,recipient'")
        if parts[0] != parts[1]:
            pairs.append((parts[0], parts[1]))
    return EmpiricalEmailModel(pairs)
