"""Mobility and workload traces: synthetic generators + real-data parsers.

The paper's evaluation is driven by the UMass DieselNet bus trace and the
Enron e-mail dataset; neither can ship with this reproduction, so each has
a statistics-matched synthetic generator and a parser for the real thing
(see DESIGN.md's substitution table).
"""

from .dieselnet import (
    DieselNetConfig,
    bus_name,
    route_schedule,
    format_trace_text,
    generate_dieselnet_trace,
    load_trace,
    parse_trace_text,
    save_trace,
)
from .enron import (
    EmailWorkloadModel,
    EmpiricalEmailModel,
    SyntheticEmailModel,
    generate_enron_model,
    parse_pairs_csv,
    user_name,
)
from .mobility import (
    RandomWaypointConfig,
    generate_random_waypoint_trace,
)
from .mapping import AssignmentSchedule, assign_users_daily, host_of, users_on_day
from .workload import (
    WorkloadConfig,
    build_injection_schedule,
    injection_days_used,
)

__all__ = [
    "AssignmentSchedule",
    "DieselNetConfig",
    "EmailWorkloadModel",
    "EmpiricalEmailModel",
    "RandomWaypointConfig",
    "SyntheticEmailModel",
    "WorkloadConfig",
    "assign_users_daily",
    "build_injection_schedule",
    "bus_name",
    "route_schedule",
    "format_trace_text",
    "generate_dieselnet_trace",
    "generate_enron_model",
    "generate_random_waypoint_trace",
    "host_of",
    "injection_days_used",
    "load_trace",
    "parse_pairs_csv",
    "parse_trace_text",
    "save_trace",
    "user_name",
    "users_on_day",
]
