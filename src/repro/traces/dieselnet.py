"""DieselNet-style vehicular mobility traces.

The paper drives its emulation with the CRAWDAD ``umass/diesel`` trace:
encounters between buses of the UMass Amherst transit system. That dataset
is not redistributable here, so this module provides both:

* :func:`generate_dieselnet_trace` — a seeded synthetic generator that
  reproduces the trace's published statistics as the paper describes them:
  17 usable days, an average of 23 buses active per day, roughly 16,000
  encounters total, all encounters within the 08:00–23:00 service window,
  and route-structured meeting patterns (buses on the same route meet far
  more often than buses on unrelated routes; day-to-day schedules churn).
* :func:`parse_trace_text` / :func:`format_trace_text` — a plain text
  interchange format so real trace data can be dropped in unchanged:
  one encounter per line, ``<day> <seconds-into-day> <bus-a> <bus-b>``,
  ``#`` comments allowed.

The generator's route model: buses are spread over ``n_routes`` circular
routes; per active day, each unordered pair of active buses meets a
Poisson-distributed number of times whose mean depends on route
relationship (same route ≫ adjacent routes > otherwise), at uniformly
random times inside the service window. Everything derives from ``seed``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, TextIO, Tuple

from repro.emulation.encounters import SECONDS_PER_DAY, Encounter, EncounterTrace


@dataclass(frozen=True)
class DieselNetConfig:
    """Parameters of the synthetic DieselNet generator.

    Defaults were calibrated so that the full-scale trace reproduces both
    the paper's published trace statistics (≈23 active buses/day, 17 days,
    encounters inside an 08:00–23:00 service window, ~10⁴ encounters) and
    the *behavioural* anchors of the evaluation: direct sender→recipient
    delivery averages ≈70 hours with ≈30–40% within 12 hours, while
    epidemic flooding needs ≈4 days for its last deliveries. Three trace
    features produce that behaviour:

    * **route concentration** — same-route buses meet tens of times a day,
      cross-route buses rarely (``*_route_rate``);
    * **daily schedule churn** — each day a bus keeps its route only with
      probability ``route_stickiness``, which is what mixes the network
      across days (and what defeats PROPHET's history, per the paper's
      footnote);
    * **daily shift windows** — each active bus serves a window starting
      between ``shift_start_min/max``; a ``short_shift_probability``
      fraction of shifts are short (``short_shift_hours``), so some buses
      leave service before same-day flooding can reach them — the source
      of the multi-day delivery tails in Figure 7(b).

    ``scale`` shrinks the whole scenario proportionally for fast tests
    (0 < scale ≤ 1).
    """

    seed: int = 42
    n_buses: int = 35
    n_routes: int = 8
    days: int = 17
    buses_per_day: int = 23
    window_start_hour: float = 8.0
    window_end_hour: float = 23.0
    same_route_rate: float = 45.0
    adjacent_route_rate: float = 0.6
    other_route_rate: float = 0.8
    route_stickiness: float = 0.3
    shift_start_min: float = 8.0
    shift_start_max: float = 10.0
    short_shift_probability: float = 0.25
    short_shift_hours: Tuple[float, float] = (1.5, 4.0)
    long_shift_hours: Tuple[float, float] = (6.0, 14.0)
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        if self.buses_per_day > self.n_buses:
            raise ValueError("buses_per_day cannot exceed n_buses")
        if self.window_end_hour <= self.window_start_hour:
            raise ValueError("service window must be non-empty")

    @property
    def effective_days(self) -> int:
        return max(2, int(round(self.days * self.scale)))

    @property
    def effective_buses(self) -> int:
        return max(4, int(round(self.n_buses * self.scale)))

    @property
    def effective_buses_per_day(self) -> int:
        return max(3, min(self.effective_buses, int(round(self.buses_per_day * self.scale))))


def bus_name(index: int) -> str:
    return f"bus{index:02d}"


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler; exact, fine for the small means used here."""
    if mean <= 0:
        return 0
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def _route_relationship_rate(
    route_a: int, route_b: int, config: DieselNetConfig
) -> float:
    if route_a == route_b:
        return config.same_route_rate
    n = config.n_routes
    if min((route_a - route_b) % n, (route_b - route_a) % n) == 1:
        return config.adjacent_route_rate
    return config.other_route_rate


def route_schedule(config: DieselNetConfig = DieselNetConfig()) -> Dict[int, Dict[str, int]]:
    """The day → (bus → route) assignment the generator uses.

    Real DieselNet schedules churn: "a bus might have a different schedule
    on different days or might not be scheduled at all". Each day, every
    bus keeps its previous route with probability ``route_stickiness`` and
    is otherwise re-dealt a uniformly random route. This daily churn is the
    trace's cross-route mixing mechanism — within one day routes are
    near-isolated cliques, across days membership reshuffles — and the
    reason history-based prediction (PROPHET) struggles on this workload.
    """
    rng = random.Random(f"routes:{config.seed}")
    buses = [bus_name(i) for i in range(config.effective_buses)]
    schedule: Dict[int, Dict[str, int]] = {}
    current = {bus: index % config.n_routes for index, bus in enumerate(buses)}
    for day in range(config.effective_days):
        if day > 0:
            current = {
                bus: (
                    route
                    if rng.random() < config.route_stickiness
                    else rng.randrange(config.n_routes)
                )
                for bus, route in current.items()
            }
        schedule[day] = dict(current)
    return schedule


def _daily_shift(
    rng: random.Random, config: DieselNetConfig
) -> Tuple[float, float]:
    """One bus's service window for one day, in hours."""
    start = rng.uniform(config.shift_start_min, config.shift_start_max)
    if rng.random() < config.short_shift_probability:
        length = rng.uniform(*config.short_shift_hours)
    else:
        length = rng.uniform(*config.long_shift_hours)
    return start, min(config.window_end_hour, start + length)


def generate_dieselnet_trace(config: DieselNetConfig = DieselNetConfig()) -> EncounterTrace:
    """Generate a synthetic DieselNet-like encounter trace."""
    rng = random.Random(config.seed)
    buses = [bus_name(i) for i in range(config.effective_buses)]
    routes_by_day = route_schedule(config)
    full_window = config.window_end_hour - config.window_start_hour

    encounters: List[Encounter] = []
    for day in range(config.effective_days):
        active = sorted(rng.sample(buses, config.effective_buses_per_day))
        routes = routes_by_day[day]
        shifts = {bus: _daily_shift(rng, config) for bus in active}
        day_base = day * SECONDS_PER_DAY
        for i, bus_a in enumerate(active):
            for bus_b in active[i + 1 :]:
                overlap_start = max(shifts[bus_a][0], shifts[bus_b][0])
                overlap_end = min(shifts[bus_a][1], shifts[bus_b][1])
                if overlap_end <= overlap_start:
                    continue
                rate = _route_relationship_rate(
                    routes[bus_a], routes[bus_b], config
                )
                # Meeting opportunities are proportional to how long both
                # buses are simultaneously in service.
                rate *= (overlap_end - overlap_start) / full_window
                meetings = _poisson(rng, rate * config.scale)
                for _ in range(meetings):
                    moment = day_base + rng.uniform(
                        overlap_start * 3600.0, overlap_end * 3600.0
                    )
                    encounters.append(Encounter(moment, bus_a, bus_b))
    return EncounterTrace(encounters)


# -- metro mode --------------------------------------------------------------------


@dataclass(frozen=True)
class MetroConfig:
    """Parameters of the city-scale "metro-DieselNet" generator.

    The classic generator walks every pair of active buses per day —
    O(buses²·days) — which is exactly right for a 35-bus campus fleet
    and hopeless for a metropolitan one. The metro model restructures
    the same route intuition for scale:

    * buses belong to **fixed routes** (metro fleets are dedicated;
      membership does not churn daily the way the campus schedule does),
      partitioned contiguously so ``n_buses / n_routes`` buses share a
      route;
    * each day a ``duty_cycle`` fraction of every route's fleet is in
      service, and in-service buses on the same route meet
      ``meetings_per_bus_per_day`` times on average — sampled as one
      Poisson count per route per day with uniformly chosen bus pairs,
      so generation is O(encounters), not O(pairs);
    * adjacent routes (a ring, like the classic model) exchange
      ``interchange_rate`` expected meetings per day at transfer
      stations. With ``interchange_rate=0`` routes are disjoint
      connected components — the shape the sharded columnar runner
      partitions across workers.

    Everything derives from ``seed``; the same config always yields a
    byte-identical trace.
    """

    seed: int = 42
    n_buses: int = 2000
    n_routes: int = 40
    days: int = 10
    window_start_hour: float = 6.0
    window_end_hour: float = 24.0
    meetings_per_bus_per_day: float = 10.0
    interchange_rate: float = 4.0
    duty_cycle: float = 0.9

    def __post_init__(self) -> None:
        if self.n_routes < 1:
            raise ValueError("n_routes must be >= 1")
        if self.n_buses < 2 * self.n_routes:
            raise ValueError("need at least 2 buses per route")
        if self.days < 1:
            raise ValueError("days must be >= 1")
        if self.window_end_hour <= self.window_start_hour:
            raise ValueError("service window must be non-empty")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty_cycle must be in (0, 1]")
        if self.meetings_per_bus_per_day < 0 or self.interchange_rate < 0:
            raise ValueError("encounter rates must be >= 0")


def metro_bus_name(index: int) -> str:
    """Fixed-width names so lexicographic host order is numeric order."""
    return f"bus{index:06d}"


def metro_route_members(config: MetroConfig) -> List[List[str]]:
    """Route → member buses: contiguous partition, sizes differing by ≤1.

    This is the metro analogue of :func:`route_schedule`: membership is
    static (scaling the fleet scales every route proportionally), and
    the per-day variation comes from duty-cycle sampling in
    :func:`generate_metro_trace` instead of schedule churn.
    """
    routes: List[List[str]] = []
    base, extra = divmod(config.n_buses, config.n_routes)
    cursor = 0
    for route in range(config.n_routes):
        size = base + (1 if route < extra else 0)
        routes.append([metro_bus_name(cursor + i) for i in range(size)])
        cursor += size
    return routes


def _poisson_capped(rng: random.Random, mean: float) -> int:
    """Poisson sampler safe for large means.

    Knuth's product method underflows ``exp(-mean)`` past ~700; Poisson
    additivity lets us draw big means as a sum of capped draws exactly.
    """
    count = 0
    while mean > 500.0:
        count += _poisson(rng, 500.0)
        mean -= 500.0
    return count + _poisson(rng, mean)


def generate_metro_trace(config: MetroConfig = MetroConfig()) -> EncounterTrace:
    """Generate a city-scale route-structured trace in O(encounters).

    Draw order (one rng, so the trace is a pure function of the config):
    per day, first every route's duty sample, then every route's
    in-route meeting count and pairs, then every adjacent route pair's
    interchange meetings.
    """
    rng = random.Random(f"metro:{config.seed}")
    routes = metro_route_members(config)
    window_start = config.window_start_hour * 3600.0
    window_end = config.window_end_hour * 3600.0

    encounters: List[Encounter] = []
    for day in range(config.days):
        day_base = day * SECONDS_PER_DAY
        active_by_route: List[List[str]] = []
        for members in routes:
            k = max(2, int(round(config.duty_cycle * len(members))))
            k = min(k, len(members))
            active_by_route.append(sorted(rng.sample(members, k)))
        for active in active_by_route:
            k = len(active)
            meetings = _poisson_capped(
                rng, config.meetings_per_bus_per_day * k / 2.0
            )
            for _ in range(meetings):
                a_index = rng.randrange(k)
                b_index = rng.randrange(k - 1)
                if b_index >= a_index:
                    b_index += 1
                moment = day_base + rng.uniform(window_start, window_end)
                encounters.append(
                    Encounter(moment, active[a_index], active[b_index])
                )
        if config.interchange_rate > 0 and config.n_routes > 1:
            for route in range(config.n_routes):
                if config.n_routes == 2 and route == 1:
                    break  # two routes share one adjacency, not two
                other = (route + 1) % config.n_routes
                here = active_by_route[route]
                there = active_by_route[other]
                meetings = _poisson_capped(rng, config.interchange_rate)
                for _ in range(meetings):
                    moment = day_base + rng.uniform(window_start, window_end)
                    encounters.append(
                        Encounter(
                            moment,
                            here[rng.randrange(len(here))],
                            there[rng.randrange(len(there))],
                        )
                    )
    return EncounterTrace(encounters)


# -- interchange format ------------------------------------------------------------


def parse_trace_text(lines: Iterable[str]) -> EncounterTrace:
    """Parse the text interchange format into a trace.

    Each non-blank, non-comment line is
    ``<day> <seconds> <bus-a> <bus-b> [<duration-seconds>]``
    where ``seconds`` is seconds into the day and the optional fifth
    column records the radio-contact duration. Malformed lines raise with
    the offending line number.
    """
    encounters: List[Encounter] = []
    for line_number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (4, 5):
            raise ValueError(
                f"line {line_number}: expected 'day seconds busA busB "
                f"[duration]', got {raw!r}"
            )
        day_text, seconds_text, bus_a, bus_b = parts[:4]
        try:
            day = int(day_text)
            seconds = float(seconds_text)
            duration = float(parts[4]) if len(parts) == 5 else 0.0
        except ValueError as error:
            raise ValueError(f"line {line_number}: {error}") from None
        if not 0 <= seconds < SECONDS_PER_DAY:
            raise ValueError(
                f"line {line_number}: seconds-into-day out of range: {seconds}"
            )
        encounters.append(
            Encounter(
                day * SECONDS_PER_DAY + seconds, bus_a, bus_b, duration=duration
            )
        )
    return EncounterTrace(encounters)


def format_trace_text(trace: EncounterTrace) -> Iterator[str]:
    """Render a trace back into the interchange format, one line at a time."""
    yield "# day seconds-into-day bus-a bus-b [duration-seconds]"
    for encounter in trace:
        seconds = encounter.time - encounter.day * SECONDS_PER_DAY
        line = f"{encounter.day} {seconds:.1f} {encounter.a} {encounter.b}"
        if encounter.duration > 0:
            line += f" {encounter.duration:.1f}"
        yield line


def load_trace(stream: TextIO) -> EncounterTrace:
    """Load a trace from an open text stream in the interchange format."""
    return parse_trace_text(stream)


def save_trace(trace: EncounterTrace, stream: TextIO) -> None:
    """Write a trace to an open text stream in the interchange format."""
    for line in format_trace_text(trace):
        stream.write(line + "\n")
