"""Daily user → bus assignment (Section VI-A of the paper).

"For each day in our experimental run, the experiment uniformly distributes
e-mail users to the buses scheduled on that day." This module implements
that distribution deterministically: for every day of the trace, the user
population is shuffled with a day-specific seeded RNG and dealt round-robin
over the buses active that day, so each bus hosts ⌈U/B⌉ or ⌊U/B⌋ users.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Mapping, Sequence

from repro.emulation.encounters import EncounterTrace

AssignmentSchedule = Dict[int, Dict[str, FrozenSet[str]]]


def assign_users_daily(
    trace: EncounterTrace,
    users: Sequence[str],
    seed: int = 0,
) -> AssignmentSchedule:
    """Build the day → bus → hosted-users schedule for a whole trace.

    Days with no active buses get no entry (no one rides). The same
    ``(seed, day)`` always produces the same assignment regardless of which
    other days exist, so sub-traces stay consistent with full traces.
    """
    schedule: AssignmentSchedule = {}
    active_by_day = trace.active_hosts_by_day()
    for day in sorted(active_by_day):
        buses = sorted(active_by_day[day])
        if not buses:
            continue
        rng = random.Random(f"{seed}:{day}")
        shuffled = list(users)
        rng.shuffle(shuffled)
        per_bus: Dict[str, set] = {bus: set() for bus in buses}
        for index, user in enumerate(shuffled):
            per_bus[buses[index % len(buses)]].add(user)
        schedule[day] = {bus: frozenset(assigned) for bus, assigned in per_bus.items()}
    return schedule


def users_on_day(
    schedule: Mapping[int, Mapping[str, FrozenSet[str]]], day: int
) -> FrozenSet[str]:
    """Every user riding some bus on ``day``."""
    day_map = schedule.get(day, {})
    riders: set = set()
    for assigned in day_map.values():
        riders |= assigned
    return frozenset(riders)


def host_of(
    schedule: Mapping[int, Mapping[str, FrozenSet[str]]], day: int, user: str
) -> str | None:
    """The bus hosting ``user`` on ``day`` (None if not riding)."""
    for bus, assigned in schedule.get(day, {}).items():
        if user in assigned:
            return bus
    return None
