"""Random-waypoint mobility: a second encounter-trace substrate.

DieselNet-style traces are schedule-driven; the other standard source of
DTN contact processes is *positional* mobility simulation (the approach
of tools like the ONE simulator): nodes move in a 2-D area, and an
encounter happens whenever two nodes come within radio range.

This module implements the classic **random waypoint** model — each node
repeatedly picks a uniform random destination in the area, walks there at
a uniform random speed, and pauses — plus the sweep that converts
positions into an :class:`~repro.emulation.encounters.EncounterTrace`
(one encounter per contact *onset*, stamped with the contact duration),
so every experiment, policy, and analysis in this repository runs
unchanged on positional mobility.

Everything is pure Python, seeded, and deterministic.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.emulation.encounters import Encounter, EncounterTrace


@dataclass(frozen=True)
class RandomWaypointConfig:
    """Parameters of the random-waypoint world.

    Defaults give a sparse pedestrian scenario: 20 nodes with 50 m radios
    in a 1 km square for 6 simulated hours — connectivity is intermittent,
    which is the regime DTN routing exists for.
    """

    seed: int = 1
    n_nodes: int = 20
    area_width: float = 1000.0
    area_height: float = 1000.0
    radio_range: float = 50.0
    min_speed: float = 0.5
    max_speed: float = 2.0
    pause_min: float = 0.0
    pause_max: float = 120.0
    duration: float = 6 * 3600.0
    time_step: float = 1.0

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.radio_range <= 0:
            raise ValueError("radio_range must be positive")
        if not 0 < self.min_speed <= self.max_speed:
            raise ValueError("need 0 < min_speed <= max_speed")
        if self.time_step <= 0 or self.duration <= 0:
            raise ValueError("duration and time_step must be positive")


class _Walker:
    """One node's random-waypoint state machine."""

    def __init__(self, rng: random.Random, config: RandomWaypointConfig) -> None:
        self._rng = rng
        self._config = config
        self.x = rng.uniform(0.0, config.area_width)
        self.y = rng.uniform(0.0, config.area_height)
        self._pause_left = 0.0
        self._pick_waypoint()

    def _pick_waypoint(self) -> None:
        self._target = (
            self._rng.uniform(0.0, self._config.area_width),
            self._rng.uniform(0.0, self._config.area_height),
        )
        self._speed = self._rng.uniform(
            self._config.min_speed, self._config.max_speed
        )

    def step(self, dt: float) -> None:
        if self._pause_left > 0.0:
            self._pause_left = max(0.0, self._pause_left - dt)
            return
        dx = self._target[0] - self.x
        dy = self._target[1] - self.y
        distance = math.hypot(dx, dy)
        travel = self._speed * dt
        if travel >= distance:
            self.x, self.y = self._target
            self._pause_left = self._rng.uniform(
                self._config.pause_min, self._config.pause_max
            )
            self._pick_waypoint()
        else:
            self.x += dx / distance * travel
            self.y += dy / distance * travel


def node_name(index: int) -> str:
    return f"walker{index:02d}"


def generate_random_waypoint_trace(
    config: RandomWaypointConfig = RandomWaypointConfig(),
) -> EncounterTrace:
    """Simulate movement and extract the contact trace.

    One :class:`Encounter` is emitted per contact **onset** (the step at
    which a pair first comes within radio range), with ``duration`` set
    to how long the contact then lasted. Pairs in range at time 0 count
    as contacts starting at 0.
    """
    rng = random.Random(config.seed)
    walkers = [_Walker(rng, config) for _ in range(config.n_nodes)]
    names = [node_name(i) for i in range(config.n_nodes)]
    range_squared = config.radio_range**2

    in_contact_since: Dict[Tuple[int, int], float] = {}
    encounters: List[Encounter] = []
    steps = int(config.duration / config.time_step)

    def close(i: int, j: int) -> bool:
        dx = walkers[i].x - walkers[j].x
        dy = walkers[i].y - walkers[j].y
        return dx * dx + dy * dy <= range_squared

    def flush(pair: Tuple[int, int], end_time: float) -> None:
        start = in_contact_since.pop(pair)
        encounters.append(
            Encounter(
                start,
                names[pair[0]],
                names[pair[1]],
                duration=max(config.time_step, end_time - start),
            )
        )

    now = 0.0
    for i in range(config.n_nodes):
        for j in range(i + 1, config.n_nodes):
            if close(i, j):
                in_contact_since[(i, j)] = 0.0
    for _ in range(steps):
        now += config.time_step
        for walker in walkers:
            walker.step(config.time_step)
        for i in range(config.n_nodes):
            for j in range(i + 1, config.n_nodes):
                pair = (i, j)
                currently_close = close(i, j)
                was_close = pair in in_contact_since
                if currently_close and not was_close:
                    in_contact_since[pair] = now
                elif not currently_close and was_close:
                    flush(pair, now)
    for pair in list(in_contact_since):
        flush(pair, now)
    return EncounterTrace(encounters)
