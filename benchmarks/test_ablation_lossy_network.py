"""Ablation: delivery under random sync failures.

Real DieselNet radio contacts often failed to complete a transfer; the
emulator's ``sync_failure_probability`` models that. Because the
substrate's knowledge updates only on receipt, failures cost time but
never correctness — flooding policies degrade gracefully while the
direct-only baseline, with far fewer useful contacts to begin with,
suffers proportionally more.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_series_table
from repro.experiments.scenario import build_scenario

HOURS = 3600.0
LOSS_RATES = (0.0, 0.25, 0.5)


def run_with_loss(inputs, policy, loss):
    scenario = build_scenario(
        ExperimentConfig(scale=inputs.scale, policy=policy),
        trace=inputs.trace,
        model=inputs.model,
    )
    scenario.emulator.sync_failure_probability = loss
    metrics = scenario.emulator.run()
    return metrics, scenario.emulator.failed_encounters


def test_ablation_sync_failures(benchmark, inputs, report):
    def sweep():
        series = {}
        failures = {}
        for policy in ("cimbiosys", "epidemic"):
            points = []
            for loss in LOSS_RATES:
                metrics, failed = run_with_loss(inputs, policy, loss)
                points.append((loss, 100.0 * metrics.delivery_ratio))
                failures[(policy, loss)] = failed
            series[policy] = points
        return series, failures

    series, failures = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ablation_loss",
        render_series_table(
            "Ablation: % delivered (whole run) vs sync-failure probability",
            "loss",
            series,
        ),
    )

    epidemic = dict(series["epidemic"])
    baseline = dict(series["cimbiosys"])

    # No failures injected at loss 0; failures appear and scale with loss.
    assert failures[("epidemic", 0.0)] == 0
    assert failures[("epidemic", 0.5)] > failures[("epidemic", 0.25)] > 0

    # Loss can only hurt, and flooding tolerates it better than direct.
    assert epidemic[0.5] <= epidemic[0.0] + 1e-9
    assert baseline[0.5] <= baseline[0.0] + 1e-9
    assert epidemic[0.5] >= baseline[0.5]
    # Flooding's redundancy keeps it delivering most messages at 50% loss.
    assert epidemic[0.5] >= 0.7 * epidemic[0.0]
