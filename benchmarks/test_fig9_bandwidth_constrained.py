"""Figure 9 — delay CDF under the bandwidth constraint.

The paper emulates scarce bandwidth by allowing only ONE message exchange
per encounter. Anchors: delays grow for everyone (the network becomes the
bottleneck); the DTN routing policies still deliver more than unmodified
Cimbiosys over the run; total transmissions are bounded by the encounter
count.
"""

from repro.dtn.registry import PAPER_POLICY_ORDER
from repro.experiments.figures import figure_7, figure_9, policy_sweep
from repro.experiments.report import render_series_table

BANDWIDTH_LIMIT = 1


def test_figure_9_bandwidth_constrained(benchmark, inputs, report):
    curves = benchmark.pedantic(
        figure_9,
        args=(inputs, PAPER_POLICY_ORDER, BANDWIDTH_LIMIT),
        rounds=1,
        iterations=1,
    )
    report(
        "fig9",
        render_series_table(
            "Figure 9: % delivered vs delay (hours), bandwidth-constrained "
            "(1 message per encounter)",
            "hours",
            curves,
        ),
    )

    unconstrained = figure_7(inputs, PAPER_POLICY_ORDER)
    constrained_results = policy_sweep(
        inputs, PAPER_POLICY_ORDER, bandwidth_limit=BANDWIDTH_LIMIT
    )

    for policy in PAPER_POLICY_ORDER:
        constrained_12h = dict(curves[policy])[12.0]
        free_12h = dict(unconstrained[policy]["hours"])[12.0]
        # The cap can only slow things down.
        assert constrained_12h <= free_12h + 1e-9

        # Hard bandwidth accounting: at most one transfer per encounter.
        metrics = constrained_results[policy].metrics
        assert metrics.transmissions <= metrics.encounters

    # DTN routing still delivers more than the baseline over the full run.
    baseline_ratio = constrained_results["cimbiosys"].metrics.delivery_ratio
    for policy in ("spray", "epidemic", "maxprop", "prophet"):
        assert (
            constrained_results[policy].metrics.delivery_ratio
            >= baseline_ratio - 0.02
        )

    # Under bandwidth pressure MaxProp's ordering pays: it does at least
    # as well as unordered flooding on delivery.
    assert (
        constrained_results["maxprop"].metrics.delivery_ratio
        >= constrained_results["epidemic"].metrics.delivery_ratio - 0.02
    )
