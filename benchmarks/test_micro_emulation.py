"""Microbenchmarks of the emulation machinery itself.

Throughput numbers for the discrete-event engine and the end-to-end
encounter pipeline — useful for sizing larger-than-paper scenarios.
"""

from repro.dtn import EpidemicPolicy
from repro.emulation.encounters import Encounter, EncounterTrace
from repro.emulation.engine import SimulationEngine
from repro.emulation.network import Emulator, Injection
from repro.emulation.node import EmulatedNode


def test_engine_event_throughput(benchmark):
    """Raw scheduler throughput: schedule + run 10k trivial events."""

    def run_events():
        engine = SimulationEngine()
        for i in range(10_000):
            engine.schedule(float(i), lambda: None)
        engine.run()
        return engine.events_processed

    assert benchmark(run_events) == 10_000


def test_encounter_pipeline_throughput(benchmark):
    """Full emulation rate: 4 nodes, 200 encounters, 40 flooded messages."""

    def build_and_run():
        names = [f"n{i}" for i in range(4)]
        nodes = {name: EmulatedNode(name, EpidemicPolicy()) for name in names}
        encounters = [
            Encounter(
                9 * 3600.0 + i * 60.0,
                names[i % 4],
                names[(i + 1 + i % 3) % 4],
            )
            for i in range(200)
            if names[i % 4] != names[(i + 1 + i % 3) % 4]
        ]
        injections = [
            Injection(9 * 3600.0 + i * 10.0, names[i % 4], names[(i + 2) % 4], i)
            for i in range(40)
        ]
        emulator = Emulator(
            EncounterTrace(encounters), nodes, injections=injections
        )
        metrics = emulator.run()
        return metrics.delivered

    delivered = benchmark(build_and_run)
    assert delivered == 40  # dense mixing delivers everything
