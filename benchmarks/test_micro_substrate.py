"""Microbenchmarks of the replication substrate itself.

Not a paper figure — these quantify the substrate costs the paper argues
are low: knowledge (version-vector) operations that scale with replica
count rather than item count, and pairwise sync throughput.
"""

import random

from repro.dtn import EpidemicPolicy
from repro.replication import (
    AddressFilter,
    Replica,
    ReplicaId,
    SyncEndpoint,
    VersionVector,
    perform_sync,
)
from repro.replication.ids import Version


def test_version_vector_add_and_contains(benchmark):
    replicas = [ReplicaId(f"r{i}") for i in range(35)]
    rng = random.Random(1)
    versions = [
        Version(rng.choice(replicas), rng.randint(1, 500)) for _ in range(2000)
    ]

    def build_and_probe():
        vector = VersionVector.empty()
        for version in versions:
            vector.add(version)
        hits = sum(1 for version in versions if vector.contains(version))
        return hits

    assert benchmark(build_and_probe) == len(versions)


def test_version_vector_merge(benchmark):
    rng = random.Random(2)
    replicas = [ReplicaId(f"r{i}") for i in range(35)]

    def make_vector():
        return VersionVector.from_versions(
            Version(rng.choice(replicas), rng.randint(1, 300))
            for _ in range(400)
        )

    left, right = make_vector(), make_vector()
    merged = benchmark(lambda: left.merged(right))
    assert merged.dominates(left) and merged.dominates(right)


def test_sync_throughput_500_items(benchmark):
    """One full sync moving 500 fresh messages between two replicas."""

    def run_sync():
        source = Replica(ReplicaId("src"), AddressFilter("src"))
        target = Replica(ReplicaId("dst"), AddressFilter("dst"))
        for i in range(500):
            source.create_item(f"m{i}", {"destination": "dst"})
        stats = perform_sync(SyncEndpoint(source), SyncEndpoint(target))
        return stats.sent_total

    assert benchmark(run_sync) == 500


def test_no_op_sync_after_convergence(benchmark):
    """Re-syncing converged replicas is cheap: the knowledge exchange
    filters everything out without transferring a single item."""
    source = Replica(ReplicaId("src"), AddressFilter("src"))
    target = Replica(ReplicaId("dst"), AddressFilter("dst"))
    for i in range(500):
        source.create_item(f"m{i}", {"destination": "dst"})
    perform_sync(SyncEndpoint(source), SyncEndpoint(target))

    stats = benchmark(
        lambda: perform_sync(SyncEndpoint(source), SyncEndpoint(target))
    )
    assert stats.sent_total == 0


def test_epidemic_policy_decision_rate(benchmark):
    """Per-item forwarding decisions are the hot loop of every emulation."""
    replica = Replica(ReplicaId("a"), AddressFilter("a"))
    policy = EpidemicPolicy().bind(replica)
    items = [
        replica.create_item(f"m{i}", {"destination": f"d{i % 7}"})
        for i in range(300)
    ]
    target_filter = AddressFilter("b")
    from repro.replication import SyncContext

    context = SyncContext(ReplicaId("a"), ReplicaId("b"), 0.0)

    def decide_all():
        return sum(
            1
            for item in items
            if policy.to_send(
                replica.get_item(item.item_id), target_filter, context
            )
            is not None
        )

    assert benchmark(decide_all) == 300
