"""Figure 5 — mean message delay vs addresses-in-filter (random/selected).

Paper anchors: the k = 0 baseline averages about 70 hours; a single
well-chosen relay address roughly halves that; delay keeps falling as k
grows; and choosing the most-encountered hosts ("selected") beats random
choice at small k, with the advantage vanishing as k approaches the
network size.
"""

from repro.experiments.figures import figure_5
from repro.experiments.report import render_series_table

K_VALUES = (0, 1, 2, 4, 8, 16)


def test_figure_5_multiaddress_mean_delay(benchmark, inputs, report, scale):
    series = benchmark.pedantic(
        figure_5, args=(inputs, K_VALUES), rounds=1, iterations=1
    )
    report(
        "fig5",
        render_series_table(
            "Figure 5: average message delay (hours) vs addresses in filter",
            "k",
            series,
        ),
    )

    random_delay = dict(series["random"])
    selected_delay = dict(series["selected"])

    # Multi-address filters accelerate delivery monotonically-ish: the
    # largest k always beats the baseline by a wide margin.
    assert selected_delay[16] < selected_delay[0]
    assert random_delay[16] < random_delay[0]

    # More relay addresses never hurt on the way up the curve.
    assert selected_delay[16] <= selected_delay[1]

    if scale >= 0.9:
        # Full-scale anchors. A single selected address gives a measurable
        # cut (the paper reports ~50% on the real trace, whose meeting
        # opportunities are far more concentrated on the top partner than
        # our synthetic trace's — see EXPERIMENTS.md); by k = 8 the delay
        # has at least halved, matching the paper's curve.
        assert selected_delay[1] < 0.95 * selected_delay[0]
        assert selected_delay[8] < 0.5 * selected_delay[0]
        # Selected ≤ random for small k (trace-oracle advantage).
        assert selected_delay[1] <= random_delay[1] * 1.05

    # …and the two strategies converge for large k (both → flooding).
    gap_small = abs(selected_delay[1] - random_delay[1])
    gap_large = abs(selected_delay[16] - random_delay[16])
    assert gap_large <= max(gap_small, 0.25 * selected_delay[0])
