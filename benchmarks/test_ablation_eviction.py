"""Ablation: relay-buffer eviction strategies under the Figure 10 cap.

The paper uses FIFO; this sweep re-runs the storage-constrained scenario
with random and oldest-created eviction to show how much the victim rule
matters at a 2-message relay buffer.
"""

from dataclasses import replace

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_series_table
from repro.experiments.runner import run_experiment

HOURS = 3600.0
STRATEGIES = ("fifo", "random", "oldest-created")


def test_ablation_eviction_strategies(benchmark, inputs, report):
    def sweep():
        rows = {}
        for strategy in STRATEGIES:
            config = replace(
                ExperimentConfig(
                    scale=inputs.scale, policy="epidemic", storage_limit=2
                ),
                eviction_strategy=strategy,
            )
            result = run_experiment(
                config, trace=inputs.trace, model=inputs.model
            )
            rows[strategy] = result.metrics
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = {
        strategy: [
            (12.0, 100.0 * metrics.fraction_delivered_within(12 * HOURS)),
            (24.0, 100.0 * metrics.fraction_delivered_within(24 * HOURS)),
        ]
        for strategy, metrics in rows.items()
    }
    report(
        "ablation_eviction",
        render_series_table(
            "Ablation: epidemic under 2-message relay cap, by eviction rule "
            "(% delivered within N hours)",
            "hours",
            series,
        ),
    )

    for strategy, metrics in rows.items():
        # Every rule keeps the buffer legal and the system delivering.
        assert metrics.delivered > 0
        assert metrics.evictions > 0
    # The rules genuinely differ in what they drop (traffic mixes differ),
    # even when headline delivery lands close together.
    transmissions = {s: rows[s].transmissions for s in STRATEGIES}
    assert len(set(transmissions.values())) > 1
