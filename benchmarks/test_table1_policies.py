"""Table I — behavioural verification of the four policy rows.

Rather than restating the table, this benchmark *executes* each row: it
checks that the implemented policy maintains exactly the routing state the
row lists, adds exactly the described payload to sync requests, and
forwards by exactly the described rule.
"""

from repro.dtn import (
    EpidemicPolicy,
    MaxPropPolicy,
    MaxPropRequest,
    ProphetPolicy,
    ProphetRequest,
    SprayAndWaitPolicy,
)
from repro.dtn.epidemic import TTL_ATTRIBUTE
from repro.dtn.spray_wait import COPIES_ATTRIBUTE
from repro.replication import (
    AddressFilter,
    Replica,
    ReplicaId,
    SyncContext,
)
from repro.experiments.report import render_table_1


def ctx():
    return SyncContext(ReplicaId("a"), ReplicaId("b"), 0.0)


def bound(policy_cls, name="a", **kwargs):
    replica = Replica(ReplicaId(name), AddressFilter(name))
    return replica, policy_cls(**kwargs).bind(replica, lambda: frozenset({name}))


def verify_epidemic_row():
    replica, policy = bound(EpidemicPolicy)
    item = replica.create_item("m", {"destination": "z"})
    # Routing state: TTL per message (host-local attribute).
    assert policy.to_send(item, AddressFilter("b"), ctx()) is not None
    assert replica.get_item(item.item_id).local(TTL_ATTRIBUTE) == 10
    # Added to sync request: nothing.
    assert policy.generate_req(ctx()) is None
    # Forwarding rule: when TTL > 0.
    replica.adjust_local(item.with_local(**{TTL_ATTRIBUTE: 0}))
    assert policy.to_send(
        replica.get_item(item.item_id), AddressFilter("b"), ctx()
    ) is None


def verify_spray_row():
    replica, policy = bound(SprayAndWaitPolicy)
    item = replica.create_item("m", {"destination": "z"})
    # Routing state: copies per message; request payload: nothing.
    assert policy.generate_req(ctx()) is None
    assert policy.to_send(item, AddressFilter("b"), ctx()) is not None
    assert replica.get_item(item.item_id).local(COPIES_ATTRIBUTE) == 8
    # Forwarding rule: when copies >= 2.
    replica.adjust_local(item.with_local(**{COPIES_ATTRIBUTE: 1}))
    assert policy.to_send(
        replica.get_item(item.item_id), AddressFilter("b"), ctx()
    ) is None


def verify_prophet_row():
    replica, policy = bound(ProphetPolicy)
    # Routing state: P[d] vector; added to request: the target's P vector.
    request = policy.generate_req(ctx())
    assert isinstance(request, ProphetRequest)
    assert request.predictabilities == policy.predictabilities
    # Forwarding rule: dest messages when target P[dest] > source P[dest].
    item = replica.create_item("m", {"destination": "dst"})
    policy.process_req(
        ProphetRequest(
            addresses=frozenset({"b"}), predictabilities={"dst": 0.9}
        ),
        ctx(),
    )
    assert policy.to_send(item, AddressFilter("b"), ctx()) is not None
    policy.predictabilities["dst"] = 0.99
    assert policy.to_send(item, AddressFilter("b"), ctx()) is None


def verify_maxprop_row():
    replica, policy = bound(MaxPropPolicy)
    # Routing state + request payload: meeting probabilities for all pairs.
    policy.process_req(
        MaxPropRequest(
            node="b",
            addresses=frozenset({"b"}),
            vectors={"b": {"c": 1.0}},
        ),
        ctx(),
    )
    request = policy.generate_req(ctx())
    assert "a" in request.vectors and "b" in request.vectors
    # Forwarding rule: all messages, priority-ordered.
    item = replica.create_item("m", {"destination": "anywhere"})
    assert policy.to_send(item, AddressFilter("b"), ctx()) is not None


def test_table_1_rows_hold_behaviourally(benchmark, report):
    def run_all():
        verify_epidemic_row()
        verify_spray_row()
        verify_prophet_row()
        verify_maxprop_row()
        return True

    assert benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("table1", render_table_1())
