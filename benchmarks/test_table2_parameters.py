"""Table II — the evaluation's protocol parameters.

Verifies that the registry instantiates every policy with exactly the
parameter values printed in the paper, and that those values actually land
on the policy objects the experiments run.
"""

from repro.dtn import get_policy
from repro.experiments.report import render_table_2
from repro.experiments.tables import TABLE_II, TABLE_II_PAPER_VALUES


def test_table_2_parameters(benchmark, report):
    def verify():
        assert TABLE_II == TABLE_II_PAPER_VALUES
        assert get_policy("epidemic").initial_ttl == 10
        assert get_policy("spray").initial_copies == 8
        prophet = get_policy("prophet")
        assert (prophet.p_init, prophet.beta, prophet.gamma) == (
            0.75,
            0.25,
            0.98,
        )
        assert get_policy("maxprop").hop_threshold == 3
        return True

    assert benchmark.pedantic(verify, rounds=1, iterations=1)
    report("table2", render_table_2())
