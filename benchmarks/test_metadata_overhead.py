"""Metadata-overhead measurements: the paper's "compact knowledge" claim.

"Knowledge is represented in a compact form, as a version vector, with
size proportional to the number of replicas rather than the number of
items in the system." This benchmark measures exactly that, in wire
bytes, using the codec: knowledge size as the message count grows (flat)
versus as the replica count grows (linear), plus the per-sync metadata
cost in the full vehicular scenario.
"""

from repro.experiments.report import render_series_table
from repro.replication import (
    AddressFilter,
    Replica,
    ReplicaId,
    SyncEndpoint,
    knowledge_wire_size,
    perform_sync,
)


def knowledge_bytes_vs_messages(message_counts):
    """One replica authoring N messages: knowledge bytes stay flat."""
    points = []
    for count in message_counts:
        replica = Replica(ReplicaId("solo"), AddressFilter("solo"))
        for i in range(count):
            replica.create_item(f"m{i}", {"destination": "elsewhere"})
        points.append((count, float(knowledge_wire_size(replica.knowledge))))
    return points


def knowledge_bytes_vs_replicas(replica_counts, messages_per_replica=20):
    """N replicas, all fully synced: knowledge bytes grow with N."""
    points = []
    for count in replica_counts:
        replicas = [
            Replica(ReplicaId(f"r{i:03d}"), AddressFilter(f"r{i:03d}"))
            for i in range(count)
        ]
        for replica in replicas:
            for i in range(messages_per_replica):
                replica.create_item(f"m{i}", {"destination": "elsewhere"})
        # Everyone learns everyone's versions via a sink that floods back.
        hub = replicas[0]
        for other in replicas[1:]:
            hub.knowledge.merge(other.knowledge)
        points.append((count, float(knowledge_wire_size(hub.knowledge))))
    return points


def test_knowledge_size_flat_in_messages(benchmark, report):
    counts = (10, 100, 1000, 5000)
    points = benchmark.pedantic(
        knowledge_bytes_vs_messages, args=(counts,), rounds=1, iterations=1
    )
    report(
        "metadata_messages",
        render_series_table(
            "Knowledge wire size (bytes) vs messages authored at one replica",
            "messages",
            {"bytes": points},
            value_format="{:8.0f}",
        ),
    )
    sizes = dict(points)
    # 500x more messages, same one-entry footprint (only the prefix
    # integer gains digits).
    assert sizes[5000] <= sizes[10] + 4


def test_knowledge_size_linear_in_replicas(benchmark, report):
    counts = (5, 10, 20, 40)
    points = benchmark.pedantic(
        knowledge_bytes_vs_replicas, args=(counts,), rounds=1, iterations=1
    )
    report(
        "metadata_replicas",
        render_series_table(
            "Knowledge wire size (bytes) vs number of replicas (fully synced)",
            "replicas",
            {"bytes": points},
            value_format="{:8.0f}",
        ),
    )
    sizes = dict(points)
    assert sizes[40] > sizes[5]
    # Roughly linear: doubling replicas roughly doubles bytes (±40%).
    ratio = sizes[40] / sizes[20]
    assert 1.4 <= ratio <= 2.6


def test_sync_metadata_cost_is_bounded(benchmark):
    """A no-op sync between converged replicas costs only the knowledge
    exchange — bytes proportional to replicas, regardless of the 500
    messages in their stores."""
    source = Replica(ReplicaId("src"), AddressFilter("src"))
    target = Replica(ReplicaId("dst"), AddressFilter("dst"))
    for i in range(500):
        source.create_item(f"m{i}", {"destination": "dst"})
    perform_sync(SyncEndpoint(source), SyncEndpoint(target))

    def converged_sync_overhead():
        perform_sync(SyncEndpoint(source), SyncEndpoint(target))
        return knowledge_wire_size(target.knowledge)

    overhead = benchmark(converged_sync_overhead)
    assert overhead < 100  # two replicas' worth of entries, not 500 items
