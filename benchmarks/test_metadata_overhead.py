"""Metadata-overhead measurements: the paper's "compact knowledge" claim.

"Knowledge is represented in a compact form, as a version vector, with
size proportional to the number of replicas rather than the number of
items in the system." This benchmark measures exactly that, in wire
bytes, using the codec: knowledge size as the message count grows (flat)
versus as the replica count grows (linear), plus the per-sync metadata
cost in the full vehicular scenario.
"""

from repro.experiments.report import render_series_table
from repro.replication import (
    AddressFilter,
    KnowledgeDigest,
    Replica,
    ReplicaId,
    SyncEndpoint,
    build_batch,
    knowledge_wire_size,
    perform_sync,
)
from repro.replication.filters import MultiAddressFilter
from repro.replication.ids import Version
from repro.replication.routing import SyncContext
from repro.replication.sync import SyncRequest
from repro.replication.versions import VersionVector

from repro.dtn.epidemic import EpidemicPolicy


def knowledge_bytes_vs_messages(message_counts):
    """One replica authoring N messages: knowledge bytes stay flat."""
    points = []
    for count in message_counts:
        replica = Replica(ReplicaId("solo"), AddressFilter("solo"))
        for i in range(count):
            replica.create_item(f"m{i}", {"destination": "elsewhere"})
        points.append((count, float(knowledge_wire_size(replica.knowledge))))
    return points


def knowledge_bytes_vs_replicas(replica_counts, messages_per_replica=20):
    """N replicas, all fully synced: knowledge bytes grow with N."""
    points = []
    for count in replica_counts:
        replicas = [
            Replica(ReplicaId(f"r{i:03d}"), AddressFilter(f"r{i:03d}"))
            for i in range(count)
        ]
        for replica in replicas:
            for i in range(messages_per_replica):
                replica.create_item(f"m{i}", {"destination": "elsewhere"})
        # Everyone learns everyone's versions via a sink that floods back.
        hub = replicas[0]
        for other in replicas[1:]:
            hub.knowledge.merge(other.knowledge)
        points.append((count, float(knowledge_wire_size(hub.knowledge))))
    return points


def test_knowledge_size_flat_in_messages(benchmark, report):
    counts = (10, 100, 1000, 5000)
    points = benchmark.pedantic(
        knowledge_bytes_vs_messages, args=(counts,), rounds=1, iterations=1
    )
    report(
        "metadata_messages",
        render_series_table(
            "Knowledge wire size (bytes) vs messages authored at one replica",
            "messages",
            {"bytes": points},
            value_format="{:8.0f}",
        ),
    )
    sizes = dict(points)
    # 500x more messages, same one-entry footprint (only the prefix
    # integer gains digits).
    assert sizes[5000] <= sizes[10] + 4


def test_knowledge_size_linear_in_replicas(benchmark, report):
    counts = (5, 10, 20, 40)
    points = benchmark.pedantic(
        knowledge_bytes_vs_replicas, args=(counts,), rounds=1, iterations=1
    )
    report(
        "metadata_replicas",
        render_series_table(
            "Knowledge wire size (bytes) vs number of replicas (fully synced)",
            "replicas",
            {"bytes": points},
            value_format="{:8.0f}",
        ),
    )
    sizes = dict(points)
    assert sizes[40] > sizes[5]
    # Roughly linear: doubling replicas roughly doubles bytes (±40%).
    ratio = sizes[40] / sizes[20]
    assert 1.4 <= ratio <= 2.6


def digest_vs_exact_bytes(version_counts, fp_rate=0.1):
    """Fragmented knowledge (every other counter known): exact bytes per
    version vs digest bytes per version, as the version count grows."""
    author = ReplicaId("author")
    points = []
    for count in version_counts:
        vector = VersionVector.empty()
        for index in range(count):
            vector.add(Version(author, 2 * index + 1))
        digest = KnowledgeDigest.build(vector, fp_rate, salt=count)
        points.append(
            (count, float(knowledge_wire_size(vector)), float(digest.wire_size()))
        )
    return points


def test_digest_reduces_fragmented_knowledge_bytes(benchmark, report):
    """The knowledge-digest tentpole claim (docs/protocol.md §8): on
    fragmented knowledge the Bloom digest beats the exact encoding by
    ≥5× at the 5000-version point."""
    counts = (500, 1000, 2500, 5000)
    points = benchmark.pedantic(
        digest_vs_exact_bytes, args=(counts,), rounds=1, iterations=1
    )
    report(
        "metadata_digest",
        render_series_table(
            "Fragmented knowledge wire size (bytes): exact vector vs Bloom digest",
            "versions",
            {
                "exact": [(count, exact) for count, exact, _ in points],
                "digest": [(count, digest) for count, _, digest in points],
            },
            value_format="{:8.0f}",
        ),
    )
    by_count = {count: (exact, digest) for count, exact, digest in points}
    exact_5k, digest_5k = by_count[5000]
    assert exact_5k / digest_5k >= 5.0


def test_digest_accounting_matches_hand_computed_expectations():
    """Pin `digest_suppressed` and `fp_resend` on a tiny fixture against
    independent re-derivation: suppressed must equal the number of stored
    unknown versions the digest (wrongly or rightly) claims, and a later
    send of a suppressed version must count exactly once as an FP."""
    source = Replica(ReplicaId("src"), MultiAddressFilter(own_address="src"))
    endpoint = SyncEndpoint(source, EpidemicPolicy().bind(source))
    items = [
        source.create_item(f"m{i}", {"destination": "dst", "source": "src"})
        for i in range(8)
    ]
    target_knowledge = VersionVector.empty()
    for counter in range(1, 40):
        target_knowledge.add(Version(ReplicaId("elsewhere"), counter))
    context = SyncContext(
        local=source.replica_id, remote=ReplicaId("dst"), now=0.0
    )

    def contact(salt):
        digest = KnowledgeDigest.build(target_knowledge, 0.25, salt)
        request = SyncRequest(
            target_id=ReplicaId("dst"),
            knowledge=VersionVector.empty(),
            filter=AddressFilter("dst"),
            routing_state=None,
            digest=digest,
        )
        batch, stats = build_batch(endpoint, request, context)
        # Independent re-derivation of the suppression count: stored item
        # versions the digest claims as known (all are actually unknown
        # to the fixture's target, so every claim is a false positive).
        expected = sum(digest.might_contain(item.version) for item in items)
        assert stats.digest_suppressed == expected
        sent = {entry.item.version for entry in batch}
        assert len(sent) == len(items) - expected  # suppressed ∪ sent = store
        return expected, sent, stats

    suppressed_first = None
    for salt in range(1000):
        expected, sent, stats = contact(salt)
        if expected:
            suppressed_first = {
                item.version for item in items if item.version not in sent
            }
            assert stats.fp_resend == 0  # nothing was suppressed before
            break
    assert suppressed_first, "no salt produced an FP at rate 0.25"

    for salt in range(1000, 2000):
        digest = KnowledgeDigest.build(target_knowledge, 0.25, salt)
        if not any(digest.might_contain(item.version) for item in items):
            # A wholly FP-free salt: every stored item goes out, and each
            # previously suppressed version counts as exactly one proven
            # FP re-send.
            _, sent_second, stats = contact(salt)
            assert suppressed_first <= sent_second
            assert stats.fp_resend == len(suppressed_first)
            break
    else:
        raise AssertionError("no salt cleared the FPs at rate 0.25")

    # A third contact sending the same versions proves nothing new.
    _, _, stats = contact(salt + 1)
    assert stats.fp_resend == 0


def test_sync_metadata_cost_is_bounded(benchmark):
    """A no-op sync between converged replicas costs only the knowledge
    exchange — bytes proportional to replicas, regardless of the 500
    messages in their stores."""
    source = Replica(ReplicaId("src"), AddressFilter("src"))
    target = Replica(ReplicaId("dst"), AddressFilter("dst"))
    for i in range(500):
        source.create_item(f"m{i}", {"destination": "dst"})
    perform_sync(SyncEndpoint(source), SyncEndpoint(target))

    def converged_sync_overhead():
        perform_sync(SyncEndpoint(source), SyncEndpoint(target))
        return knowledge_wire_size(target.knowledge)

    overhead = benchmark(converged_sync_overhead)
    assert overhead < 100  # two replicas' worth of entries, not 500 items
