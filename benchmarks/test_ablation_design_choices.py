"""Ablations over system design choices called out in DESIGN.md.

* **Delete-on-receipt** (Section IV-A cleanup): quantifies the storage
  reclaimed when destinations delete received messages and the tombstone
  spreads — the substrate-native alternative to MaxProp's explicit acks.
* **Route stickiness** (trace generator): day-to-day schedule churn is
  the mechanism that defeats PROPHET's history on this workload (the
  paper's footnote 1); sweeping stickiness shows PROPHET's fortunes
  tracking predictability.
"""

from dataclasses import replace

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_series_table
from repro.experiments.runner import run_experiment
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.traces.enron import generate_enron_model

HOURS = 3600.0


def test_ablation_delete_on_receipt(benchmark, inputs, report):
    def sweep():
        rows = {}
        for policy in ("cimbiosys", "spray", "epidemic"):
            for delete in (False, True):
                config = replace(
                    ExperimentConfig(scale=inputs.scale, policy=policy),
                    delete_on_receipt=delete,
                )
                result = run_experiment(
                    config, trace=inputs.trace, model=inputs.model
                )
                rows[(policy, delete)] = result.metrics
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = {
        "keep": [
            (i, rows[(policy, False)].mean_copies_at_end() or 0.0)
            for i, policy in enumerate(("cimbiosys", "spray", "epidemic"))
        ],
        "delete-on-receipt": [
            (i, rows[(policy, True)].mean_copies_at_end() or 0.0)
            for i, policy in enumerate(("cimbiosys", "spray", "epidemic"))
        ],
    }
    report(
        "ablation_cleanup",
        render_series_table(
            "Ablation: end-state copies per message — destinations delete "
            "vs never delete (0=cimbiosys, 1=spray, 2=epidemic)",
            "policy#",
            series,
        ),
    )

    for policy in ("spray", "epidemic"):
        kept = rows[(policy, False)]
        cleaned = rows[(policy, True)]
        # Cleanup reclaims storage without changing delivery.
        assert cleaned.mean_copies_at_end() < kept.mean_copies_at_end()
        assert cleaned.delivered == kept.delivered


def test_ablation_route_stickiness_vs_prophet(benchmark, inputs, report):
    """PROPHET's advantage over blind spraying grows with predictability."""

    def sweep():
        points_prophet = []
        points_spray = []
        for stickiness in (0.0, 0.3, 0.9):
            trace = generate_dieselnet_trace(
                DieselNetConfig(
                    scale=inputs.scale, route_stickiness=stickiness
                )
            )
            model = generate_enron_model(
                n_users=ExperimentConfig(scale=inputs.scale).effective_users
            )
            for policy, points in (
                ("prophet", points_prophet),
                ("spray", points_spray),
            ):
                config = ExperimentConfig(scale=inputs.scale, policy=policy)
                result = run_experiment(config, trace=trace, model=model)
                points.append(
                    (
                        stickiness,
                        100.0
                        * result.metrics.fraction_delivered_within(24 * HOURS),
                    )
                )
        return {"prophet": points_prophet, "spray": points_spray}

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ablation_stickiness",
        render_series_table(
            "Ablation: %-within-24h vs route stickiness (schedule churn)",
            "stickiness",
            series,
        ),
    )
    # Both policies complete and deliver under every churn level; the
    # prophet-vs-spray gap is trace-dependent, so assert only sanity here
    # (the full-scale trend is recorded in results/ablation_stickiness.txt).
    for points in series.values():
        assert all(0.0 <= value <= 100.0 for _, value in points)
        assert all(value > 0.0 for _, value in points)
