"""Shared fixtures for the figure-reproduction benchmark suite.

Every benchmark runs the emulations behind one table or figure of the
paper, prints the regenerated rows/series, writes them under ``results/``,
and asserts the *shape* facts the paper reports (who wins, by roughly what
factor, where the extremes sit). Absolute numbers differ from the paper —
the mobility trace and e-mail workload are synthetic stand-ins — but the
orderings are the reproduction target (see EXPERIMENTS.md).

Scale: benchmarks default to ``REPRO_SCALE=0.5`` (half-size scenario, a
few seconds per figure). Set ``REPRO_SCALE=1.0`` for the paper-size
scenario (35 buses, 17 days, 490 messages; a few minutes total).

Emulation runs are cached process-wide, so figures sharing a sweep (5/6,
7/8) pay for it once, exactly as in the paper's experimental design.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.config import configured_scale
from repro.experiments.figures import SharedScenarioInputs

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def scale() -> float:
    return configured_scale()


@pytest.fixture(scope="session")
def inputs(scale) -> SharedScenarioInputs:
    return SharedScenarioInputs.at_scale(scale)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a regenerated table/figure and persist it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def report(results_dir):
    def _report(name: str, text: str) -> None:
        emit(results_dir, name, text)

    return _report
