"""Ablations over the protocol parameters of Table II.

Not figures from the paper — these sweep each policy's knob over the
shared scenario to show *why* the paper's chosen values are sensible:

* Epidemic TTL: 1 hop is nearly direct-delivery; the benefit saturates
  well before TTL = 10 (the Table II value is safely in the flat region).
* Spray-and-Wait copies: delivery improves with the budget at sub-linear
  cost growth; 8 captures most of the benefit.
* MaxProp hop threshold: governs how long fresh messages keep priority.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_series_table
from repro.experiments.runner import run_experiment

HOURS = 3600.0


def _sweep(inputs, policy, parameter, values):
    points_delivery = []
    points_traffic = []
    for value in values:
        config = ExperimentConfig(scale=inputs.scale, policy=policy).with_policy(
            policy, **{parameter: value}
        )
        result = run_experiment(config, trace=inputs.trace, model=inputs.model)
        metrics = result.metrics
        points_delivery.append(
            (value, 100.0 * metrics.fraction_delivered_within(12 * HOURS))
        )
        points_traffic.append((value, float(metrics.transmissions)))
    return points_delivery, points_traffic


def test_ablation_epidemic_ttl(benchmark, inputs, report):
    values = (1, 2, 4, 10)
    delivery, traffic = benchmark.pedantic(
        _sweep,
        args=(inputs, "epidemic", "initial_ttl", values),
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_epidemic_ttl",
        render_series_table(
            "Ablation: Epidemic TTL vs %-within-12h and transmissions",
            "ttl",
            {"within12h%": delivery, "transmissions": traffic},
        ),
    )
    by_ttl = dict(delivery)
    # More hop budget never hurts delivery…
    assert by_ttl[10] >= by_ttl[1]
    # …and the paper's TTL=10 sits in the saturated region: going from 4
    # to 10 changes far less than going from 1 to 4.
    assert abs(by_ttl[10] - by_ttl[4]) <= max(5.0, abs(by_ttl[4] - by_ttl[1]))


def test_ablation_spray_copies(benchmark, inputs, report):
    values = (1, 2, 4, 8, 16)
    delivery, traffic = benchmark.pedantic(
        _sweep,
        args=(inputs, "spray", "initial_copies", values),
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_spray_copies",
        render_series_table(
            "Ablation: Spray-and-Wait copy budget vs %-within-12h and transmissions",
            "copies",
            {"within12h%": delivery, "transmissions": traffic},
        ),
    )
    by_copies = dict(delivery)
    tx = dict(traffic)
    # A bigger budget delivers more, and traffic grows with the budget.
    assert by_copies[8] > by_copies[1]
    assert tx[16] > tx[2]
    # One copy = direct-ish delivery: the cheapest configuration.
    assert tx[1] == min(tx.values())


def test_ablation_maxprop_hop_threshold(benchmark, inputs, report):
    values = (0, 3, 10)
    delivery, traffic = benchmark.pedantic(
        _sweep,
        args=(inputs, "maxprop", "hop_threshold", values),
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_maxprop_threshold",
        render_series_table(
            "Ablation: MaxProp hop-count priority threshold (unconstrained)",
            "threshold",
            {"within12h%": delivery, "transmissions": traffic},
        ),
    )
    by_threshold = dict(delivery)
    # Unconstrained, the threshold only affects ordering, so delivery is
    # essentially flat — the knob matters under bandwidth pressure.
    values_seen = list(by_threshold.values())
    assert max(values_seen) - min(values_seen) <= 10.0


def test_ablation_maxprop_threshold_under_bandwidth_cap(benchmark, inputs, report):
    def sweep():
        points = []
        for threshold in (0, 3, 10):
            config = (
                ExperimentConfig(scale=inputs.scale, policy="maxprop")
                .with_policy("maxprop", hop_threshold=threshold)
                .with_constraints(bandwidth_limit=1)
            )
            result = run_experiment(
                config, trace=inputs.trace, model=inputs.model
            )
            points.append(
                (threshold, 100.0 * result.metrics.delivery_ratio)
            )
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ablation_maxprop_threshold_bw",
        render_series_table(
            "Ablation: MaxProp hop threshold under 1-message bandwidth cap",
            "threshold",
            {"delivered%": points},
        ),
    )
    # The constrained runs complete and deliver something at every value;
    # the exact optimum is trace-dependent.
    assert all(delivered > 0.0 for _, delivered in points)
