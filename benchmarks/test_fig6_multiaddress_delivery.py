"""Figure 6 — % messages delivered within 12 hours vs addresses-in-filter.

Paper anchors: basic Cimbiosys (k = 0) delivers roughly 30% within 12
hours (not everything, because not all buses meet on the same day);
delivery climbs as more addresses join the filter; selected ≥ random for
small k.
"""

from repro.experiments.figures import figure_6
from repro.experiments.report import render_series_table

K_VALUES = (0, 1, 2, 4, 8, 16)


def test_figure_6_multiaddress_delivery(benchmark, inputs, report):
    series = benchmark.pedantic(
        figure_6, args=(inputs, K_VALUES), rounds=1, iterations=1
    )
    report(
        "fig6",
        render_series_table(
            "Figure 6: % messages delivered within 12 hours vs addresses in filter",
            "k",
            series,
        ),
    )

    random_pct = dict(series["random"])
    selected_pct = dict(series["selected"])

    # The baseline delivers some but far from all messages within 12 h.
    assert 10.0 <= selected_pct[0] <= 60.0

    # Delivery improves as addresses are added (paper's main point).
    assert selected_pct[16] > selected_pct[0]
    assert random_pct[16] > random_pct[0]
    assert selected_pct[16] >= selected_pct[2] >= selected_pct[0]

    # The selected strategy is at least as good as random at small k.
    assert selected_pct[1] >= random_pct[1] - 5.0
