"""Figure 10 — delay CDF under the storage constraint.

The paper caps each node at TWO stored messages, excluding messages for
which the node itself is the sender or the destination, with FIFO
eviction. Anchors: unmodified Cimbiosys is unaffected (it never relays);
the DTN policies lose some of their edge but still beat the baseline.
"""

from repro.dtn.registry import PAPER_POLICY_ORDER
from repro.experiments.figures import figure_7, figure_10, policy_sweep
from repro.experiments.report import render_series_table

STORAGE_LIMIT = 2


def test_figure_10_storage_constrained(benchmark, inputs, report):
    curves = benchmark.pedantic(
        figure_10,
        args=(inputs, PAPER_POLICY_ORDER, STORAGE_LIMIT),
        rounds=1,
        iterations=1,
    )
    report(
        "fig10",
        render_series_table(
            "Figure 10: % delivered vs delay (hours), storage-constrained "
            "(max 2 relayed messages per node, FIFO eviction)",
            "hours",
            curves,
        ),
    )

    unconstrained = figure_7(inputs, PAPER_POLICY_ORDER)
    free_results = policy_sweep(inputs, PAPER_POLICY_ORDER)
    capped_results = policy_sweep(
        inputs, PAPER_POLICY_ORDER, storage_limit=STORAGE_LIMIT
    )

    # Cimbiosys does not exploit relays, so the cap changes nothing.
    assert (
        capped_results["cimbiosys"].metrics.delays()
        == free_results["cimbiosys"].metrics.delays()
    )

    baseline_12h = dict(curves["cimbiosys"])[12.0]
    for policy in ("spray", "epidemic", "maxprop"):
        capped_12h = dict(curves[policy])[12.0]
        free_12h = dict(unconstrained[policy]["hours"])[12.0]
        # Still better than the baseline, but no better than unconstrained.
        assert capped_12h >= baseline_12h
        assert capped_12h <= free_12h + 1e-9

    # The cap actually binds: flooding policies suffer evictions.
    assert capped_results["epidemic"].metrics.evictions > 0
