"""Figure 7 — delay CDFs of the DTN routing policies, unconstrained.

Paper anchors:

* 7(a): at every delay bound below 12 hours, the DTN-policy curves sit
  above the unmodified-Cimbiosys curve; epidemic/maxprop are the highest.
* 7(b): letting the system run for days eventually delivers everything;
  extending the substrate with DTN routing compresses the worst-case
  delay by more than 2× (paper: >9 days → ~4 days for flooding policies).
* Epidemic and MaxProp have *identical* delay distributions because they
  differ only under bandwidth constraints.
"""

from repro.dtn.registry import PAPER_POLICY_ORDER
from repro.experiments.figures import figure_7, policy_sweep
from repro.experiments.report import render_series_table


def test_figure_7_delay_cdfs(benchmark, inputs, report, scale):
    curves = benchmark.pedantic(
        figure_7, args=(inputs, PAPER_POLICY_ORDER), rounds=1, iterations=1
    )
    report(
        "fig7a",
        render_series_table(
            "Figure 7(a): % delivered vs delay (hours), unconstrained",
            "hours",
            {policy: curves[policy]["hours"] for policy in PAPER_POLICY_ORDER},
        ),
    )
    report(
        "fig7b",
        render_series_table(
            "Figure 7(b): % delivered vs delay (days), unconstrained",
            "days",
            {policy: curves[policy]["days"] for policy in PAPER_POLICY_ORDER},
        ),
    )

    at_12h = {
        policy: dict(curves[policy]["hours"])[12.0]
        for policy in PAPER_POLICY_ORDER
    }
    at_10d = {
        policy: dict(curves[policy]["days"])[10.0]
        for policy in PAPER_POLICY_ORDER
    }

    # (a) Every DTN policy beats the baseline within 12 hours.
    for policy in ("prophet", "spray", "epidemic", "maxprop"):
        assert at_12h[policy] > at_12h["cimbiosys"]

    # (a) Flooding tops the 12-hour chart.
    assert at_12h["epidemic"] == max(at_12h.values())

    # (b) DTN policies end far ahead of the baseline at 10 days; at full
    # scale they converge to (nearly) complete delivery.
    threshold = 95.0 if scale >= 0.9 else at_10d["cimbiosys"]
    for policy in ("spray", "epidemic", "maxprop", "prophet"):
        assert at_10d[policy] >= threshold

    # (b) Epidemic ≡ MaxProp unconstrained — identical distributions.
    results = policy_sweep(inputs, PAPER_POLICY_ORDER)
    assert (
        results["epidemic"].metrics.delays()
        == results["maxprop"].metrics.delays()
    )

    # (b) Flooding compresses the worst-case delay by a large factor
    # (paper: >9 days → ~4 days; the factor shrinks with the scenario).
    baseline_max = results["cimbiosys"].metrics.max_delay()
    epidemic_max = results["epidemic"].metrics.max_delay()
    compression = 2.0 if scale >= 0.9 else 1.5
    assert epidemic_max < baseline_max / compression
