"""Extension experiment: bus-addressed vs user-addressed delivery.

The paper's scenario pins each message to the recipient's
bus-of-the-injection-day (static filters). The library also supports
addressing the *user*, with node filters tracking the daily user→bus
assignment — mail can then be picked up by whatever bus the recipient
boards next, including via the filter-change promotion path. This
benchmark quantifies the difference, which the paper's model cannot
express.
"""

from dataclasses import replace

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import render_series_table
from repro.experiments.runner import run_experiment

HOURS = 3600.0
POLICIES = ("cimbiosys", "epidemic")


def test_ext_addressing_modes(benchmark, inputs, report):
    def sweep():
        rows = {}
        for policy in POLICIES:
            for addressing in ("bus", "user"):
                config = replace(
                    ExperimentConfig(scale=inputs.scale, policy=policy),
                    addressing=addressing,
                )
                result = run_experiment(
                    config, trace=inputs.trace, model=inputs.model
                )
                rows[(policy, addressing)] = result.metrics
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = {
        f"{policy}/{addressing}": [
            (12.0, 100.0 * rows[(policy, addressing)].fraction_delivered_within(12 * HOURS)),
            (24.0, 100.0 * rows[(policy, addressing)].fraction_delivered_within(24 * HOURS)),
            (72.0, 100.0 * rows[(policy, addressing)].fraction_delivered_within(72 * HOURS)),
        ]
        for policy in POLICIES
        for addressing in ("bus", "user")
    }
    report(
        "ext_addressing",
        render_series_table(
            "Extension: % delivered within N hours — bus vs user addressing",
            "hours",
            series,
        ),
    )

    for policy in POLICIES:
        bus_metrics = rows[(policy, "bus")]
        user_metrics = rows[(policy, "user")]
        # Both modes run the identical trace/workload and deliver.
        assert bus_metrics.injected == user_metrics.injected
        assert user_metrics.delivered > 0
    # For the direct-only baseline, user addressing opens an extra
    # delivery channel (the recipient can board the holding bus), so
    # long-run delivery is at least as good as the static bus target.
    assert (
        rows[("cimbiosys", "user")].delivery_ratio
        >= rows[("cimbiosys", "bus")].delivery_ratio - 0.02
    )
