"""Extension experiment: filter-tree vs random-gossip convergence.

The substrate is topology-independent: eventual filter consistency only
needs paths of pairwise syncs. This benchmark compares the two canonical
topologies — a Cimbiosys filter tree (structured, two waves per round)
against uniform random pairwise gossip — on syncs-to-convergence and
item-copies moved, for the same all-pairs messaging workload.
"""

import random

from repro.replication import (
    AddressFilter,
    AllFilter,
    FilterTree,
    MultiAddressFilter,
    Replica,
    ReplicaId,
    SyncEndpoint,
    perform_sync,
)
from repro.replication.routing import NullRoutingPolicy

N_LEAVES = 8
LEAVES = [f"leaf{i}" for i in range(N_LEAVES)]


def seeded_workload(replicas):
    items = []
    for i, source in enumerate(LEAVES):
        destination = LEAVES[(i + 3) % N_LEAVES]
        items.append(
            replicas[source].create_item(f"{source}->{destination}", {"destination": destination})
        )
    return items


def converged(replicas, items):
    return all(
        replicas[item.attribute("destination")].holds(item.item_id)
        for item in items
    )


def run_tree():
    tree = FilterTree()
    tree.add_root(Replica(ReplicaId("root"), AllFilter()))
    for hub_index in range(2):
        hub_leaves = LEAVES[hub_index * 4 : hub_index * 4 + 4]
        hub_name = f"hub{hub_index}"
        tree.add_child(
            Replica(
                ReplicaId(hub_name),
                MultiAddressFilter(hub_name, frozenset(hub_leaves)),
            ),
            "root",
        )
        for leaf in hub_leaves:
            tree.add_child(Replica(ReplicaId(leaf), AddressFilter(leaf)), hub_name)
    replicas = {name: tree.replica_of(name) for name in tree.names()}
    items = seeded_workload(replicas)
    syncs = 0
    transfers = 0
    rounds = 0
    while not converged(replicas, items):
        stats = tree.sync_round(now=float(rounds))
        syncs += len(stats)
        transfers += sum(s.sent_total for s in stats)
        rounds += 1
        assert rounds < 10, "tree failed to converge"
    return {"syncs": syncs, "transfers": transfers, "rounds": rounds}


def run_gossip(seed=13):
    rng = random.Random(seed)
    replicas = {name: Replica(ReplicaId(name), AddressFilter(name)) for name in LEAVES}
    # Gossip needs forwarding to cross between leaves: use flooding relays.
    from repro.dtn import EpidemicPolicy

    endpoints = {
        name: SyncEndpoint(
            replica, EpidemicPolicy().bind(replica, lambda n=name: frozenset({n}))
        )
        for name, replica in replicas.items()
    }
    items = seeded_workload(replicas)
    syncs = 0
    transfers = 0
    while not converged(replicas, items):
        a, b = rng.sample(LEAVES, 2)
        stats = perform_sync(endpoints[a], endpoints[b], now=float(syncs))
        syncs += 1
        transfers += stats.sent_total
        assert syncs < 2000, "gossip failed to converge"
    return {"syncs": syncs, "transfers": transfers}


def test_ext_topology_comparison(benchmark, report):
    def run_both():
        return run_tree(), run_gossip()

    tree_result, gossip_result = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    lines = [
        "Extension: filter-tree vs random epidemic gossip "
        f"({N_LEAVES} leaves, all-pairs-ish workload)",
        f"{'topology':>10} | {'syncs':>7} | {'item transfers':>15}",
        "-" * 40,
        f"{'tree':>10} | {tree_result['syncs']:>7} | {tree_result['transfers']:>15}",
        f"{'gossip':>10} | {gossip_result['syncs']:>7} | {gossip_result['transfers']:>15}",
    ]
    report("ext_topology", "\n".join(lines))

    # The structured tree converges in one or two global rounds…
    assert tree_result["rounds"] <= 2
    # …and needs far fewer sync sessions than blind gossip.
    assert tree_result["syncs"] < gossip_result["syncs"]
    # Gossip floods: it moves strictly more copies than the tree, whose
    # down-flow only enters interested subtrees.
    assert gossip_result["transfers"] > tree_result["transfers"]
