"""Figure 8 — message copies stored in the network, per policy.

Paper anchors: unmodified Cimbiosys stores exactly two copies per
delivered message (sender + receiver) and the fewest overall; PROPHET and
Spray-and-Wait invest a few more copies for much better delay; flooding
policies store the most; Spray-and-Wait stands out at experiment end
because its copy budget bounds replication. Our MaxProp additionally
floods delivery acknowledgements (Section V-C4), which reclaims relay
buffers by the end of the run.
"""

from repro.dtn.registry import PAPER_POLICY_ORDER
from repro.experiments.figures import figure_8
from repro.experiments.report import render_figure_8


def test_figure_8_stored_copies(benchmark, inputs, report):
    copies = benchmark.pedantic(
        figure_8, args=(inputs, PAPER_POLICY_ORDER), rounds=1, iterations=1
    )
    report("fig8", render_figure_8(copies))

    at_delivery = {p: copies[p]["at_delivery"] for p in PAPER_POLICY_ORDER}
    at_end = {p: copies[p]["at_end"] for p in PAPER_POLICY_ORDER}

    # Baseline: sender + receiver only (≤ 2; exactly 2 except for
    # same-host sender/recipient pairs).
    assert at_delivery["cimbiosys"] <= 2.0
    assert at_delivery["cimbiosys"] == min(at_delivery.values())
    assert at_end["cimbiosys"] <= 2.0

    # Every DTN policy invests extra copies to cut delay.
    for policy in ("prophet", "spray", "epidemic", "maxprop"):
        assert at_delivery[policy] > at_delivery["cimbiosys"]

    # Flooding accumulates the most copies by the end of the experiment.
    assert at_end["epidemic"] == max(at_end.values())

    # Spray's end-state copies are bounded by its budget (8) + endpoints.
    assert at_end["spray"] <= 9.0
    assert at_end["spray"] < at_end["epidemic"]

    # MaxProp's flooded acks reclaim relay storage after delivery.
    assert at_end["maxprop"] < at_end["epidemic"]
