"""Tests for the content-addressed run-artifact store."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.store import (
    RUN_SCHEMA_VERSION,
    RunStore,
    StoreError,
    config_digest,
    run_id_for,
    sweep_id_for,
)


@pytest.fixture(scope="module")
def small_result():
    return run_experiment(ExperimentConfig(scale=0.25, policy="epidemic"))


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "runs")


class TestContentAddressing:
    def test_run_id_is_policy_plus_digest(self):
        config = ExperimentConfig(scale=0.5, policy="spray")
        run_id = run_id_for(config)
        assert run_id == f"spray-{config_digest(config)}"
        assert len(config_digest(config)) == 16

    def test_equal_configs_share_an_address(self):
        a = ExperimentConfig(scale=0.5, policy="epidemic")
        b = ExperimentConfig(scale=0.5, policy="epidemic")
        assert run_id_for(a) == run_id_for(b)

    def test_any_field_change_moves_the_address(self):
        base = ExperimentConfig(scale=0.5, policy="epidemic")
        variants = [
            ExperimentConfig(scale=0.5, policy="spray"),
            ExperimentConfig(scale=0.5, policy="epidemic", trace_seed=43),
            ExperimentConfig(scale=0.5, policy="epidemic", bandwidth_limit=3),
        ]
        for variant in variants:
            assert run_id_for(variant) != run_id_for(base)

    def test_sweep_id_ignores_run_order(self):
        assert sweep_id_for(["b", "a"]) == sweep_id_for(["a", "b"])
        assert sweep_id_for(["a"]) != sweep_id_for(["a", "b"])


class TestSaveLoad:
    def test_round_trip_through_disk(self, store, small_result):
        path = store.save_result(small_result, wall_clock_s=1.5)
        assert path.exists()
        run_id = run_id_for(small_result.config)
        artifact = store.load_artifact(run_id)
        assert artifact["schema"] == RUN_SCHEMA_VERSION
        assert artifact["run_id"] == run_id
        assert artifact["wall_clock_s"] == 1.5
        loaded = store.load_result(run_id)
        assert loaded.summary() == small_result.summary()
        assert loaded.config == small_result.config

    def test_load_by_config(self, store, small_result):
        store.save_result(small_result)
        loaded = store.load_result(small_result.config)
        assert loaded.summary() == small_result.summary()

    def test_has_and_list(self, store, small_result):
        assert not store.has(small_result.config)
        assert store.list_run_ids() == []
        store.save_result(small_result)
        assert store.has(small_result.config)
        assert store.list_run_ids() == [run_id_for(small_result.config)]

    def test_missing_artifact_raises(self, store):
        with pytest.raises(StoreError, match="missing"):
            store.load_artifact("epidemic-deadbeefdeadbeef")


class TestValidation:
    def test_truncated_file_is_invalid_not_crash(self, store, small_result):
        path = store.save_result(small_result)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(StoreError, match="corrupt"):
            store.load_artifact(run_id_for(small_result.config))
        assert not store.has(small_result.config)

    def test_tampered_config_fails_content_check(self, store, small_result):
        path = store.save_result(small_result)
        artifact = json.loads(path.read_text())
        artifact["result"]["config"]["trace_seed"] += 1
        path.write_text(json.dumps(artifact))
        with pytest.raises(StoreError, match="content validation"):
            store.load_artifact(run_id_for(small_result.config))

    def test_unknown_schema_is_rejected(self, store, small_result):
        path = store.save_result(small_result)
        artifact = json.loads(path.read_text())
        artifact["schema"] = RUN_SCHEMA_VERSION + 1
        path.write_text(json.dumps(artifact))
        with pytest.raises(StoreError, match="schema"):
            store.load_artifact(run_id_for(small_result.config))


class TestManifests:
    def _grid(self):
        return [
            ExperimentConfig(scale=0.25, policy="epidemic"),
            ExperimentConfig(scale=0.25, policy="spray"),
        ]

    def test_write_and_validate(self, store, small_result):
        configs = self._grid()
        path = store.write_manifest(configs, workers=2)
        manifest = json.loads(path.read_text())
        sweep_id = manifest["sweep_id"]
        assert sweep_id == sweep_id_for(run_id_for(c) for c in configs)
        assert manifest["workers"] == 2
        assert [entry["run_id"] for entry in manifest["runs"]] == sorted(
            run_id_for(c) for c in configs
        )

        statuses = store.validate_manifest(sweep_id)
        assert set(statuses.values()) == {"missing"}

        store.save_result(small_result)  # the epidemic cell
        statuses = store.validate_manifest(sweep_id)
        assert statuses[run_id_for(configs[0])] == "ok"
        assert statuses[run_id_for(configs[1])] == "missing"

    def test_tampered_artifact_reports_invalid(self, store, small_result):
        configs = self._grid()
        store.write_manifest(configs, workers=1)
        sweep_id = sweep_id_for(run_id_for(c) for c in configs)
        path = store.save_result(small_result)
        path.write_text("{}")
        statuses = store.validate_manifest(sweep_id)
        assert statuses[run_id_for(configs[0])] == "invalid"

    def test_manifest_not_listed_as_run(self, store):
        store.write_manifest(self._grid(), workers=1)
        assert store.list_run_ids() == []

    def test_missing_manifest_raises(self, store):
        with pytest.raises(StoreError, match="manifest"):
            store.load_manifest("0" * 12)
