"""The scale benchmark: report schema, gates, and artifact round-trip."""

from __future__ import annotations

import json

import pytest

from repro.experiments.bench_scale import (
    PRESETS,
    ScaleBenchConfig,
    ScalePoint,
    run_scale_bench,
    write_scale_bench,
)


@pytest.fixture(scope="module")
def tiny_report():
    """One real (in-process) run of the tiny preset, shared by the tests."""
    config = ScaleBenchConfig(
        preset="tiny",
        in_process=True,
        comparison_buses=24,
        comparison_days=4,
        min_speedup=1.0,
    )
    return run_scale_bench(config)


def test_rejects_bad_config():
    with pytest.raises(ValueError):
        ScaleBenchConfig(preset="nope")
    with pytest.raises(ValueError):
        ScaleBenchConfig(min_speedup=0.0)


def test_presets_cover_the_acceptance_targets():
    assert max(p.n_buses for p in PRESETS["full"]) >= 50_000
    assert all(p.n_buses <= 2_000 for p in PRESETS["smoke"])
    # Sharded rungs must use partitionable traces.
    for preset in PRESETS.values():
        for point in preset:
            if point.shards > 1:
                assert point.interchange_rate == 0.0


def test_max_nodes_trims_the_ladder():
    config = ScaleBenchConfig(preset="full", max_nodes=5000)
    assert [p.n_buses for p in config.points()] == [1000, 5000]
    assert len(ScaleBenchConfig(preset="full").points()) == len(PRESETS["full"])


def test_tiny_report_schema(tiny_report):
    assert tiny_report["benchmark"] == "scale"
    assert tiny_report["preset"] == "tiny"
    comparison = tiny_report["comparison"]
    assert comparison["encounters"] > 0
    assert comparison["object"]["wall_clock_s"] >= 0
    assert comparison["columnar"]["us_per_encounter"] > 0
    assert comparison["equivalence_checked"] is True
    assert comparison["equivalent"] is True
    assert comparison["mismatched_keys"] == []
    assert isinstance(tiny_report["speedup_ok"], bool)
    assert tiny_report["max_nodes"] == 60
    assert tiny_report["max_encounters"] > 0


def test_tiny_curve_rows(tiny_report):
    (row,) = tiny_report["curve"]
    assert row["n_buses"] == 60
    assert row["encounters"] > 0
    assert row["delivered"] <= row["injected"]
    assert row["run_wall_clock_s"] >= 0
    assert row["us_per_encounter"] > 0
    # Memory accounting (the record_memory satellite) reaches the rows.
    assert row["peak_rss_mb"] > 0
    assert row["run_includes_build"] is False


def test_artifact_round_trips(tiny_report, tmp_path):
    path = write_scale_bench(tiny_report, tmp_path / "results" / "BENCH_scale.json")
    assert path.exists()
    assert json.loads(path.read_text()) == tiny_report


def test_equivalence_can_be_disabled():
    config = ScaleBenchConfig(
        preset="tiny",
        in_process=True,
        equivalence=False,
        comparison_buses=24,
        comparison_days=2,
        min_speedup=0.01,
    )
    report = run_scale_bench(config)
    comparison = report["comparison"]
    assert comparison["equivalence_checked"] is False
    assert comparison["equivalent"] is None


def test_scale_point_defaults_are_columnar_sized():
    point = ScalePoint(100, 4, 2)
    assert point.shards == 1
    assert point.messages > 0 and point.users > 0
