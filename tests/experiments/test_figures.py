"""Small-scale smoke tests of the per-figure harnesses.

Full-shape assertions run in the benchmark suite at the configured scale;
here we run everything tiny and assert structure plus the cheap shape
facts that survive downscaling.
"""

import pytest

from repro.experiments.figures import (
    CDF_HOURS,
    FIGURE_5_K_VALUES,
    SharedScenarioInputs,
    figure_5,
    figure_6,
    figure_7,
    figure_8,
    figure_9,
    figure_10,
    multiaddress_sweep,
    policy_sweep,
)

K_VALUES = (0, 1, 2)
POLICIES = ("cimbiosys", "epidemic")


@pytest.fixture(scope="module")
def inputs():
    return SharedScenarioInputs.at_scale(0.25)


class TestMultiAddressSweep:
    def test_k0_shared_between_strategies(self, inputs):
        sweep = multiaddress_sweep(inputs, K_VALUES)
        assert sweep[("random", 0)] is sweep[("selected", 0)]

    def test_all_cells_present(self, inputs):
        sweep = multiaddress_sweep(inputs, K_VALUES)
        assert set(sweep) == {
            (strategy, k)
            for strategy in ("random", "selected")
            for k in K_VALUES
        }


class TestFigure5:
    def test_series_structure(self, inputs):
        series = figure_5(inputs, K_VALUES)
        assert set(series) == {"random", "selected"}
        for points in series.values():
            assert [k for k, _ in points] == list(K_VALUES)

    def test_filters_reduce_delay(self, inputs):
        series = figure_5(inputs, K_VALUES)
        for points in series.values():
            delays = dict(points)
            assert delays[2] <= delays[0]


class TestFigure6:
    def test_delivery_percent_range(self, inputs):
        series = figure_6(inputs, K_VALUES)
        for points in series.values():
            for _, percent in points:
                assert 0.0 <= percent <= 100.0

    def test_filters_improve_delivery(self, inputs):
        series = figure_6(inputs, K_VALUES)
        for points in series.values():
            values = dict(points)
            assert values[2] >= values[0]


class TestPolicySweep:
    def test_results_keyed_by_policy(self, inputs):
        sweep = policy_sweep(inputs, POLICIES)
        assert set(sweep) == set(POLICIES)

    def test_cache_reuses_runs(self, inputs):
        first = policy_sweep(inputs, POLICIES)
        second = policy_sweep(inputs, POLICIES)
        for policy in POLICIES:
            assert first[policy] is second[policy]


class TestFigure7:
    def test_curve_structure(self, inputs):
        curves = figure_7(inputs, POLICIES)
        for policy in POLICIES:
            hours = curves[policy]["hours"]
            days = curves[policy]["days"]
            assert [h for h, _ in hours] == list(CDF_HOURS)
            assert [d for d, _ in days] == [float(d) for d in range(1, 11)]

    def test_epidemic_dominates_baseline(self, inputs):
        curves = figure_7(inputs, POLICIES)
        baseline_12h = dict(curves["cimbiosys"]["hours"])[12.0]
        epidemic_12h = dict(curves["epidemic"]["hours"])[12.0]
        assert epidemic_12h >= baseline_12h


class TestFigure8:
    def test_copy_counts(self, inputs):
        copies = figure_8(inputs, POLICIES)
        assert copies["cimbiosys"]["at_delivery"] == pytest.approx(2.0, abs=0.3)
        assert copies["epidemic"]["at_end"] > copies["cimbiosys"]["at_end"]


class TestConstrainedFigures:
    def test_figure_9_structure(self, inputs):
        curves = figure_9(inputs, POLICIES)
        for policy in POLICIES:
            assert len(curves[policy]) == len(CDF_HOURS)

    def test_figure_10_structure(self, inputs):
        curves = figure_10(inputs, POLICIES)
        for policy in POLICIES:
            fractions = [f for _, f in curves[policy]]
            assert fractions == sorted(fractions)

    def test_bandwidth_constraint_hurts_epidemic(self, inputs):
        unconstrained = dict(figure_7(inputs, POLICIES)["epidemic"]["hours"])
        constrained = dict(figure_9(inputs, POLICIES)["epidemic"])
        assert constrained[12.0] <= unconstrained[12.0]


class TestDefaults:
    def test_figure_5_k_values_match_paper(self):
        assert FIGURE_5_K_VALUES == (0, 1, 2, 4, 8, 16)
