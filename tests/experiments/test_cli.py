"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "warp-drive"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "7"])
        assert args.which == "7"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "11"])


class TestTraceCommand:
    def test_prints_summary(self, capsys):
        assert main(["trace", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "encounters" in out
        assert "hosts" in out

    def test_export_writes_interchange_file(self, tmp_path, capsys):
        target = tmp_path / "trace.txt"
        assert main(["trace", "--scale", "0.25", "--export", str(target)]) == 0
        lines = target.read_text().splitlines()
        assert lines[0].startswith("#")
        assert len(lines) > 1

        from repro.traces.dieselnet import parse_trace_text

        trace = parse_trace_text(lines)
        assert len(trace) == len(lines) - 1


class TestRunCommand:
    def test_runs_baseline(self, capsys):
        assert main(["run", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "cimbiosys" in out
        assert "delivery_ratio" in out

    def test_runs_policy_with_constraints(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--policy",
                    "spray",
                    "--scale",
                    "0.25",
                    "--bandwidth-limit",
                    "1",
                    "--storage-limit",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "spray" in out and "bw=1" in out and "store=2" in out

    def test_runs_multiaddress_strategy(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--scale",
                    "0.25",
                    "--filter-strategy",
                    "selected",
                    "--filter-k",
                    "2",
                ]
            )
            == 0
        )
        assert "selected+2" in capsys.readouterr().out

    def test_fault_flags_arm_the_injector(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--scale",
                    "0.25",
                    "--policy",
                    "epidemic",
                    "--fault-truncation",
                    "0.5",
                    "--fault-drop",
                    "0.2",
                    "--fault-seed",
                    "31",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "epidemic faults" in out
        assert "fault counters (fault seed 31):" in out
        assert "interrupted_syncs" in out

    def test_zero_fault_flags_omit_counters(self, capsys):
        assert main(["run", "--scale", "0.25"]) == 0
        assert "fault counters" not in capsys.readouterr().out

    def test_invalid_fault_probability_rejected(self, capsys):
        assert main(["run", "--scale", "0.25", "--fault-drop", "1.5"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "encounter_drop_probability" in err


class TestFigureCommand:
    def test_single_figure(self, capsys):
        assert main(["figure", "8", "--scale", "0.25"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_output_dir(self, tmp_path, capsys):
        assert (
            main(
                [
                    "figure",
                    "8",
                    "--scale",
                    "0.25",
                    "--output-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert (tmp_path / "fig8.txt").exists()


class TestTablesCommand:
    def test_prints_both_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "MaxProp" in out and "gamma=0.98" in out


class TestFigureAll:
    def test_all_figures_render_and_persist(self, tmp_path, capsys):
        assert (
            main(
                [
                    "figure",
                    "all",
                    "--scale",
                    "0.25",
                    "--output-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        for marker in ("Figure 5", "Figure 6", "Figure 7(a)", "Figure 7(b)",
                       "Figure 8", "Figure 9", "Figure 10"):
            assert marker in out
        for name in ("fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10"):
            assert (tmp_path / f"{name}.txt").exists()


class TestBenchDispatcher:
    """The unified ``repro bench <name>`` front end."""

    def test_bench_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_unknown_bench_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "warp"])

    @pytest.mark.parametrize(
        "which", ["sync", "encounter", "sweep", "metadata", "scale"]
    )
    def test_every_bench_shares_the_output_flag(self, which):
        args = build_parser().parse_args(
            ["bench", which, "--output", "artifact.json"]
        )
        assert args.which == which
        assert str(args.output) == "artifact.json"

    def test_per_bench_flags_stay_per_bench(self):
        args = build_parser().parse_args(
            ["bench", "sync", "--verify-every", "10", "--min-reduction", "2"]
        )
        assert args.verify_every == 10 and args.min_reduction == 2.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "sweep", "--verify-every", "10"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "scale", "--min-reduction", "2"])

    def test_scale_defaults(self):
        args = build_parser().parse_args(["bench", "scale"])
        assert args.preset == "full"
        assert args.seed == 42
        assert args.min_speedup is None
        assert not args.no_equivalence

    def test_scale_runs_tiny_preset(self, tmp_path, capsys):
        target = tmp_path / "BENCH_scale.json"
        assert (
            main(
                [
                    "bench",
                    "scale",
                    "--preset",
                    "tiny",
                    "--min-speedup",
                    "1",
                    "--output",
                    str(target),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "matched comparison" in out
        assert "identical comparable metrics: True" in out
        assert target.exists()

    def test_scale_rejects_unsupported_policy(self, capsys):
        assert main(["bench", "scale", "--preset", "tiny", "--policy", "prophet"]) != 0
