"""Tests for the ASCII CDF plot renderer."""

from repro.experiments.report import render_cdf_plot


class TestCdfPlot:
    def test_contains_title_and_series(self):
        text = render_cdf_plot(
            "Figure X",
            "hours",
            {"epidemic": [(0.0, 0.0), (12.0, 93.0)]},
        )
        assert "Figure X" in text
        assert "epidemic" in text
        assert "hours=" in text

    def test_bar_lengths_scale_with_values(self):
        text = render_cdf_plot(
            "t", "x", {"s": [(1.0, 0.0), (2.0, 50.0), (3.0, 100.0)]}, width=10
        )
        lines = [line for line in text.splitlines() if "|" in line]
        bars = [line.split("|")[1] for line in lines]
        assert bars[0].count("█") == 0
        assert bars[1].count("█") == 5
        assert bars[2].count("█") == 10

    def test_values_clamped_to_range(self):
        text = render_cdf_plot(
            "t", "x", {"s": [(1.0, 150.0), (2.0, -5.0)]}, width=10
        )
        lines = [line for line in text.splitlines() if "|" in line]
        assert lines[0].split("|")[1].count("█") == 10
        assert lines[1].split("|")[1].count("█") == 0

    def test_multiple_series_rendered_in_order(self):
        text = render_cdf_plot(
            "t", "x", {"first": [(1.0, 10.0)], "second": [(1.0, 20.0)]}
        )
        assert text.index("first") < text.index("second")
