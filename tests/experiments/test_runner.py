"""Integration-level tests of the experiment runner at small scale."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

SMALL = ExperimentConfig(scale=0.25)


@pytest.fixture(scope="module")
def baseline_result():
    return run_experiment(SMALL)


@pytest.fixture(scope="module")
def epidemic_result():
    return run_experiment(SMALL.with_policy("epidemic"))


class TestBasicRun:
    def test_all_messages_injected(self, baseline_result):
        assert baseline_result.metrics.injected == SMALL.effective_messages

    def test_some_messages_delivered(self, baseline_result):
        assert baseline_result.metrics.delivered > 0

    def test_summary_is_complete(self, baseline_result):
        summary = baseline_result.summary()
        for key in ("delivery_ratio", "mean_delay_hours", "within_12h"):
            assert key in summary

    def test_trace_summary_attached(self, baseline_result):
        assert baseline_result.trace_summary["hosts"] > 0

    def test_label(self, baseline_result):
        assert baseline_result.label == "cimbiosys"


class TestPaperShape:
    def test_epidemic_delivers_more_than_baseline(
        self, baseline_result, epidemic_result
    ):
        assert (
            epidemic_result.metrics.delivery_ratio
            >= baseline_result.metrics.delivery_ratio
        )

    def test_epidemic_is_faster_than_baseline(
        self, baseline_result, epidemic_result
    ):
        assert (
            epidemic_result.metrics.mean_delay()
            < baseline_result.metrics.mean_delay()
        )

    def test_baseline_stores_at_most_two_copies_per_delivery(self, baseline_result):
        # Unmodified Cimbiosys: one copy at the sender, one at the receiver
        # (exactly one when sender and receiver share a bus, which is common
        # at this reduced scale).
        mean_copies = baseline_result.metrics.mean_copies_at_delivery()
        assert 1.0 <= mean_copies <= 2.0

    def test_epidemic_stores_more_copies(self, baseline_result, epidemic_result):
        assert (
            epidemic_result.metrics.mean_copies_at_end()
            > baseline_result.metrics.mean_copies_at_end()
        )

    def test_delay_cdf_hours_shape(self, epidemic_result):
        cdf = epidemic_result.delay_cdf_hours([0.0, 6.0, 12.0])
        assert [h for h, _ in cdf] == [0.0, 6.0, 12.0]
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)


class TestDeterminism:
    def test_same_config_same_results(self):
        first = run_experiment(SMALL.with_policy("spray"))
        second = run_experiment(SMALL.with_policy("spray"))
        assert first.metrics.delays() == second.metrics.delays()
        assert first.metrics.transmissions == second.metrics.transmissions
