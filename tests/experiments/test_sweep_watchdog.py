"""Tests for the sweep watchdog: per-run timeouts and hung/crashed workers.

The timeout tests use a timeout far below any real run's startup cost, so
every worker is deterministically overdue — no sleeps or races. The crash
test injects a worker entry point that dies without reporting, which is
indistinguishable from an OOM-kill as far as the parent can see.
"""

import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.store import RunStore, run_id_for
from repro.experiments.sweep import _run_parallel, expand_grid, run_sweep

BASE = ExperimentConfig(scale=0.25)


def _crashy_worker(payload, queue):
    """A worker that dies before reporting anything (spawn target)."""
    os._exit(13)


class TestTimeout:
    def test_timeout_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="timeout_s"):
            run_sweep(
                [BASE], store=RunStore(tmp_path / "runs"), timeout_s=0.0
            )

    def test_overdue_runs_become_failed_outcomes_with_sidecars(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        grid = expand_grid(BASE, seeds=[0, 1])
        events = []
        report = run_sweep(
            grid,
            store=store,
            workers=2,
            timeout_s=0.001,  # far below spawn startup: always overdue
            progress=events.append,
        )
        assert report.failed == 2
        assert report.completed == 0
        for outcome in report.outcomes:
            assert outcome.status == "failed"
            assert "timed out" in outcome.error
            failure = store.load_failure(outcome.run_id)
            assert failure is not None
            assert failure["status"] == "failed"
            assert "timed out" in failure["error"]
            assert not store.path_for(outcome.run_id).exists()
        # The manifest distinguishes "failed" from "never attempted".
        statuses = store.validate_manifest(report.sweep_id)
        assert set(statuses.values()) == {"failed"}
        kinds = [event.kind for event in events]
        assert kinds.count("started") == 2
        assert kinds.count("failed") == 2

    def test_resume_retries_failed_runs_and_clears_sidecars(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        grid = expand_grid(BASE, seeds=[0, 1])
        first = run_sweep(grid, store=store, workers=2, timeout_s=0.001)
        assert first.failed == 2

        # Same grid, watchdog disarmed: resume retries the failed runs
        # (their artifacts never existed) and success clears the sidecars.
        second = run_sweep(grid, store=store, workers=1)
        assert second.completed == 2
        assert second.reused == 0
        for config in grid:
            run_id = run_id_for(config)
            assert store.has(config)
            assert store.load_failure(run_id) is None
        statuses = store.validate_manifest(second.sweep_id)
        assert set(statuses.values()) == {"ok"}

    def test_timeout_forces_watchdog_even_for_one_worker(self, tmp_path):
        """workers=1 with a timeout must still run out-of-process — a hung
        run cannot be killed from inside its own process."""
        store = RunStore(tmp_path / "runs")
        report = run_sweep(
            [BASE], store=store, workers=1, timeout_s=0.001
        )
        assert report.failed == 1
        assert "timed out" in report.outcomes[0].error

    def test_generous_timeout_does_not_fire(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        report = run_sweep([BASE], store=store, workers=1, timeout_s=600.0)
        assert report.completed == 1
        assert report.failed == 0
        assert store.load_failure(run_id_for(BASE)) is None

    def test_failure_sidecars_hidden_from_run_listing(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        store.record_failure("epidemic-deadbeef", "epidemic", "boom")
        assert store.list_run_ids() == []
        assert store.load_failure("epidemic-deadbeef")["error"] == "boom"
        store.clear_failure("epidemic-deadbeef")
        assert store.load_failure("epidemic-deadbeef") is None


class TestCrashedWorker:
    def test_dead_worker_without_result_is_settled_as_failed(self):
        payloads = [
            {
                "run_id": "epidemic-cafebabe",
                "label": "epidemic",
                "config": BASE.to_dict(),
                "extra_days": 0,
            }
        ]
        settled = []
        _run_parallel(
            payloads,
            workers=1,
            emit=lambda *args, **kwargs: None,
            settle=lambda payload, raw: settled.append((payload, raw)),
            worker=_crashy_worker,
        )
        assert len(settled) == 1
        payload, raw = settled[0]
        assert payload["run_id"] == "epidemic-cafebabe"
        assert "crashed" in raw["error"]
        assert "13" in raw["error"]
