"""Round-trip tests for the repro.api serialization contract.

``to_dict → from_dict → to_dict`` must be a fixed point for every type
the sweep engine ships across process boundaries or persists as an
artifact: :class:`ExperimentConfig`, :class:`FaultConfig`,
:class:`MetricsCollector` (with delivered *and* undelivered records and
non-zero sync counters), and :class:`ExperimentResult`. A JSON hop is
included everywhere — artifacts live on disk as JSON, so survival of
``json.dumps``/``json.loads`` is part of the contract.
"""

import json

import pytest

from repro.emulation.metrics import MessageRecord, MetricsCollector
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.faults import FaultConfig
from repro.replication.ids import ItemId, ReplicaId
from repro.replication.sync import SyncStats


def json_hop(data):
    return json.loads(json.dumps(data))


class TestFaultConfigRoundTrip:
    def test_fixed_point(self):
        config = FaultConfig(
            encounter_drop_probability=0.1,
            truncation_probability=0.25,
            truncation_min=1,
            truncation_max=4,
            duplication_probability=0.05,
            crash_probability=0.01,
            retry_backoff_base=30.0,
        )
        data = config.to_dict()
        rebuilt = FaultConfig.from_dict(json_hop(data))
        assert rebuilt == config
        assert rebuilt.to_dict() == data

    def test_unknown_field_named_in_error(self):
        with pytest.raises(TypeError, match="bogus_knob"):
            FaultConfig.from_dict({"bogus_knob": 1.0})


class TestExperimentConfigRoundTrip:
    def test_fixed_point_with_faults_and_parameters(self):
        config = ExperimentConfig(
            scale=0.25,
            policy="epidemic",
            policy_parameters={"initial_ttl": 5},
            addressing="user",
            filter_strategy="random",
            filter_k=2,
            bandwidth_limit=3,
            storage_limit=7,
            eviction_strategy="random",
            delete_on_receipt=True,
            faults=FaultConfig(truncation_probability=0.2),
            trace_seed=77,
        )
        data = config.to_dict()
        rebuilt = ExperimentConfig.from_dict(json_hop(data))
        assert rebuilt == config
        assert rebuilt.to_dict() == data

    def test_none_faults_stay_none(self):
        config = ExperimentConfig(scale=0.5)
        rebuilt = ExperimentConfig.from_dict(json_hop(config.to_dict()))
        assert rebuilt.faults is None
        assert rebuilt == config

    def test_validation_still_applies_on_load(self):
        data = ExperimentConfig(scale=0.5).to_dict()
        data["addressing"] = "pigeon"
        with pytest.raises(ValueError, match="addressing"):
            ExperimentConfig.from_dict(data)

    def test_unknown_field_named_in_error(self):
        data = ExperimentConfig(scale=0.5).to_dict()
        data["frob_level"] = 11
        with pytest.raises(TypeError, match="frob_level"):
            ExperimentConfig.from_dict(data)


def _populated_collector() -> MetricsCollector:
    collector = MetricsCollector()
    origin = ReplicaId("bus-01")
    delivered = ItemId(origin, 0)
    undelivered = ItemId(origin, 1)
    collector.record_injection(delivered, "alice", "bob", 10.0, "bus-01")
    collector.record_injection(undelivered, "carol", "dave", 20.0, "bus-02")
    collector.record_delivery(delivered, 500.0, "bus-03", copies=4)
    collector.record_encounter()
    collector.record_sync(
        SyncStats(
            source=ReplicaId("bus-01"),
            target=ReplicaId("bus-02"),
            sent_total=3,
            sent_matching=2,
            sent_relayed=1,
            truncated=1,
            interrupted=True,
            store_size=9,
            candidates=4,
            index_skipped=5,
            filter_cache_hits=2,
            filter_cache_misses=1,
        )
    )
    collector.record_eviction()
    collector.record_resumed_pair()
    collector.record_crash()
    collector.end_time = 86400.0
    return collector


class TestMetricsRoundTrip:
    def test_message_record_fixed_point(self):
        record = MessageRecord(
            message_id=ItemId(ReplicaId("bus-07"), 3),
            source="alice",
            destination="bob",
            injected_at=12.5,
            injected_node="bus-07",
        )
        data = record.to_dict()
        rebuilt = MessageRecord.from_dict(json_hop(data))
        assert rebuilt == record
        assert rebuilt.to_dict() == data

    def test_collector_fixed_point_with_mixed_records(self):
        collector = _populated_collector()
        data = collector.to_dict()
        rebuilt = MetricsCollector.from_dict(json_hop(data))
        assert rebuilt.to_dict() == data
        assert rebuilt.records == collector.records
        # json text comparison so NaN metrics (no deliveries ended with
        # copies tracked here) compare equal.
        assert json.dumps(rebuilt.summary(), sort_keys=True) == json.dumps(
            collector.summary(), sort_keys=True
        )
        # Spot-check that the sync counters actually carried over.
        assert rebuilt.truncated_transmissions == 1
        assert rebuilt.interrupted_syncs == 1
        assert rebuilt.index_skipped == 5
        assert rebuilt.resumed_pairs == 1

    def test_serialized_records_are_sorted_by_message_id(self):
        collector = MetricsCollector()
        origin = ReplicaId("bus-01")
        for serial in (5, 2, 9):
            collector.record_injection(
                ItemId(origin, serial), "a", "b", float(serial), "bus-01"
            )
        serials = [
            entry["message_id"]["serial"]
            for entry in collector.to_dict()["records"]
        ]
        assert serials == sorted(serials)


class TestExperimentResultRoundTrip:
    def test_real_run_fixed_point(self):
        config = ExperimentConfig(scale=0.25, policy="spray")
        result = run_experiment(config)
        data = result.to_dict()
        rebuilt = ExperimentResult.from_dict(json_hop(data))
        assert rebuilt.to_dict() == data
        assert rebuilt.config == config
        assert rebuilt.summary() == result.summary()
        assert rebuilt.trace_summary == result.trace_summary

    def test_delay_curves_survive(self):
        result = run_experiment(ExperimentConfig(scale=0.25, policy="epidemic"))
        rebuilt = ExperimentResult.from_dict(json_hop(result.to_dict()))
        hours = [0.0, 6.0, 12.0]
        assert rebuilt.delay_cdf_hours(hours) == result.delay_cdf_hours(hours)
