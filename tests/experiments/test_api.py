"""Tests for the curated ``repro.api`` facade."""

import warnings

import pytest

import repro
import repro.api as api


class TestFacade:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_all_is_sorted_and_unique(self):
        assert api.__all__ == sorted(set(api.__all__))

    def test_headline_imports(self):
        # The acceptance-criteria import, verbatim.
        from repro.api import ExperimentConfig, run_sweep  # noqa: F401

    def test_facade_names_match_their_home_modules(self):
        from repro.dtn.registry import get_policy
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.store import RunStore
        from repro.experiments.sweep import run_sweep

        assert api.ExperimentConfig is ExperimentConfig
        assert api.run_sweep is run_sweep
        assert api.RunStore is RunStore
        assert api.get_policy is get_policy

    def test_package_advertises_api(self):
        assert "api" in repro.__all__


class TestPolicyRegistryContract:
    def test_get_policy_builds_each_advertised_policy(self):
        for name in api.PAPER_POLICY_ORDER:
            policy = api.get_policy(name)
            assert policy is not None

    def test_default_parameters_are_exposed(self):
        assert isinstance(api.default_parameters("spray"), dict)


class TestDeprecationShims:
    def test_create_policy_warns_but_works(self):
        from repro.dtn.registry import create_policy

        with pytest.warns(DeprecationWarning, match="get_policy"):
            policy = create_policy("epidemic")
        assert policy is not None

    def test_keyword_construction_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            api.ExperimentConfig(scale=0.5, policy="epidemic")
            api.FaultConfig(crash_probability=0.1)
