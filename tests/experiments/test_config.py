"""Unit tests for experiment configuration."""

import pytest

from repro.experiments.config import ExperimentConfig, configured_scale


class TestValidation:
    def test_defaults_are_paper_scale(self):
        config = ExperimentConfig()
        assert config.scale == 1.0
        assert config.target_messages == 490
        assert config.injection_days == 8
        assert config.addressing == "bus"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scale": 0.0},
            {"scale": 1.1},
            {"addressing": "smoke-signal"},
            {"filter_strategy": "psychic"},
            {"filter_strategy": "self", "filter_k": 2},
            {"filter_k": -1, "filter_strategy": "random"},
            {"bandwidth_limit": -1},
            {"storage_limit": -2},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)


class TestScaling:
    def test_effective_counts_shrink_with_scale(self):
        full = ExperimentConfig(scale=1.0)
        half = ExperimentConfig(scale=0.5)
        assert half.effective_users < full.effective_users
        assert half.effective_messages < full.effective_messages

    def test_effective_counts_have_floors(self):
        tiny = ExperimentConfig(scale=0.01)
        assert tiny.effective_users >= 6
        assert tiny.effective_messages >= 10


class TestDerivation:
    def test_with_policy(self):
        config = ExperimentConfig().with_policy("epidemic", initial_ttl=5)
        assert config.policy == "epidemic"
        assert config.policy_parameters == {"initial_ttl": 5}

    def test_with_filters(self):
        config = ExperimentConfig().with_filters("selected", 4)
        assert (config.filter_strategy, config.filter_k) == ("selected", 4)

    def test_with_constraints(self):
        config = ExperimentConfig().with_constraints(bandwidth_limit=1)
        assert config.bandwidth_limit == 1
        assert config.storage_limit is None

    def test_label_mentions_everything(self):
        config = (
            ExperimentConfig()
            .with_policy("spray")
            .with_constraints(bandwidth_limit=1, storage_limit=2)
        )
        label = config.label()
        assert "spray" in label and "bw=1" in label and "store=2" in label


class TestEnvScale:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert configured_scale() == 0.5

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert configured_scale() == 0.25

    def test_env_out_of_range(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        with pytest.raises(ValueError):
            configured_scale()


class TestKeywordOnlyConstruction:
    def test_positional_args_warn_then_work(self):
        with pytest.warns(DeprecationWarning, match="keyword"):
            config = ExperimentConfig(0.5)
        assert config.scale == 0.5

    def test_positional_and_keyword_collision(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values"):
                ExperimentConfig(0.5, scale=0.25)

    def test_unknown_field_error_names_field_and_lists_valid(self):
        with pytest.raises(TypeError) as excinfo:
            ExperimentConfig(scale=0.5, bandwith_limit=3)
        message = str(excinfo.value)
        assert "bandwith_limit" in message
        assert "bandwidth_limit" in message  # valid fields are listed

    def test_keyword_construction_is_warning_free(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ExperimentConfig(scale=0.5, policy="maxprop")
