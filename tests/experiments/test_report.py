"""Unit tests for the text report renderers."""

from repro.experiments.report import (
    render_figure_8,
    render_series_table,
    render_summary_rows,
    render_table_1,
    render_table_2,
)


class TestSeriesTable:
    def test_renders_all_series_and_points(self):
        text = render_series_table(
            "Figure X",
            "k",
            {"random": [(0, 70.0), (1, 35.0)], "selected": [(0, 70.0), (1, 30.0)]},
        )
        assert "Figure X" in text
        assert "random" in text and "selected" in text
        assert "35.00" in text and "30.00" in text

    def test_missing_points_rendered_as_dash(self):
        text = render_series_table(
            "t", "x", {"a": [(0, 1.0)], "b": [(1, 2.0)]}
        )
        assert "—" in text

    def test_x_values_sorted(self):
        text = render_series_table("t", "x", {"a": [(5, 1.0), (1, 2.0)]})
        lines = text.splitlines()
        assert lines[3].strip().startswith("1")


class TestFigure8Renderer:
    def test_rows_per_policy(self):
        text = render_figure_8(
            {"cimbiosys": {"at_delivery": 2.0, "at_end": 2.0}}
        )
        assert "cimbiosys" in text
        assert "2.00" in text


class TestTableRenderers:
    def test_table_1_lists_all_protocols(self):
        text = render_table_1()
        for protocol in ("Epidemic", "Spray&Wait", "PROPHET", "MaxProp"):
            assert protocol in text

    def test_table_2_lists_parameters(self):
        text = render_table_2()
        assert "initial_ttl=10" in text
        assert "gamma=0.98" in text


class TestSummaryRows:
    def test_side_by_side_columns(self):
        text = render_summary_rows(
            {
                "cimbiosys": {"delivery_ratio": 0.9, "mean_delay_hours": 70.0},
                "epidemic": {"delivery_ratio": 1.0, "mean_delay_hours": 4.0},
            }
        )
        assert "cimbiosys" in text and "epidemic" in text
        assert "delivery_ratio" in text
