"""Unit tests for scenario construction."""

import pytest

from repro.dtn import EpidemicPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import build_scenario, expected_user_meetings

SMALL = ExperimentConfig(scale=0.25)


class TestBuild:
    def test_one_node_per_trace_host(self):
        scenario = build_scenario(SMALL)
        assert set(scenario.nodes) == set(scenario.trace.hosts)

    def test_policy_applied_to_every_node(self):
        scenario = build_scenario(SMALL.with_policy("epidemic"))
        for node in scenario.nodes.values():
            assert isinstance(node.policy, EpidemicPolicy)

    def test_policy_instances_are_distinct(self):
        scenario = build_scenario(SMALL.with_policy("epidemic"))
        policies = [node.policy for node in scenario.nodes.values()]
        assert len(set(map(id, policies))) == len(policies)

    def test_injection_count_scales(self):
        scenario = build_scenario(SMALL)
        assert len(scenario.injections) == SMALL.effective_messages

    def test_storage_limit_reaches_replicas(self):
        scenario = build_scenario(SMALL.with_constraints(storage_limit=2))
        for node in scenario.nodes.values():
            assert node.replica._relay.capacity == 2

    def test_bandwidth_limit_reaches_emulator(self):
        scenario = build_scenario(SMALL.with_constraints(bandwidth_limit=1))
        assert scenario.emulator.bandwidth_limit == 1

    def test_bus_mode_has_no_emulator_assignments(self):
        scenario = build_scenario(SMALL)
        assert scenario.emulator.assignments == {}

    def test_user_mode_wires_assignments(self):
        from dataclasses import replace

        scenario = build_scenario(replace(SMALL, addressing="user"))
        assert scenario.emulator.assignments

    def test_deterministic(self):
        a = build_scenario(SMALL)
        b = build_scenario(SMALL)
        assert a.injections == b.injections
        assert list(a.trace) == list(b.trace)


class TestFilterStrategies:
    def test_self_strategy_no_relays(self):
        scenario = build_scenario(SMALL)
        for node in scenario.nodes.values():
            assert node.static_relay_addresses == frozenset()

    def test_random_strategy_gives_k_bus_addresses(self):
        scenario = build_scenario(SMALL.with_filters("random", 2))
        buses = set(scenario.trace.hosts)
        for node in scenario.nodes.values():
            assert len(node.static_relay_addresses) == 2
            assert node.static_relay_addresses <= buses - {node.name}

    def test_selected_strategy_picks_most_met_buses(self):
        scenario = build_scenario(SMALL.with_filters("selected", 2))
        for name, node in scenario.nodes.items():
            counts = scenario.trace.meeting_counts_for(name)
            if len(counts) < 3:
                continue
            chosen_counts = [counts.get(b, 0) for b in node.static_relay_addresses]
            unchosen = [
                counts.get(b, 0)
                for b in scenario.trace.hosts
                if b != name and b not in node.static_relay_addresses
            ]
            assert min(chosen_counts) >= max(unchosen)

    def test_selected_user_mode_ranks_users(self):
        from dataclasses import replace

        config = replace(
            SMALL.with_filters("selected", 3), addressing="user"
        )
        scenario = build_scenario(config)
        users = set(scenario.model.users)
        for node in scenario.nodes.values():
            assert node.static_relay_addresses <= users
            assert len(node.static_relay_addresses) == 3


class TestExpectedUserMeetings:
    def test_counts_meetings_with_hosting_bus(self):
        scenario = build_scenario(ExperimentConfig(scale=0.25))
        host = sorted(scenario.trace.hosts)[0]
        meetings = expected_user_meetings(
            scenario.trace, scenario.assignments, host
        )
        assert all(count > 0 for count in meetings.values())
        # Cross-check one user by hand.
        user, expected = next(iter(meetings.items()))
        total = 0
        for day, day_map in scenario.assignments.items():
            bus = next((b for b, us in day_map.items() if user in us), None)
            if bus is None:
                continue
            total += sum(
                1
                for e in scenario.trace.on_day(day)
                if {e.a, e.b} == {host, bus}
            )
        assert total == expected
