"""Tests for the process-parallel sweep engine.

The parallel cases use a real ``spawn`` pool with 2 workers on a small
scale-0.25 grid; they assert the acceptance contract directly — parallel
artifacts byte-identical (over the ``result`` block) to serial ones, and
an interrupted sweep resuming without re-running completed cells.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.store import RunStore, canonical_json, run_id_for
from repro.experiments.sweep import (
    SweepEvent,
    expand_grid,
    filter_by_label,
    run_sweep,
    seeded,
)

BASE = ExperimentConfig(scale=0.25)


def small_grid():
    return expand_grid(BASE, policies=["epidemic", "spray"], seeds=[0, 1])


class TestSeeded:
    def test_seed_zero_is_identity(self):
        assert seeded(BASE, 0) is BASE

    def test_offsets_every_determinism_knob(self):
        replicate = seeded(BASE, 3)
        assert replicate.trace_seed == BASE.trace_seed + 3
        assert replicate.assignment_seed == BASE.assignment_seed + 3
        assert replicate.workload_seed == BASE.workload_seed + 3
        assert replicate.encounter_order_seed == BASE.encounter_order_seed + 3
        assert replicate.email_seed == BASE.email_seed + 3
        assert replicate.fault_seed == BASE.fault_seed + 3

    def test_replicates_have_distinct_addresses(self):
        ids = {run_id_for(seeded(BASE, seed)) for seed in range(4)}
        assert len(ids) == 4


class TestExpandGrid:
    def test_cross_product_size(self):
        grid = expand_grid(
            BASE,
            policies=["epidemic", "spray"],
            bandwidth_limits=[None, 3],
            seeds=[0, 1],
        )
        assert len(grid) == 8

    def test_empty_axes_keep_base_values(self):
        grid = expand_grid(BASE, policies=["maxprop"])
        assert len(grid) == 1
        assert grid[0].policy == "maxprop"
        assert grid[0].bandwidth_limit == BASE.bandwidth_limit
        assert grid[0].trace_seed == BASE.trace_seed

    def test_duplicate_cells_are_dropped(self):
        grid = expand_grid(BASE, policies=["epidemic", "epidemic"])
        assert len(grid) == 1

    def test_seed_replicates_label_themselves(self):
        grid = expand_grid(BASE, policies=["epidemic"], seeds=[0, 1])
        labels = [config.label() for config in grid]
        assert labels[0] == "epidemic"
        assert "seed=" in labels[1]

    def test_filter_by_label(self):
        grid = small_grid()
        assert len(filter_by_label(grid, "spray")) == 2
        assert len(filter_by_label(grid, "SPRAY")) == 2
        assert filter_by_label(grid, "no-such-policy") == []


class TestSerialSweep:
    def test_runs_grid_and_persists_artifacts(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        grid = small_grid()
        events = []
        report = run_sweep(grid, store=store, workers=1, progress=events.append)

        assert report.completed == 4
        assert report.reused == 0
        assert report.failed == 0
        assert len(report.outcomes) == 4
        # Outcomes come back in grid order regardless of execution order.
        assert [o.run_id for o in report.outcomes] == [
            run_id_for(c) for c in grid
        ]
        for outcome in report.outcomes:
            assert outcome.status == "completed"
            assert outcome.summary["injected"] > 0
        assert sorted(store.list_run_ids()) == sorted(
            run_id_for(c) for c in grid
        )
        # Manifest validates clean after the sweep.
        assert set(store.validate_manifest(report.sweep_id).values()) == {"ok"}
        # Lifecycle events: one started + one finished per run.
        kinds = [event.kind for event in events]
        assert kinds.count("started") == 4
        assert kinds.count("finished") == 4
        finished = [e for e in events if e.kind == "finished"]
        assert all(e.telemetry["injected"] > 0 for e in finished)

    def test_duplicate_configs_rejected(self, tmp_path):
        config = ExperimentConfig(scale=0.25)
        with pytest.raises(ValueError, match="duplicate"):
            run_sweep([config, config], store=RunStore(tmp_path / "runs"))

    def test_failed_run_fails_its_cell_not_the_sweep(self, tmp_path):
        # Scales this small cannot place any injection day, which raises
        # inside the worker — the sweep must surface it as a failed cell.
        store = RunStore(tmp_path / "runs")
        bad = ExperimentConfig(scale=0.01)
        good = ExperimentConfig(scale=0.25)
        report = run_sweep([bad, good], store=store, workers=1)
        assert report.failed == 1
        assert report.completed == 1
        failed = [o for o in report.outcomes if o.status == "failed"][0]
        assert "Traceback" in failed.error
        assert store.has(good)
        assert not store.has(bad)


class TestResume:
    def test_full_resume_reuses_everything(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        grid = small_grid()
        first = run_sweep(grid, store=store, workers=1)
        events = []
        second = run_sweep(grid, store=store, workers=1, progress=events.append)

        assert second.reused == 4
        assert second.completed == 0
        assert second.sweep_id == first.sweep_id
        assert all(event.kind == "reused" for event in events)
        # Reused outcomes still carry their metric summaries.
        by_id = {o.run_id: o for o in first.outcomes}
        for outcome in second.outcomes:
            assert outcome.summary == by_id[outcome.run_id].summary

    def test_interrupted_sweep_completes_without_rerunning(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        grid = small_grid()
        run_sweep(grid, store=store, workers=1)
        # Simulate a sweep killed midway: half the artifacts vanish.
        survivors = grid[:2]
        for config in grid[2:]:
            store.path_for(run_id_for(config)).unlink()

        report = run_sweep(grid, store=store, workers=1)
        assert report.reused == 2
        assert report.completed == 2
        reused_ids = {o.run_id for o in report.outcomes if o.status == "reused"}
        assert reused_ids == {run_id_for(c) for c in survivors}
        assert set(store.validate_manifest(report.sweep_id).values()) == {"ok"}

    def test_invalid_artifact_is_rerun(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        grid = small_grid()[:2]
        run_sweep(grid, store=store, workers=1)
        store.path_for(run_id_for(grid[0])).write_text("not json")

        report = run_sweep(grid, store=store, workers=1)
        assert report.completed == 1
        assert report.reused == 1
        assert store.has(grid[0])

    def test_no_resume_reruns_everything(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        grid = small_grid()[:2]
        run_sweep(grid, store=store, workers=1)
        report = run_sweep(grid, store=store, workers=1, resume=False)
        assert report.completed == 2
        assert report.reused == 0


class TestParallelSweep:
    """Real 2-worker spawn-pool runs; the slowest tests in this file."""

    def test_parallel_matches_serial_byte_for_byte(self, tmp_path):
        grid = small_grid()
        serial_store = RunStore(tmp_path / "serial")
        parallel_store = RunStore(tmp_path / "parallel")

        serial = run_sweep(grid, store=serial_store, workers=1)
        events = []
        parallel = run_sweep(
            grid, store=parallel_store, workers=2, progress=events.append
        )

        assert serial.completed == parallel.completed == 4
        for config in grid:
            run_id = run_id_for(config)
            a = serial_store.load_artifact(run_id)
            b = parallel_store.load_artifact(run_id)
            # The metric content must be byte-identical; only the envelope's
            # wall clock may differ between executions.
            assert canonical_json(a["result"]) == canonical_json(b["result"])
        # Progress events streamed from workers: every run started+finished.
        started = {e.run_id for e in events if e.kind == "started"}
        finished = {e.run_id for e in events if e.kind == "finished"}
        assert started == finished == {run_id_for(c) for c in grid}
        # Terminal-event counters reach the total exactly once.
        assert max(e.completed for e in events) == 4

    def test_parallel_resume_skips_done_work(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        grid = small_grid()
        run_sweep(grid[:2], store=store, workers=1)
        report = run_sweep(grid, store=store, workers=2)
        assert report.reused == 2
        assert report.completed == 2
        assert set(store.validate_manifest(report.sweep_id).values()) == {"ok"}


class TestSweepEventShape:
    def test_event_fields(self):
        event = SweepEvent(
            kind="finished",
            run_id="epidemic-aaaa",
            label="epidemic",
            completed=1,
            total=2,
            telemetry={"injected": 10.0},
        )
        assert event.total == 2
        assert event.error is None
