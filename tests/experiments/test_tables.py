"""Tests that Tables I and II match the paper and the implementation."""

from repro.dtn.registry import TABLE_II_PARAMETERS
from repro.experiments.tables import (
    TABLE_I,
    TABLE_II,
    TABLE_II_PAPER_VALUES,
)


class TestTableI:
    def test_four_protocols(self):
        assert [row.protocol for row in TABLE_I] == [
            "Epidemic",
            "Spray&Wait",
            "PROPHET",
            "MaxProp",
        ]

    def test_flooding_protocols_add_nothing_to_requests(self):
        by_name = {row.protocol: row for row in TABLE_I}
        assert by_name["Epidemic"].added_to_sync_request == ""
        assert by_name["Spray&Wait"].added_to_sync_request == ""

    def test_history_protocols_send_their_state(self):
        by_name = {row.protocol: row for row in TABLE_I}
        assert "P vector" in by_name["PROPHET"].added_to_sync_request
        assert "meeting" in by_name["MaxProp"].added_to_sync_request

    def test_forwarding_rules_verbatim(self):
        rules = {row.protocol: row.source_forwarding_policy for row in TABLE_I}
        assert rules["Epidemic"] == "When TTL > 0"
        assert rules["Spray&Wait"] == "When # copies >= 2"
        assert "P[dest]" in rules["PROPHET"]
        assert "Dijkstra" in rules["MaxProp"]


class TestTableII:
    def test_registry_matches_paper_values(self):
        assert TABLE_II == TABLE_II_PAPER_VALUES

    def test_exported_copy_is_detached_from_registry(self):
        TABLE_II["epidemic"]["initial_ttl"] = 999
        try:
            assert TABLE_II_PARAMETERS["epidemic"]["initial_ttl"] == 10
        finally:
            TABLE_II["epidemic"]["initial_ttl"] = 10
