"""Tests for temporal reachability, including the epidemic-optimality oracle."""

import pytest

from repro.analysis.reachability import (
    delivery_oracle,
    earliest_delivery_time,
    foremost_arrival_times,
    reachable,
)
from repro.emulation.encounters import Encounter, EncounterTrace


def enc(t, a, b):
    return Encounter(float(t), a, b)


CHAIN = EncounterTrace([enc(10, "a", "b"), enc(20, "b", "c"), enc(30, "c", "d")])
REVERSED_CHAIN = EncounterTrace(
    [enc(10, "c", "d"), enc(20, "b", "c"), enc(30, "a", "b")]
)


class TestForemostJourneys:
    def test_chain_respects_time_order(self):
        arrival = foremost_arrival_times(CHAIN, "a", start_time=0.0)
        assert arrival == {"a": 0.0, "b": 10.0, "c": 20.0, "d": 30.0}

    def test_reversed_chain_blocks_journeys(self):
        arrival = foremost_arrival_times(REVERSED_CHAIN, "a", start_time=0.0)
        # a→b happens at t=30, after every downstream edge: only b reachable.
        assert arrival == {"a": 0.0, "b": 30.0}

    def test_injection_after_encounter_misses_it(self):
        arrival = foremost_arrival_times(CHAIN, "a", start_time=15.0)
        assert "b" not in arrival

    def test_same_instant_encounter_counts(self):
        arrival = foremost_arrival_times(CHAIN, "a", start_time=10.0)
        assert arrival["b"] == 10.0

    def test_simultaneous_encounters_no_zero_time_relay(self):
        trace = EncounterTrace([enc(10, "a", "b"), enc(10, "b", "c")])
        arrival = foremost_arrival_times(trace, "a", start_time=0.0)
        # Trace order is deterministic; a→b and b→c share t=10, and the
        # sweep allows the relay at equal time (hosts co-located).
        assert arrival.get("c") == 10.0


class TestDeliveryQueries:
    def test_earliest_delivery(self):
        assert earliest_delivery_time(CHAIN, "a", "d", 0.0) == 30.0

    def test_unreachable_returns_none(self):
        assert earliest_delivery_time(REVERSED_CHAIN, "a", "d", 0.0) is None
        assert not reachable(REVERSED_CHAIN, "a", "d", 0.0)

    def test_self_delivery_is_immediate(self):
        assert earliest_delivery_time(CHAIN, "a", "a", 5.0) == 5.0

    def test_oracle_over_schedule(self):
        from repro.emulation.network import Injection

        injections = [
            Injection(0.0, "a", "d", "ok"),
            Injection(25.0, "a", "d", "too late"),
        ]
        oracle = delivery_oracle(CHAIN, injections)
        assert oracle[0] == 30.0
        assert oracle[1] is None


class TestEpidemicOptimality:
    """Unconstrained Epidemic (large TTL) delivers exactly the reachable
    set, at exactly the foremost arrival times — the flooding-optimality
    oracle run over the full synthetic scenario."""

    @pytest.fixture(scope="class")
    def experiment(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import build_scenario

        config = ExperimentConfig(scale=0.4, policy="epidemic").with_policy(
            "epidemic", initial_ttl=10_000
        )
        scenario = build_scenario(config)
        metrics = scenario.emulator.run()
        return scenario, metrics

    def test_delivery_set_matches_reachability(self, experiment):
        scenario, metrics = experiment
        for record in metrics.records.values():
            possible = reachable(
                scenario.trace,
                record.injected_node,
                record.destination,
                record.injected_at,
            ) or record.destination == record.injected_node
            assert record.delivered == possible, (
                f"{record.message_id}: delivered={record.delivered}, "
                f"reachable={possible}"
            )

    def test_delays_match_foremost_journeys(self, experiment):
        scenario, metrics = experiment
        for record in metrics.records.values():
            if not record.delivered:
                continue
            optimal = earliest_delivery_time(
                scenario.trace,
                record.injected_node,
                record.destination,
                record.injected_at,
            )
            if record.destination == record.injected_node:
                optimal = record.injected_at
            assert optimal is not None
            assert record.delivered_at == pytest.approx(optimal)
