"""Unit tests for contact-graph analysis."""

import math

import pytest

from repro.analysis.contacts import (
    TraceProfile,
    contact_counts,
    daily_degree,
    distinct_partners,
    encounter_concentration,
    inter_contact_summary,
    inter_contact_times,
    pair_coverage,
)
from repro.emulation.encounters import SECONDS_PER_DAY, Encounter, EncounterTrace
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace


def enc(day, hour, a, b):
    return Encounter(day * SECONDS_PER_DAY + hour * 3600.0, a, b)


SIMPLE = EncounterTrace(
    [
        enc(0, 9, "a", "b"),
        enc(0, 11, "a", "b"),
        enc(0, 12, "b", "c"),
        enc(1, 9, "a", "b"),
    ]
)


class TestBasicCounts:
    def test_contact_counts(self):
        counts = contact_counts(SIMPLE)
        assert counts == {"a": 3, "b": 4, "c": 1}

    def test_distinct_partners(self):
        partners = distinct_partners(SIMPLE)
        assert partners == {"a": 1, "b": 2, "c": 1}

    def test_pair_coverage(self):
        # 3 hosts → 3 possible pairs; (a,b) and (b,c) meet → 2/3.
        assert pair_coverage(SIMPLE) == pytest.approx(2 / 3)

    def test_pair_coverage_trivial_trace(self):
        assert pair_coverage(EncounterTrace([])) == 0.0

    def test_concentration(self):
        # (a,b) has 3 of 4 encounters; top-10% of 2 pairs = 1 pair.
        assert encounter_concentration(SIMPLE, 0.1) == pytest.approx(0.75)

    def test_concentration_empty(self):
        assert encounter_concentration(EncounterTrace([])) == 0.0


class TestInterContact:
    def test_gaps_per_pair(self):
        gaps = inter_contact_times(SIMPLE)
        assert ("a", "b") in gaps
        assert ("b", "c") not in gaps  # only one meeting
        assert gaps[("a", "b")] == [
            2 * 3600.0,
            SECONDS_PER_DAY - 2 * 3600.0,
        ]

    def test_summary_statistics(self):
        summary = inter_contact_summary(SIMPLE)
        assert summary["pairs_with_repeats"] == 1.0
        assert summary["mean"] == pytest.approx(SECONDS_PER_DAY / 2)

    def test_summary_with_no_repeats(self):
        trace = EncounterTrace([enc(0, 9, "a", "b")])
        summary = inter_contact_summary(trace)
        assert math.isnan(summary["mean"])


class TestDailyDegree:
    def test_per_day_values(self):
        degrees = daily_degree(SIMPLE)
        assert degrees[0] == pytest.approx((1 + 2 + 1) / 3)
        assert degrees[1] == pytest.approx(1.0)


class TestProfile:
    def test_simple_profile(self):
        profile = TraceProfile.of(SIMPLE)
        assert profile.encounters == 4
        assert profile.hosts == 3
        assert profile.days == 2
        assert 0.0 < profile.pair_coverage <= 1.0
        assert "pair coverage" in profile.render()

    def test_dieselnet_generator_matches_calibration(self):
        """The synthetic trace exhibits the DieselNet-like structure the
        calibration targets: concentrated pair traffic, high-but-partial
        pair coverage, modest daily degree."""
        trace = generate_dieselnet_trace(DieselNetConfig())
        profile = TraceProfile.of(trace)
        # Concentration: the top 10% of pairs carry ≈3x their uniform
        # share of encounters (route mates meet constantly).
        assert profile.concentration_top10pct > 0.25
        # Most pairs eventually meet, but not all (the baseline's <100%).
        assert 0.6 < profile.pair_coverage <= 1.0
        # A bus meets a handful of distinct partners per day, not everyone.
        assert 2.0 <= profile.mean_daily_degree <= 15.0
