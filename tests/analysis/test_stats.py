"""Unit tests for statistics helpers."""

import math

import pytest

from repro.analysis.stats import empirical_cdf, histogram, mean, median, percentile


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_is_nan(self):
        assert math.isnan(mean([]))


class TestPercentile:
    def test_endpoints(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 4.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.5) == 5.0

    def test_single_value(self):
        assert percentile([7.0], 0.9) == 7.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 0.5))

    def test_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_median_helper(self):
        assert median([3.0, 1.0, 2.0]) == 2.0


class TestEmpiricalCdf:
    def test_fractions_at_points(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0], [0.0, 2.0, 5.0])
        assert cdf == [(0.0, 0.0), (2.0, 0.5), (5.0, 1.0)]

    def test_total_override_weighs_down(self):
        cdf = empirical_cdf([1.0], [2.0], total=4)
        assert cdf == [(2.0, 0.25)]

    def test_empty_data(self):
        assert empirical_cdf([], [1.0]) == [(1.0, 0.0)]

    def test_monotone(self):
        cdf = empirical_cdf([1.0, 5.0, 9.0], [0.0, 2.0, 6.0, 10.0])
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)


class TestHistogram:
    def test_counts_in_half_open_bins(self):
        bins = histogram([1.0, 2.0, 2.5, 3.0], [1.0, 2.0, 3.0])
        assert bins == [((1.0, 2.0), 1), ((2.0, 3.0), 2)]

    def test_values_outside_edges_dropped(self):
        bins = histogram([-1.0, 10.0], [0.0, 1.0])
        assert bins == [((0.0, 1.0), 0)]

    def test_needs_two_edges(self):
        with pytest.raises(ValueError):
            histogram([1.0], [1.0])
