"""Tests for the random-waypoint mobility generator."""

import pytest

from repro.traces.mobility import (
    RandomWaypointConfig,
    generate_random_waypoint_trace,
    node_name,
)

SMALL = RandomWaypointConfig(
    seed=2,
    n_nodes=8,
    area_width=300.0,
    area_height=300.0,
    radio_range=40.0,
    duration=1800.0,
    time_step=2.0,
)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_nodes": 1},
            {"radio_range": 0.0},
            {"min_speed": 0.0},
            {"min_speed": 3.0, "max_speed": 2.0},
            {"duration": 0.0},
            {"time_step": 0.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RandomWaypointConfig(**kwargs)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = generate_random_waypoint_trace(SMALL)
        b = generate_random_waypoint_trace(SMALL)
        assert list(a) == list(b)

    def test_seeds_differ(self):
        other = RandomWaypointConfig(
            **{**SMALL.__dict__, "seed": 3}
        )
        assert list(generate_random_waypoint_trace(SMALL)) != list(
            generate_random_waypoint_trace(other)
        )

    def test_produces_contacts(self):
        trace = generate_random_waypoint_trace(SMALL)
        assert len(trace) > 0
        assert trace.hosts <= {node_name(i) for i in range(SMALL.n_nodes)}

    def test_durations_positive_and_bounded(self):
        trace = generate_random_waypoint_trace(SMALL)
        for encounter in trace:
            assert encounter.duration >= SMALL.time_step
            assert encounter.time + encounter.duration <= SMALL.duration + SMALL.time_step

    def test_times_within_simulation_window(self):
        trace = generate_random_waypoint_trace(SMALL)
        for encounter in trace:
            assert 0.0 <= encounter.time <= SMALL.duration

    def test_contact_onsets_not_repeated_while_in_range(self):
        """One encounter per contact interval: consecutive encounters of
        the same pair never overlap in time."""
        trace = generate_random_waypoint_trace(SMALL)
        by_pair = {}
        for encounter in trace:
            by_pair.setdefault(encounter.pair, []).append(encounter)
        for contacts in by_pair.values():
            contacts.sort(key=lambda e: e.time)
            for earlier, later in zip(contacts, contacts[1:]):
                assert earlier.time + earlier.duration <= later.time

    def test_sparser_radio_means_fewer_contacts(self):
        wide = generate_random_waypoint_trace(SMALL)
        narrow = generate_random_waypoint_trace(
            RandomWaypointConfig(**{**SMALL.__dict__, "radio_range": 10.0})
        )
        assert len(narrow) < len(wide)


class TestEndToEnd:
    def test_experiments_run_on_waypoint_traces(self):
        """The whole stack — scenario, policies, metrics — runs unchanged
        on positional mobility."""
        from repro.emulation.encounters import Encounter, EncounterTrace
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment
        from repro.traces.enron import generate_enron_model

        # Shift the (duration-long) trace into the workload's morning
        # injection window so encounters and injections interleave.
        raw = generate_random_waypoint_trace(SMALL)
        trace = EncounterTrace(
            Encounter(e.time + 8.2 * 3600.0, e.a, e.b, duration=e.duration)
            for e in raw
        )
        model = generate_enron_model(n_users=12, seed=4)
        config = ExperimentConfig(scale=0.3, policy="epidemic")
        result = run_experiment(config, trace=trace, model=model)
        assert result.metrics.injected > 0
        assert result.metrics.delivered > 0
        # Some deliveries required actual radio contacts, not just
        # same-host sender/recipient pairs.
        assert any(
            record.delay and record.delay > 0
            for record in result.metrics.records.values()
        )
