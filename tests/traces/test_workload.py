"""Unit tests for the message-injection schedule."""

import pytest

from repro.emulation.encounters import SECONDS_PER_DAY, Encounter, EncounterTrace
from repro.traces.enron import generate_enron_model
from repro.traces.mapping import assign_users_daily, host_of
from repro.traces.workload import (
    WorkloadConfig,
    build_injection_schedule,
    injection_days_used,
)


def make_trace(days=10):
    encounters = []
    for day in range(days):
        encounters.append(
            Encounter(day * SECONDS_PER_DAY + 9 * 3600.0, "bus0", "bus1")
        )
        encounters.append(
            Encounter(day * SECONDS_PER_DAY + 11 * 3600.0, "bus1", "bus2")
        )
    return EncounterTrace(encounters)


MODEL = generate_enron_model(n_users=20, seed=3)


def make_schedule(**kwargs):
    trace = make_trace()
    assignments = assign_users_daily(trace, list(MODEL.users), seed=1)
    config = WorkloadConfig(**kwargs)
    return (
        build_injection_schedule(MODEL, assignments, config),
        assignments,
        config,
    )


class TestConfig:
    def test_rejects_bad_values(self):
        for kwargs in (
            {"target_total": 0},
            {"injection_days": 0},
            {"interval_seconds": 0},
            {"addressing": "pigeon"},
        ):
            with pytest.raises(ValueError):
                WorkloadConfig(**kwargs)


class TestSchedule:
    def test_total_count_hits_target(self):
        injections, _, _ = make_schedule(target_total=97)
        assert len(injections) == 97

    def test_default_matches_paper_490(self):
        injections, _, _ = make_schedule()
        assert len(injections) == 490

    def test_injections_limited_to_first_eight_days(self):
        injections, _, _ = make_schedule()
        assert max(injection_days_used(injections)) < 8

    def test_morning_window_and_interval(self):
        injections, _, config = make_schedule(target_total=24)
        by_day = {}
        for injection in injections:
            by_day.setdefault(int(injection.time // SECONDS_PER_DAY), []).append(
                injection
            )
        for day, day_injections in by_day.items():
            times = sorted(i.time for i in day_injections)
            start = day * SECONDS_PER_DAY + 8 * 3600.0
            assert times[0] == start
            deltas = [b - a for a, b in zip(times, times[1:])]
            assert all(d == config.interval_seconds for d in deltas)

    def test_deterministic(self):
        a, _, _ = make_schedule(target_total=50)
        b, _, _ = make_schedule(target_total=50)
        assert a == b


class TestBusAddressing:
    def test_source_and_destination_are_buses(self):
        injections, assignments, _ = make_schedule(target_total=40)
        buses = {"bus0", "bus1", "bus2"}
        for injection in injections:
            assert injection.source in buses
            assert injection.destination in buses

    def test_source_bus_hosted_a_sender_that_day(self):
        injections, assignments, _ = make_schedule(target_total=40)
        for injection in injections:
            day = int(injection.time // SECONDS_PER_DAY)
            assert assignments[day].get(injection.source)


class TestUserAddressing:
    def test_addresses_are_users(self):
        injections, assignments, _ = make_schedule(
            target_total=40, addressing="user"
        )
        users = set(MODEL.users)
        for injection in injections:
            assert injection.source in users
            assert injection.destination in users
            assert injection.source != injection.destination

    def test_sender_rides_a_bus_on_injection_day(self):
        injections, assignments, _ = make_schedule(
            target_total=40, addressing="user"
        )
        for injection in injections:
            day = int(injection.time // SECONDS_PER_DAY)
            assert host_of(assignments, day, injection.source) is not None


class TestErrors:
    def test_no_assigned_users_raises(self):
        with pytest.raises(ValueError, match="no injection day"):
            build_injection_schedule(MODEL, {}, WorkloadConfig())
