"""Unit tests for the Enron-like e-mail workload model."""

import random
from collections import Counter

import pytest

from repro.traces.enron import (
    EmpiricalEmailModel,
    generate_enron_model,
    parse_pairs_csv,
    user_name,
)


class TestSyntheticModel:
    def test_population_size(self):
        model = generate_enron_model(n_users=50)
        assert len(model.users) == 50
        assert model.users[0] == user_name(0)

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            generate_enron_model(n_users=1)

    def test_deterministic_given_seed(self):
        a = generate_enron_model(n_users=30, seed=5)
        b = generate_enron_model(n_users=30, seed=5)
        rng_a, rng_b = random.Random(1), random.Random(1)
        pairs_a = [a.draw_pair(rng_a) for _ in range(50)]
        pairs_b = [b.draw_pair(rng_b) for _ in range(50)]
        assert pairs_a == pairs_b

    def test_never_self_addressed(self):
        model = generate_enron_model(n_users=10, seed=3)
        rng = random.Random(2)
        for _ in range(500):
            sender, recipient = model.draw_pair(rng)
            assert sender != recipient

    def test_senders_are_heavy_tailed(self):
        """A minority of users send the majority of messages."""
        model = generate_enron_model(n_users=50, seed=4)
        rng = random.Random(0)
        senders = Counter(model.draw_pair(rng)[0] for _ in range(3000))
        top10 = sum(count for _, count in senders.most_common(10))
        assert top10 > 0.4 * 3000

    def test_contact_locality(self):
        """Most of a sender's mail goes to its contact set."""
        model = generate_enron_model(n_users=50, seed=4, contact_locality=0.9)
        rng = random.Random(0)
        in_contacts = 0
        total = 2000
        for _ in range(total):
            sender, recipient = model.draw_pair(rng)
            if recipient in model.contact_sets[sender]:
                in_contacts += 1
        assert in_contacts > total * 0.5


class TestEmpiricalModel:
    def test_draws_only_observed_pairs(self):
        pairs = [("a", "b"), ("c", "d")]
        model = EmpiricalEmailModel(pairs)
        rng = random.Random(1)
        for _ in range(50):
            assert model.draw_pair(rng) in pairs

    def test_users_derived_from_pairs(self):
        model = EmpiricalEmailModel([("b", "a"), ("c", "a")])
        assert list(model.users) == ["a", "b", "c"]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalEmailModel([])

    def test_rejects_self_addressed(self):
        with pytest.raises(ValueError):
            EmpiricalEmailModel([("a", "a")])


class TestCsvParser:
    def test_parses_simple_pairs(self):
        model = parse_pairs_csv(["a,b", "c,d"])
        assert ("a", "b") in model.pairs

    def test_skips_header_comments_blanks(self):
        model = parse_pairs_csv(
            ["sender,recipient", "# note", "", "a,b  # trailing"]
        )
        assert model.pairs == [("a", "b")]

    def test_strips_whitespace(self):
        model = parse_pairs_csv([" a , b "])
        assert model.pairs == [("a", "b")]

    def test_drops_self_addressed_rows(self):
        model = parse_pairs_csv(["a,a", "a,b"])
        assert model.pairs == [("a", "b")]

    def test_rejects_malformed_row(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_pairs_csv(["lonely-column"])
