"""Tests for the optional duration column of the trace format."""

import pytest

from repro.traces.dieselnet import format_trace_text, parse_trace_text


class TestDurationColumn:
    def test_parse_with_duration(self):
        trace = parse_trace_text(["0 32400.0 a b 12.5"])
        assert trace[0].duration == 12.5

    def test_parse_without_duration_defaults_zero(self):
        trace = parse_trace_text(["0 32400.0 a b"])
        assert trace[0].duration == 0.0

    def test_mixed_lines(self):
        trace = parse_trace_text(["0 32400.0 a b", "0 33000.0 a c 5.0"])
        assert [e.duration for e in trace] == [0.0, 5.0]

    def test_roundtrip_preserves_duration(self):
        original = parse_trace_text(["0 32400.0 a b 12.5", "1 40000.0 c d"])
        lines = list(format_trace_text(original))
        reparsed = parse_trace_text(lines)
        assert [e.duration for e in reparsed] == [12.5, 0.0]

    def test_six_columns_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_trace_text(["0 32400.0 a b 12.5 extra"])

    def test_non_numeric_duration_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_trace_text(["0 32400.0 a b long"])
