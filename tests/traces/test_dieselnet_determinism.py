"""Byte-level determinism of the trace generators, and metro-mode scaling.

A trace is an experiment input: two runs "from the same seed" must mean
*the same bytes*, not merely statistically similar encounters, or run
artifacts stop being content-addressable. These tests pin that contract
for both the classic DieselNet generator and the city-scale metro mode,
and check that the metro route schedule actually scales the way the
scale benchmark assumes (membership balance, per-route locality,
interchange wiring).
"""

from __future__ import annotations

import pytest

from repro.emulation.encounters import SECONDS_PER_DAY
from repro.traces.dieselnet import (
    DieselNetConfig,
    MetroConfig,
    format_trace_text,
    generate_dieselnet_trace,
    generate_metro_trace,
    metro_bus_name,
    metro_route_members,
)


class TestClassicDeterminism:
    def test_same_seed_is_byte_identical(self):
        config = DieselNetConfig(scale=0.4, seed=11)
        first = "\n".join(format_trace_text(generate_dieselnet_trace(config)))
        second = "\n".join(format_trace_text(generate_dieselnet_trace(config)))
        assert first.encode("utf-8") == second.encode("utf-8")

    def test_seed_changes_bytes(self):
        first = "\n".join(
            format_trace_text(
                generate_dieselnet_trace(DieselNetConfig(scale=0.4, seed=11))
            )
        )
        second = "\n".join(
            format_trace_text(
                generate_dieselnet_trace(DieselNetConfig(scale=0.4, seed=12))
            )
        )
        assert first != second


class TestMetroConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MetroConfig(n_routes=0)
        with pytest.raises(ValueError):
            MetroConfig(n_buses=10, n_routes=8)  # < 2 buses per route
        with pytest.raises(ValueError):
            MetroConfig(days=0)
        with pytest.raises(ValueError):
            MetroConfig(window_start_hour=20.0, window_end_hour=6.0)
        with pytest.raises(ValueError):
            MetroConfig(duty_cycle=0.0)
        with pytest.raises(ValueError):
            MetroConfig(meetings_per_bus_per_day=-1.0)

    def test_bus_names_sort_numerically(self):
        names = [metro_bus_name(i) for i in (0, 9, 10, 99, 100, 54321)]
        assert names == sorted(names)

    def test_route_members_balance(self):
        config = MetroConfig(n_buses=103, n_routes=10)
        members = metro_route_members(config)
        sizes = [len(route) for route in members]
        assert sum(sizes) == 103
        assert max(sizes) - min(sizes) <= 1
        flat = [bus for route in members for bus in route]
        assert len(set(flat)) == len(flat)


class TestMetroGenerator:
    def test_same_seed_is_byte_identical(self):
        config = MetroConfig(seed=3, n_buses=80, n_routes=5, days=3)
        first = "\n".join(format_trace_text(generate_metro_trace(config)))
        second = "\n".join(format_trace_text(generate_metro_trace(config)))
        assert first.encode("utf-8") == second.encode("utf-8")

    def test_seed_changes_bytes(self):
        first = "\n".join(
            format_trace_text(
                generate_metro_trace(
                    MetroConfig(seed=3, n_buses=80, n_routes=5, days=3)
                )
            )
        )
        second = "\n".join(
            format_trace_text(
                generate_metro_trace(
                    MetroConfig(seed=4, n_buses=80, n_routes=5, days=3)
                )
            )
        )
        assert first != second

    def test_encounters_stay_inside_service_window(self):
        config = MetroConfig(
            seed=5, n_buses=60, n_routes=4, days=2,
            window_start_hour=7.0, window_end_hour=21.0,
        )
        trace = generate_metro_trace(config)
        assert len(trace) > 0
        for encounter in trace:
            seconds_into_day = encounter.time - encounter.day * SECONDS_PER_DAY
            assert 7.0 * 3600 <= seconds_into_day <= 21.0 * 3600

    def test_no_interchange_keeps_routes_disjoint(self):
        config = MetroConfig(
            seed=5, n_buses=60, n_routes=4, days=2, interchange_rate=0.0
        )
        members = metro_route_members(config)
        route_of = {
            bus: index
            for index, route in enumerate(members)
            for bus in route
        }
        for encounter in generate_metro_trace(config):
            assert route_of[encounter.a] == route_of[encounter.b]

    def test_interchanges_link_adjacent_routes_only(self):
        config = MetroConfig(
            seed=5, n_buses=60, n_routes=5, days=2,
            meetings_per_bus_per_day=0.0, interchange_rate=3.0,
        )
        members = metro_route_members(config)
        route_of = {
            bus: index
            for index, route in enumerate(members)
            for bus in route
        }
        trace = generate_metro_trace(config)
        assert len(trace) > 0
        for encounter in trace:
            gap = abs(route_of[encounter.a] - route_of[encounter.b])
            assert gap in (1, config.n_routes - 1)

    def test_encounter_volume_scales_with_routes_not_pairs(self):
        """Adding routes at fixed route size adds ~linear work.

        This is the property the scale benchmark leans on: the classic
        generator's per-pair walk would grow quadratically in the bus
        count, the metro generator must not.
        """
        small = MetroConfig(seed=6, n_buses=60, n_routes=4, days=2)
        large = MetroConfig(seed=6, n_buses=240, n_routes=16, days=2)
        n_small = len(generate_metro_trace(small))
        n_large = len(generate_metro_trace(large))
        ratio = n_large / n_small
        assert 2.5 <= ratio <= 6.5  # ~4x buses -> ~4x encounters

    def test_duty_cycle_limits_active_buses(self):
        config = MetroConfig(
            seed=7, n_buses=40, n_routes=2, days=1, duty_cycle=0.5
        )
        trace = generate_metro_trace(config)
        active = {e.a for e in trace} | {e.b for e in trace}
        # Half of each 20-bus route sits out each day (plus interchange
        # partners are drawn from the active sample only).
        assert len(active) <= 20 + 4  # duty sample is clamped to >= 2
