"""Unit tests for daily user→bus assignment."""

from repro.emulation.encounters import SECONDS_PER_DAY, Encounter, EncounterTrace
from repro.traces.mapping import assign_users_daily, host_of, users_on_day


def trace_two_days():
    return EncounterTrace(
        [
            Encounter(9 * 3600.0, "bus0", "bus1"),
            Encounter(10 * 3600.0, "bus1", "bus2"),
            Encounter(SECONDS_PER_DAY + 9 * 3600.0, "bus0", "bus2"),
        ]
    )


USERS = [f"u{i}" for i in range(7)]


class TestAssignment:
    def test_every_user_assigned_each_active_day(self):
        schedule = assign_users_daily(trace_two_days(), USERS, seed=1)
        for day in (0, 1):
            assert users_on_day(schedule, day) == set(USERS)

    def test_only_active_buses_get_users(self):
        schedule = assign_users_daily(trace_two_days(), USERS, seed=1)
        assert set(schedule[1]) == {"bus0", "bus2"}

    def test_distribution_is_balanced(self):
        schedule = assign_users_daily(trace_two_days(), USERS, seed=1)
        sizes = [len(users) for users in schedule[0].values()]
        assert max(sizes) - min(sizes) <= 1

    def test_each_user_on_exactly_one_bus(self):
        schedule = assign_users_daily(trace_two_days(), USERS, seed=1)
        day_map = schedule[0]
        seen = [user for users in day_map.values() for user in users]
        assert sorted(seen) == sorted(USERS)

    def test_deterministic_per_seed_and_day(self):
        a = assign_users_daily(trace_two_days(), USERS, seed=9)
        b = assign_users_daily(trace_two_days(), USERS, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = assign_users_daily(trace_two_days(), USERS, seed=1)
        b = assign_users_daily(trace_two_days(), USERS, seed=2)
        assert a != b

    def test_assignments_shuffle_across_days(self):
        schedule = assign_users_daily(trace_two_days(), USERS, seed=1)
        assert schedule[0] != schedule[1]


class TestLookups:
    def test_host_of(self):
        schedule = assign_users_daily(trace_two_days(), USERS, seed=1)
        for user in USERS:
            bus = host_of(schedule, 0, user)
            assert bus is not None
            assert user in schedule[0][bus]

    def test_host_of_missing_user(self):
        schedule = assign_users_daily(trace_two_days(), USERS, seed=1)
        assert host_of(schedule, 0, "stranger") is None

    def test_host_of_missing_day(self):
        schedule = assign_users_daily(trace_two_days(), USERS, seed=1)
        assert host_of(schedule, 99, "u0") is None

    def test_users_on_missing_day_empty(self):
        schedule = assign_users_daily(trace_two_days(), USERS, seed=1)
        assert users_on_day(schedule, 99) == frozenset()
